//! Semantic analysis: clause classification, ciphertext counts (Figure 6),
//! sensitivity (§4.7), multiplication depth, and the HE window layout.
//!
//! The analysis answers, statically:
//!
//! * Which clauses are evaluated where? `self` clauses at final processing
//!   by the origin, `dest`/`edge` clauses by each neighbor (edge attributes
//!   are shared knowledge of both endpoints), and *cross* clauses
//!   (`self` ↔ `dest`) via the §4.5 sequence encoding.
//! * How many ciphertexts does each neighbor send? One, unless a cross
//!   clause forces a sequence — then one per discrete value of the `dest`
//!   column involved. This reproduces Figure 6 exactly.
//! * What is the query's DP sensitivity (§4.7)? 2 for `HISTO` terms
//!   (scaled by the number of windows one origin can influence), the
//!   clipping-range width for `GSUM`.
//! * How many homomorphic multiplications does the local aggregation
//!   chain perform (`d^k`)? — the §6.2 feasibility input.
//! * How are values packed into plaintext coefficients? Each group gets a
//!   window; ratio queries use a radix-`W` joint (count, sum) encoding.

use crate::ast::{Agg, Atom, Column, ColumnGroup, GroupBy, Inner, Query, Value};

/// Static knowledge about column domains (discrete ranges and caps), used
/// for sequence lengths and window sizing.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Degree bound `d` (Figure 4: 10).
    pub degree_bound: usize,
    /// Discrete values of `tInf` relevant to a query (the paper's 14-day
    /// windows → 14 values).
    pub t_inf_range: usize,
    /// Discrete values of `age` (decade groups → 10).
    pub age_range: usize,
    /// Cap on a single edge's `duration` contribution (quantized units).
    pub duration_cap: u64,
    /// Cap on a single edge's `contacts` contribution.
    pub contacts_cap: u64,
    /// Minutes per quantized `duration` unit.
    pub duration_unit: u32,
}

impl Default for Schema {
    fn default() -> Self {
        Self {
            degree_bound: 10,
            t_inf_range: 14,
            age_range: 10,
            duration_cap: 48,
            contacts_cap: 50,
            duration_unit: 30,
        }
    }
}

impl Schema {
    /// The discrete range (number of distinct values) of a column, for
    /// sequence-encoding purposes.
    pub fn column_range(&self, col: &Column) -> usize {
        match col.name.as_str() {
            "tInf" => self.t_inf_range,
            "age" => self.age_range,
            "inf" => 2,
            _ => self.t_inf_range,
        }
    }

    /// The maximum value a single row can contribute to `SUM(col)`.
    pub fn value_cap(&self, v: &Value) -> u64 {
        match v {
            Value::Col(c) => match c.name.as_str() {
                "inf" => 1,
                "duration" => self.duration_cap,
                "contacts" => self.contacts_cap,
                "age" => 120,
                _ => self.t_inf_range as u64,
            },
            Value::Lit(l) => l.unsigned_abs(),
            Value::Add(inner, l) => self.value_cap(inner) + l.unsigned_abs(),
            Value::SubCols(_, _) => self.t_inf_range as u64,
        }
    }
}

/// Where a predicate clause is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseSite {
    /// Only `self` columns: evaluated by the origin at final processing
    /// (§4.4 — a failing clause replaces the result with `Enc(0)`).
    SelfOnly,
    /// `dest` and/or `edge` columns: evaluated by each neighbor (edge
    /// attributes are known to both endpoints).
    DestEdge,
    /// Both `self` and `dest`: needs the §4.5 sequence encoding.
    Cross,
}

/// How results are grouped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupKind {
    /// No `GROUP BY`.
    None,
    /// Grouping on a `self` column: the origin shifts its single result
    /// into its group's window (additive packing, §4.5).
    SelfSide,
    /// Grouping on an `edge` column or function: each neighbor contribution
    /// lands in a per-group coordinate (multiplicative radix packing).
    PerEdge,
    /// Grouping on a `self` ↔ `dest` expression (Q10's `stage`): the origin
    /// routes sequence positions into per-group coordinates.
    Cross,
}

/// The complete static analysis of a query.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Ciphertexts each neighbor sends (Figure 6's `C_q`).
    pub ciphertexts_per_neighbor: usize,
    /// DP sensitivity (§4.7).
    pub sensitivity: f64,
    /// Homomorphic multiplications along the local aggregation (`d^k`).
    pub muls: usize,
    /// Number of groups.
    pub groups: usize,
    /// Grouping strategy.
    pub group_kind: GroupKind,
    /// Whether the local aggregate is a (count, sum) ratio.
    pub joint_ratio: bool,
    /// Radix of the count coordinate (`d + 1`).
    pub count_radix: usize,
    /// Radix of the sum/value coordinate (`d · cap + 1`).
    pub value_radix: usize,
    /// Coefficients one group's window occupies.
    pub group_window: usize,
    /// Total coefficients the encoding occupies (must be `< N`).
    pub total_span: usize,
    /// Per-clause evaluation sites, parallel to `query.predicate.clauses`.
    pub clause_sites: Vec<ClauseSite>,
    /// The `dest` column driving the sequence encoding, if any.
    pub sequence_column: Option<Column>,
}

/// Analysis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// `GSUM` without a clipping range (required by §4).
    MissingClip,
    /// A clause mixes `self` and `dest` without a discrete-range column.
    UnboundedCross,
    /// Unknown function name.
    UnknownFunction(String),
    /// More than one distinct cross column (not expressible with a single
    /// sequence).
    MultipleCrossColumns,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::MissingClip => write!(f, "GSUM queries require a CLIP range"),
            AnalyzeError::UnboundedCross => {
                write!(f, "cross-group comparison lacks a discrete-range column")
            }
            AnalyzeError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            AnalyzeError::MultipleCrossColumns => {
                write!(
                    f,
                    "queries may compare self against at most one dest column"
                )
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

const KNOWN_FUNCS: [&str; 3] = ["onSubway", "isHousehold", "stage"];

/// Analyzes a query against a schema.
pub fn analyze(query: &Query, schema: &Schema) -> Result<Analysis, AnalyzeError> {
    // Validate function names.
    for clause in &query.predicate.clauses {
        for atom in clause {
            if let Atom::Func { name, .. } = atom {
                if !KNOWN_FUNCS.contains(&name.as_str()) {
                    return Err(AnalyzeError::UnknownFunction(name.clone()));
                }
            }
        }
    }
    if let Some(GroupBy::Func { name, .. }) = &query.group_by {
        if !KNOWN_FUNCS.contains(&name.as_str()) {
            return Err(AnalyzeError::UnknownFunction(name.clone()));
        }
    }
    if query.agg == Agg::Gsum && query.clip.is_none() {
        return Err(AnalyzeError::MissingClip);
    }
    // Classify clauses and find the cross column.
    let mut clause_sites = Vec::with_capacity(query.predicate.clauses.len());
    let mut cross_cols: Vec<Column> = Vec::new();
    for clause in &query.predicate.clauses {
        let mut has_self = false;
        let mut has_dest = false;
        for atom in clause {
            for g in atom.groups() {
                match g {
                    ColumnGroup::SelfV => has_self = true,
                    ColumnGroup::Dest => has_dest = true,
                    ColumnGroup::Edge => {}
                }
            }
        }
        // Edge-only clauses count as DestEdge (evaluated at the neighbor,
        // who shares the edge).
        let site = match (has_self, has_dest) {
            (true, true) => ClauseSite::Cross,
            (true, false) => ClauseSite::SelfOnly,
            (false, _) => ClauseSite::DestEdge,
        };
        if site == ClauseSite::Cross {
            for atom in clause {
                for col in dest_columns(atom) {
                    if !cross_cols.contains(&col) {
                        cross_cols.push(col);
                    }
                }
            }
        }
        clause_sites.push(site);
    }
    // Cross grouping expressions also need the sequence.
    let mut group_kind = GroupKind::None;
    let mut groups = 1usize;
    if let Some(gb) = &query.group_by {
        let gs = gb.groups();
        let has_self = gs.contains(&ColumnGroup::SelfV);
        let has_dest = gs.contains(&ColumnGroup::Dest);
        group_kind = match (has_self, has_dest) {
            (true, true) => {
                if let GroupBy::Func { arg, .. } = gb {
                    for col in value_dest_columns(arg) {
                        if !cross_cols.contains(&col) {
                            cross_cols.push(col);
                        }
                    }
                }
                GroupKind::Cross
            }
            (true, false) => GroupKind::SelfSide,
            (false, _) => GroupKind::PerEdge,
        };
        groups = group_count(gb, schema);
    }
    if cross_cols.len() > 1 {
        return Err(AnalyzeError::MultipleCrossColumns);
    }
    let sequence_column = cross_cols.into_iter().next();
    let ciphertexts_per_neighbor = sequence_column
        .as_ref()
        .map(|c| schema.column_range(c))
        .unwrap_or(1);
    // Window layout.
    let d = schema.degree_bound;
    let joint_ratio = matches!(query.inner, Inner::Ratio(_));
    let count_radix = d + 1;
    // A k-hop COUNT can reach the whole neighborhood (≤ d^k members).
    let value_radix = match &query.inner {
        Inner::Count => d.pow(query.hops as u32) + 1,
        Inner::Sum(v) | Inner::Ratio(v) => (d as u64 * schema.value_cap(v) + 1) as usize,
    };
    let group_window = if joint_ratio {
        count_radix * value_radix
    } else {
        value_radix
    };
    let total_span = match group_kind {
        GroupKind::None => group_window,
        GroupKind::SelfSide => groups * group_window,
        // Multiplicative packing: one coordinate block per group.
        GroupKind::PerEdge | GroupKind::Cross => group_window.pow(groups as u32),
    };
    // Sensitivity (§4.7): HISTO contributes ±1 in up to `w` windows (w = 1
    // for ungrouped/self-grouped, `groups` for per-edge windows); GSUM is
    // the clipping-range width.
    let sensitivity = match query.agg {
        Agg::Histo => {
            let windows = match group_kind {
                GroupKind::None | GroupKind::SelfSide => 1,
                GroupKind::PerEdge | GroupKind::Cross => groups,
            };
            2.0 * windows as f64
        }
        Agg::Gsum => {
            let (a, b) = query.clip.expect("checked above");
            (b - a).max(1) as f64
        }
    };
    Ok(Analysis {
        ciphertexts_per_neighbor,
        sensitivity,
        muls: d.pow(query.hops as u32),
        groups,
        group_kind,
        joint_ratio,
        count_radix,
        value_radix,
        group_window,
        total_span,
        clause_sites,
        sequence_column,
    })
}

/// The public per-query privacy-cost report: everything a budget ledger
/// or round scheduler needs to price one execution of a query.
///
/// The `(epsilon, delta)` pair is the *charge* the caller intends to pay
/// for one release (the system parameter, not a query property); the
/// sensitivity and the derived Laplace `noise_scale = sensitivity / ε`
/// come from the static analysis (§4.7).
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Query name (as parsed).
    pub name: String,
    /// Per-release epsilon charge.
    pub epsilon: f64,
    /// Per-release delta slack (0 for pure ε-DP accounting).
    pub delta: f64,
    /// DP sensitivity of the released histogram (§4.7).
    pub sensitivity: f64,
    /// Laplace scale of the released noise (`sensitivity / epsilon`).
    pub noise_scale: f64,
    /// Ciphertexts each neighbor sends (Figure 6's `C_q`).
    pub ciphertexts_per_neighbor: usize,
    /// Homomorphic multiplications along the local chain (`d^k`).
    pub muls: usize,
    /// Released groups.
    pub groups: usize,
}

/// Failures building a [`CostReport`]: every path is typed, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The SQL text failed to parse.
    Parse(crate::parser::ParseError),
    /// The query parsed but failed semantic analysis.
    Analyze(AnalyzeError),
    /// The proposed charge is not a valid privacy parameter pair
    /// (`epsilon` must be positive and finite, `delta` in `[0, 1)`).
    InvalidPrivacyParams {
        /// The rejected epsilon.
        epsilon: f64,
        /// The rejected delta.
        delta: f64,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Parse(e) => write!(f, "parse error: {e}"),
            ReportError::Analyze(e) => write!(f, "analysis error: {e}"),
            ReportError::InvalidPrivacyParams { epsilon, delta } => {
                write!(
                    f,
                    "invalid privacy parameters (epsilon {epsilon}, delta {delta})"
                )
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// Builds the [`CostReport`] for an already-parsed query.
pub fn cost_report(
    query: &Query,
    schema: &Schema,
    epsilon: f64,
    delta: f64,
) -> Result<CostReport, ReportError> {
    if !epsilon.is_finite() || epsilon <= 0.0 || !delta.is_finite() || !(0.0..1.0).contains(&delta)
    {
        return Err(ReportError::InvalidPrivacyParams { epsilon, delta });
    }
    let analysis = analyze(query, schema).map_err(ReportError::Analyze)?;
    Ok(CostReport {
        name: query.name.clone(),
        epsilon,
        delta,
        sensitivity: analysis.sensitivity,
        noise_scale: analysis.sensitivity / epsilon,
        ciphertexts_per_neighbor: analysis.ciphertexts_per_neighbor,
        muls: analysis.muls,
        groups: analysis.groups,
    })
}

/// Parses `sql` and builds its [`CostReport`] — the one-stop entry point
/// for schedulers pricing analyst-supplied text. Malformed SQL returns a
/// typed [`ReportError::Parse`], never a panic.
pub fn cost_report_sql(
    name: &str,
    sql: &str,
    schema: &Schema,
    epsilon: f64,
    delta: f64,
) -> Result<CostReport, ReportError> {
    let query = crate::parser::parse(name, sql).map_err(ReportError::Parse)?;
    cost_report(&query, schema, epsilon, delta)
}

fn dest_columns(atom: &Atom) -> Vec<Column> {
    let collect = |v: &Value| value_dest_columns(v);
    match atom {
        Atom::Bool(c) if c.group == ColumnGroup::Dest => vec![c.clone()],
        Atom::Bool(_) => vec![],
        Atom::Cmp { lhs, rhs, .. } => {
            let mut v = collect(lhs);
            v.extend(collect(rhs));
            v
        }
        Atom::Between { value, lo, hi } => {
            let mut v = collect(value);
            v.extend(collect(lo));
            v.extend(collect(hi));
            v
        }
        Atom::Func { arg, .. } if arg.group == ColumnGroup::Dest => vec![arg.clone()],
        Atom::Func { .. } => vec![],
    }
}

fn value_dest_columns(v: &Value) -> Vec<Column> {
    match v {
        Value::Col(c) if c.group == ColumnGroup::Dest => vec![c.clone()],
        Value::Col(_) | Value::Lit(_) => vec![],
        Value::Add(inner, _) => value_dest_columns(inner),
        Value::SubCols(a, b) => [a, b]
            .into_iter()
            .filter(|c| c.group == ColumnGroup::Dest)
            .cloned()
            .collect(),
    }
}

/// Number of groups a `GROUP BY` expression produces.
pub fn group_count(gb: &GroupBy, schema: &Schema) -> usize {
    match gb {
        GroupBy::Col(c) => match c.name.as_str() {
            "age" => schema.age_range,
            "setting" => 3,
            _ => 2,
        },
        GroupBy::Func { name, .. } => match name.as_str() {
            "isHousehold" | "stage" | "onSubway" => 2,
            _ => 2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::paper_queries;

    #[test]
    fn figure6_ciphertext_counts() {
        // The headline table: Q1,Q2,Q4,Q5,Q8 → 1; Q3,Q6,Q7,Q10 → 14; Q9 → 10.
        let schema = Schema::default();
        let expected = [
            ("Q1", 1),
            ("Q2", 1),
            ("Q3", 14),
            ("Q4", 1),
            ("Q5", 1),
            ("Q6", 14),
            ("Q7", 14),
            ("Q8", 1),
            ("Q9", 10),
            ("Q10", 14),
        ];
        for (q, (name, count)) in paper_queries().iter().zip(expected) {
            assert_eq!(q.name, name);
            let a = analyze(q, &schema).unwrap();
            assert_eq!(
                a.ciphertexts_per_neighbor, count,
                "{name}: expected {count} ciphertexts"
            );
        }
    }

    #[test]
    fn clause_sites_q3() {
        let schema = Schema::default();
        let q = &paper_queries()[2]; // Q3.
        let a = analyze(q, &schema).unwrap();
        assert_eq!(
            a.clause_sites,
            vec![
                ClauseSite::SelfOnly,
                ClauseSite::DestEdge,
                ClauseSite::Cross
            ]
        );
        assert_eq!(a.sequence_column.as_ref().unwrap().name, "tInf");
    }

    #[test]
    fn group_kinds() {
        let schema = Schema::default();
        let qs = paper_queries();
        let a5 = analyze(&qs[4], &schema).unwrap(); // Q5: GROUP BY self.age.
        assert_eq!(a5.group_kind, GroupKind::SelfSide);
        assert_eq!(a5.groups, 10);
        let a7 = analyze(&qs[6], &schema).unwrap(); // Q7: GROUP BY edge.setting.
        assert_eq!(a7.group_kind, GroupKind::PerEdge);
        assert_eq!(a7.groups, 3);
        let a10 = analyze(&qs[9], &schema).unwrap(); // Q10: stage(dest-self).
        assert_eq!(a10.group_kind, GroupKind::Cross);
        assert_eq!(a10.groups, 2);
    }

    #[test]
    fn mul_counts_match_paper() {
        let schema = Schema::default();
        let qs = paper_queries();
        assert_eq!(analyze(&qs[0], &schema).unwrap().muls, 100, "Q1 is 2-hop");
        assert_eq!(analyze(&qs[1], &schema).unwrap().muls, 10, "Q2 is 1-hop");
    }

    #[test]
    fn sensitivity_rules() {
        let schema = Schema::default();
        let qs = paper_queries();
        // HISTO ungrouped → 2.
        assert_eq!(analyze(&qs[0], &schema).unwrap().sensitivity, 2.0);
        // HISTO with self-group → still one window per origin → 2.
        assert_eq!(analyze(&qs[4], &schema).unwrap().sensitivity, 2.0);
        // HISTO with per-edge groups → one window per group → 2·3.
        assert_eq!(analyze(&qs[6], &schema).unwrap().sensitivity, 6.0);
        // GSUM → clip width.
        let a8 = analyze(&qs[7], &schema).unwrap();
        let (lo, hi) = qs[7].clip.unwrap();
        assert_eq!(a8.sensitivity, (hi - lo) as f64);
    }

    #[test]
    fn window_layout_fits_paper_ring() {
        let schema = Schema::default();
        for q in paper_queries() {
            let a = analyze(&q, &schema).unwrap();
            assert!(
                a.total_span <= 32768,
                "{}: span {} exceeds N=32768",
                q.name,
                a.total_span
            );
        }
    }

    #[test]
    fn gsum_requires_clip() {
        let schema = Schema::default();
        let q = crate::parser::parse(
            "bad",
            "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) WHERE self.inf",
        )
        .unwrap();
        assert!(matches!(
            analyze(&q, &schema),
            Err(AnalyzeError::MissingClip)
        ));
    }

    #[test]
    fn cost_reports_for_the_conformance_queries() {
        let schema = Schema::default();
        // (name, sensitivity, ciphertexts/neighbor, muls, groups) — the
        // numbers a budget ledger prices rounds with.
        let expected = [
            // HISTO grouped by a cross stage(): one window per group → 2·2.
            ("SEIR", 4.0, 14, 10, 2),
            // Ungrouped HISTO → 2.
            ("DEGREE", 2.0, 1, 10, 1),
            // GSUM clip [0, 8] → width 8; two hops → d² muls.
            ("KHOP", 8.0, 1, 100, 1),
            // GSUM clip [0, 24] → width 24; self-side groups.
            ("CLIPGB", 24.0, 1, 10, 10),
            // Cross range comparison → tInf sequence, 14 ciphertexts.
            ("CROSSEVAL", 2.0, 14, 10, 1),
        ];
        for (name, sensitivity, cts, muls, groups) in expected {
            let q = crate::builtin::paper_query(name).unwrap();
            let r = cost_report(&q, &schema, 1.0, 1e-6).unwrap();
            assert_eq!(r.name, name);
            assert_eq!(r.sensitivity, sensitivity, "{name} sensitivity");
            assert_eq!(r.ciphertexts_per_neighbor, cts, "{name} ciphertexts");
            assert_eq!(r.muls, muls, "{name} muls");
            assert_eq!(r.groups, groups, "{name} groups");
            assert_eq!(r.epsilon, 1.0);
            assert_eq!(r.noise_scale, sensitivity, "scale = sensitivity / 1.0");
        }
    }

    #[test]
    fn cost_report_sql_returns_typed_errors_never_panics() {
        let schema = Schema::default();
        // Malformed SQL → typed parse error with a position, no panic.
        match cost_report_sql("bad", "SELECT HISTO(COUNT(* FROM", &schema, 1.0, 0.0) {
            Err(ReportError::Parse(e)) => assert!(!e.message.is_empty()),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Parseable but semantically invalid → typed analyze error.
        match cost_report_sql(
            "noclip",
            "SELECT GSUM(COUNT(*)) FROM neigh(1) WHERE self.inf",
            &schema,
            1.0,
            0.0,
        ) {
            Err(ReportError::Analyze(AnalyzeError::MissingClip)) => {}
            other => panic!("expected missing-clip, got {other:?}"),
        }
        // Degenerate privacy parameters → typed rejection.
        for (eps, delta) in [
            (0.0, 0.0),
            (-1.0, 0.0),
            (f64::NAN, 0.0),
            (1.0, 1.0),
            (1.0, -0.1),
        ] {
            match cost_report_sql(
                "q",
                "SELECT HISTO(COUNT(*)) FROM neigh(1)",
                &schema,
                eps,
                delta,
            ) {
                Err(ReportError::InvalidPrivacyParams { .. }) => {}
                other => panic!("eps {eps} delta {delta}: got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_function_rejected() {
        let schema = Schema::default();
        let q = crate::parser::parse(
            "bad",
            "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE frobnicate(edge.location)",
        )
        .unwrap();
        assert!(matches!(
            analyze(&q, &schema),
            Err(AnalyzeError::UnknownFunction(_))
        ));
    }
}
