//! The paper's ten example queries (Figure 2).
//!
//! Each query comes from the infectious-disease literature the paper cites;
//! the SQL below is the paper's, adapted to this crate's concrete grammar
//! (`∧` → `AND`, `∈` → `IN`, explicit `CLIP` ranges for the `GSUM`
//! queries, and Q5's "within the last 24 hours" as an `edge.last_contact`
//! bound against the 28-day observation window).

use crate::ast::Query;
use crate::parser::parse;

/// Query text for Q1–Q10.
pub const PAPER_QUERY_TEXT: [(&str, &str, &str); 10] = [
    (
        "Q1",
        "Histogram of the number of infections in an infected participant's two-hop neighborhood",
        "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE dest.inf AND self.inf",
    ),
    (
        "Q2",
        "Histogram of time A spent near B, if A is infected within 5-15 days of contact with B",
        "SELECT HISTO(SUM(edge.duration)) FROM neigh(1) \
         WHERE self.inf AND dest.tInf IN [edge.last_contact+5, edge.last_contact+10]",
    ),
    (
        "Q3",
        "Histogram of the frequency of contact between A and B, if A infected B",
        "SELECT HISTO(SUM(edge.contacts)) FROM neigh(1) \
         WHERE self.inf AND dest.tInf AND dest.tInf > self.tInf+2",
    ),
    (
        "Q4",
        "Secondary attack rate of infected participants if they travelled on the subway",
        "SELECT HISTO(SUM(dest.inf)) FROM neigh(1) WHERE onSubway(edge.location) AND self.inf",
    ),
    (
        "Q5",
        "Histogram of the number of distinct contacts within the last 24 hours, by age group",
        "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE edge.last_contact >= 27 GROUP BY self.age",
    ),
    (
        "Q6",
        "Histogram of secondary infections caused by infected participants in age groups",
        "SELECT HISTO(COUNT(*)) FROM neigh(1) \
         WHERE self.inf AND dest.tInf AND dest.tInf > self.tInf+2 GROUP BY self.age",
    ),
    (
        "Q7",
        "Histogram of secondary infections based on type of exposure (family, social, work)",
        "SELECT HISTO(COUNT(*)) FROM neigh(1) \
         WHERE self.inf AND dest.tInf AND dest.tInf > self.tInf+2 GROUP BY edge.setting",
    ),
    (
        "Q8",
        "Secondary attack rates in household vs non-household contacts",
        "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) WHERE self.inf \
         GROUP BY isHousehold(edge.location) CLIP [0, 10]",
    ),
    (
        "Q9",
        "Secondary attack rates within case-contact pairs in the same vs different age groups",
        "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) \
         WHERE dest.age IN [0, 100] AND self.age IN [dest.age-10, dest.age+10] CLIP [0, 10]",
    ),
    (
        "Q10",
        "Secondary attack rates at different disease stages (incubation vs illness)",
        "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) \
         WHERE self.inf AND dest.tInf > self.tInf+2 \
         GROUP BY stage(dest.tInf - self.tInf) CLIP [0, 10]",
    ),
];

/// The query-service conformance scenarios: one named query per workload
/// class the multi-query session must drive through the encrypted
/// pipeline (Liu & Gupta's "practical for certain queries" taxonomy and
/// GORAM's ego-centric query set supply the classes).
///
/// `KHOP` is deliberately two-hop: at the shallow simulation BGV chain it
/// reproduces the §6.2 infeasibility result, and at a deepened chain it
/// runs — the session picks the parameter set.
pub const CONFORMANCE_QUERY_TEXT: [(&str, &str, &str); 5] = [
    (
        "SEIR",
        "Contact-tracing SEIR sweep: infectious contacts by disease stage at exposure",
        "SELECT HISTO(COUNT(*)) FROM neigh(1) \
         WHERE self.inf AND dest.tInf GROUP BY stage(dest.tInf - self.tInf)",
    ),
    (
        "DEGREE",
        "Power-law degree histogram: distinct contacts per participant, no predicate",
        "SELECT HISTO(COUNT(*)) FROM neigh(1)",
    ),
    (
        "KHOP",
        "k-hop GSUM aggregate: infected participants in the two-hop neighborhood, clipped",
        "SELECT GSUM(COUNT(*)) FROM neigh(2) WHERE dest.inf CLIP [0, 8]",
    ),
    (
        "CLIPGB",
        "CLIP'd GROUP BY: total exposure minutes to infectious contacts, by age group",
        "SELECT GSUM(SUM(edge.duration)) FROM neigh(1) \
         WHERE dest.inf GROUP BY self.age CLIP [0, 24]",
    ),
    (
        "CROSSEVAL",
        "Crosseval: contact frequency where diagnosis falls within ±2 days of the origin's",
        "SELECT HISTO(SUM(edge.contacts)) FROM neigh(1) \
         WHERE self.inf AND dest.tInf IN [self.tInf-2, self.tInf+2]",
    ),
];

/// Parses all ten paper queries.
///
/// # Panics
///
/// Panics if any built-in query fails to parse (a bug, covered by tests).
pub fn paper_queries() -> Vec<Query> {
    PAPER_QUERY_TEXT
        .iter()
        .map(|(name, _, text)| parse(name, text).expect("built-in query must parse"))
        .collect()
}

/// Parses the five conformance queries in session order.
///
/// # Panics
///
/// Panics if any built-in query fails to parse (a bug, covered by tests).
pub fn conformance_queries() -> Vec<Query> {
    CONFORMANCE_QUERY_TEXT
        .iter()
        .map(|(name, _, text)| parse(name, text).expect("built-in query must parse"))
        .collect()
}

/// Returns one named built-in query: a paper query (`"Q1"`–`"Q10"`) or a
/// conformance query (`"SEIR"`, `"DEGREE"`, `"KHOP"`, `"CLIPGB"`,
/// `"CROSSEVAL"`).
pub fn paper_query(name: &str) -> Option<Query> {
    PAPER_QUERY_TEXT
        .iter()
        .chain(CONFORMANCE_QUERY_TEXT.iter())
        .find(|(n, _, _)| *n == name)
        .map(|(n, _, text)| parse(n, text).expect("built-in query must parse"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Agg;

    #[test]
    fn all_ten_parse() {
        let qs = paper_queries();
        assert_eq!(qs.len(), 10);
        for (q, (name, _, _)) in qs.iter().zip(PAPER_QUERY_TEXT) {
            assert_eq!(q.name, name);
        }
    }

    #[test]
    fn aggregate_kinds_match_figure2() {
        let qs = paper_queries();
        for q in &qs[..7] {
            assert_eq!(q.agg, Agg::Histo, "{} should be HISTO", q.name);
        }
        for q in &qs[7..] {
            assert_eq!(q.agg, Agg::Gsum, "{} should be GSUM", q.name);
            assert!(q.clip.is_some());
        }
    }

    #[test]
    fn only_q1_is_two_hop() {
        for q in paper_queries() {
            if q.name == "Q1" {
                assert_eq!(q.hops, 2);
            } else {
                assert_eq!(q.hops, 1, "{}", q.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(paper_query("Q7").is_some());
        assert!(paper_query("Q11").is_none());
    }

    #[test]
    fn conformance_queries_parse_and_cover_the_classes() {
        let qs = conformance_queries();
        assert_eq!(qs.len(), 5);
        let by_name = |n: &str| qs.iter().find(|q| q.name == n).unwrap();
        // SEIR: 1-hop histogram grouped by a self↔dest stage expression.
        let seir = by_name("SEIR");
        assert_eq!(seir.agg, Agg::Histo);
        assert!(seir.group_by.is_some());
        // DEGREE: predicate-free degree histogram.
        let degree = by_name("DEGREE");
        assert!(degree.predicate.clauses.is_empty());
        assert_eq!(degree.hops, 1);
        // KHOP: the only multi-hop conformance query, a clipped GSUM.
        let khop = by_name("KHOP");
        assert_eq!(khop.hops, 2);
        assert_eq!(khop.agg, Agg::Gsum);
        assert!(khop.clip.is_some());
        // CLIPGB: grouped GSUM with a clip range.
        let clipgb = by_name("CLIPGB");
        assert_eq!(clipgb.agg, Agg::Gsum);
        assert!(clipgb.group_by.is_some() && clipgb.clip.is_some());
        // CROSSEVAL: a self↔dest range comparison.
        let cross = by_name("CROSSEVAL");
        assert_eq!(cross.agg, Agg::Histo);
        // Conformance names resolve through the same lookup as Q1–Q10.
        for (n, _, _) in CONFORMANCE_QUERY_TEXT {
            assert!(paper_query(n).is_some(), "{n} must resolve");
        }
    }
}
