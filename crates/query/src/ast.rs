//! Abstract syntax of the Mycelium query language.

/// The outer (global) aggregate — one of the two language extensions (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Aggregate the local results into a histogram.
    Histo,
    /// Sum the local results globally (with a clipping range).
    Gsum,
}

/// The local (per-origin) aggregate over the `neigh(k)` rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Inner {
    /// `COUNT(*)` — number of rows satisfying the predicate.
    Count,
    /// `SUM(value)` — sum of a value over satisfying rows.
    Sum(Value),
    /// `SUM(value)/COUNT(*)` — the secondary-attack-rate shape (Q8–Q10).
    /// Compiled to a joint (count, sum) encoding; the ratio is formed after
    /// decryption.
    Ratio(Value),
}

/// Which column group a column belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnGroup {
    /// The origin vertex's private data (`self.*`).
    SelfV,
    /// The neighbor's private data (`dest.*`).
    Dest,
    /// The first edge on the path (`edge.*`).
    Edge,
}

/// A column reference like `dest.tInf`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Column group.
    pub group: ColumnGroup,
    /// Column name (`inf`, `tInf`, `age`, `duration`, `contacts`,
    /// `last_contact`, `setting`, `location`).
    pub name: String,
}

impl Column {
    /// Convenience constructor.
    pub fn new(group: ColumnGroup, name: &str) -> Self {
        Self {
            group,
            name: name.to_string(),
        }
    }
}

/// An arithmetic value expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A column reference.
    Col(Column),
    /// An integer literal.
    Lit(i64),
    /// `value + literal` (also covers `- literal` via negative literals).
    Add(Box<Value>, i64),
    /// `a - b` between two columns (Q10's `dest.tInf - self.tInf`).
    SubCols(Column, Column),
}

impl Value {
    /// Column groups this expression reads.
    pub fn groups(&self) -> Vec<ColumnGroup> {
        match self {
            Value::Col(c) => vec![c.group],
            Value::Lit(_) => vec![],
            Value::Add(v, _) => v.groups(),
            Value::SubCols(a, b) => vec![a.group, b.group],
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An atomic predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// A bare boolean column: `self.inf`, or `dest.tInf` meaning "dest has
    /// a diagnosis time" (Figure 2 uses this shorthand).
    Bool(Column),
    /// A comparison.
    Cmp {
        /// Left operand.
        lhs: Value,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: Value,
    },
    /// `value IN [lo, hi]` — an inclusive range test.
    Between {
        /// Tested value.
        value: Value,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
    },
    /// A built-in boolean function over a column: `onSubway(edge.location)`
    /// or `isHousehold(edge.location)`.
    Func {
        /// Function name.
        name: String,
        /// Argument column.
        arg: Column,
    },
}

impl Atom {
    /// Column groups this atom reads.
    pub fn groups(&self) -> Vec<ColumnGroup> {
        match self {
            Atom::Bool(c) => vec![c.group],
            Atom::Cmp { lhs, rhs, .. } => {
                let mut g = lhs.groups();
                g.extend(rhs.groups());
                g
            }
            Atom::Between { value, lo, hi } => {
                let mut g = value.groups();
                g.extend(lo.groups());
                g.extend(hi.groups());
                g
            }
            Atom::Func { arg, .. } => vec![arg.group],
        }
    }
}

/// A predicate in (normalized) conjunctive form: a conjunction of clauses,
/// each a disjunction of atoms. Figure 2's queries are all conjunctions of
/// single atoms, but the grammar allows `OR`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pred {
    /// Conjoined clauses; each inner vector is a disjunction.
    pub clauses: Vec<Vec<Atom>>,
}

impl Pred {
    /// The conjunction of single atoms.
    pub fn all(atoms: Vec<Atom>) -> Self {
        Self {
            clauses: atoms.into_iter().map(|a| vec![a]).collect(),
        }
    }

    /// True when there is no predicate.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// The `GROUP BY` expression.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupBy {
    /// Group by a column (`self.age`, `edge.setting`).
    Col(Column),
    /// Group by a built-in function of a value
    /// (`isHousehold(edge.location)`, `stage(dest.tInf - self.tInf)`).
    Func {
        /// Function name (`isHousehold`, `stage`).
        name: String,
        /// Argument.
        arg: Value,
    },
}

impl GroupBy {
    /// Column groups the grouping expression reads.
    pub fn groups(&self) -> Vec<ColumnGroup> {
        match self {
            GroupBy::Col(c) => vec![c.group],
            GroupBy::Func { arg, .. } => arg.groups(),
        }
    }
}

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Query name (e.g. `"Q3"`), for reporting.
    pub name: String,
    /// Outer aggregate.
    pub agg: Agg,
    /// Local aggregate.
    pub inner: Inner,
    /// Neighborhood radius `k` from `neigh(k)`.
    pub hops: usize,
    /// `WHERE` predicate (empty = always true).
    pub predicate: Pred,
    /// Optional `GROUP BY`.
    pub group_by: Option<GroupBy>,
    /// Clipping range `[a, b]` (required for `GSUM`, §4).
    pub clip: Option<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_groups() {
        let a = Atom::Cmp {
            lhs: Value::Col(Column::new(ColumnGroup::Dest, "tInf")),
            op: CmpOp::Gt,
            rhs: Value::Add(
                Box::new(Value::Col(Column::new(ColumnGroup::SelfV, "tInf"))),
                2,
            ),
        };
        let g = a.groups();
        assert!(g.contains(&ColumnGroup::Dest));
        assert!(g.contains(&ColumnGroup::SelfV));
    }

    #[test]
    fn pred_all() {
        let p = Pred::all(vec![Atom::Bool(Column::new(ColumnGroup::SelfV, "inf"))]);
        assert_eq!(p.clauses.len(), 1);
        assert!(!p.is_empty());
        assert!(Pred::default().is_empty());
    }

    #[test]
    fn value_groups() {
        let v = Value::SubCols(
            Column::new(ColumnGroup::Dest, "tInf"),
            Column::new(ColumnGroup::SelfV, "tInf"),
        );
        assert_eq!(v.groups().len(), 2);
        assert!(Value::Lit(5).groups().is_empty());
    }
}
