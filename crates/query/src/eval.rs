//! Ground-truth plaintext evaluation.
//!
//! Evaluates a query directly over a synthetic [`Population`], with exactly
//! the semantics the encrypted pipeline implements:
//!
//! * An origin whose `self` clauses fail contributes nothing (`Enc(0)`).
//! * A row (k-hop neighbor + first edge) whose `dest`/`edge`/cross clauses
//!   fail contributes a neutral value (`Enc(x^0)` multiplies to nothing).
//! * `HISTO` produces, per group, the histogram of per-origin local values.
//! * `GSUM` ratio queries produce, per group, the joint (count, sum)
//!   census; the released statistic is `Σ clip(sum) / Σ count`.
//!
//! This module is the oracle: integration tests run the encrypted pipeline
//! and require bit-identical histograms.

use mycelium_graph::data::{Location, VertexData};
use mycelium_graph::generate::Population;
use mycelium_graph::graph::VertexId;

use crate::analyze::{Analysis, ClauseSite, GroupKind, Schema};
use crate::ast::{Atom, CmpOp, Column, ColumnGroup, GroupBy, Inner, Query, Value};
use crate::crosseval::{clause_holds_at_position, cross_group_index, discretize_dest};

/// One group's results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupResult {
    /// Human-readable group label.
    pub label: String,
    /// For `HISTO`: histogram of per-origin local values
    /// (`histogram[v]` = number of origins whose local result was `v`).
    /// For ratio `GSUM`: flattened joint census
    /// (`histogram[count · value_radix + sum]`).
    pub histogram: Vec<u64>,
    /// Total matching pairs (`Σ count`), for ratio queries.
    pub total_pairs: u64,
    /// Total clipped sum (`Σ clip(sum)`), for ratio queries.
    pub total_clipped_sum: u64,
}

impl GroupResult {
    /// The secondary attack rate `Σ clip(sum) / Σ count` (0 when empty).
    pub fn rate(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.total_clipped_sum as f64 / self.total_pairs as f64
        }
    }
}

/// The full plaintext result of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainResult {
    /// One entry per group.
    pub groups: Vec<GroupResult>,
}

/// A row of the conceptual `neigh(k)` table.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    /// Origin vertex data.
    pub self_v: &'a VertexData,
    /// Neighbor vertex data.
    pub dest: &'a VertexData,
    /// First edge on the path from origin to neighbor.
    pub edge: &'a mycelium_graph::data::EdgeData,
}

/// Evaluates a query over a population.
///
/// `analysis` must come from [`crate::analyze::analyze`] on the same query
/// and schema.
pub fn evaluate(
    query: &Query,
    analysis: &Analysis,
    schema: &Schema,
    pop: &Population,
) -> PlainResult {
    let groups = analysis.groups;
    let hist_len = if analysis.joint_ratio {
        analysis.count_radix * analysis.value_radix
    } else {
        analysis.value_radix
    };
    let mut result: Vec<GroupResult> = (0..groups)
        .map(|g| GroupResult {
            label: group_label(query.group_by.as_ref(), g),
            histogram: vec![0; hist_len],
            total_pairs: 0,
            total_clipped_sum: 0,
        })
        .collect();
    let clip = query.clip.unwrap_or((0, u64::MAX));
    for v in 0..pop.graph.len() as VertexId {
        let self_v = &pop.vertices[v as usize];
        // Self clauses.
        if !self_clauses_hold(query, analysis, self_v, schema) {
            continue;
        }
        // Per-group accumulators.
        let mut count = vec![0u64; groups];
        let mut sum = vec![0u64; groups];
        for (w, first_edge) in khop_rows(pop, v, query.hops) {
            let row = Row {
                self_v,
                dest: &pop.vertices[w as usize],
                edge: first_edge,
            };
            // Exact evaluation of dest/edge clauses; discretized (§4.5)
            // evaluation of cross clauses at the dest's sequence position.
            if !dest_edge_clauses_hold(query, analysis, &row, schema) {
                continue;
            }
            let pos = analysis
                .sequence_column
                .as_ref()
                .and_then(|col| discretize_dest(col, row.dest, schema));
            if let Some(col) = analysis.sequence_column.as_ref() {
                let p = match pos {
                    Some(p) => p,
                    None => continue, // Out-of-range dest never matches.
                };
                let cross_ok = query
                    .predicate
                    .clauses
                    .iter()
                    .zip(&analysis.clause_sites)
                    .filter(|(_, site)| **site == ClauseSite::Cross)
                    .all(|(clause, _)| {
                        clause_holds_at_position(clause, self_v, row.edge, col, p, schema)
                    });
                if !cross_ok {
                    continue;
                }
            }
            let g = match analysis.group_kind {
                GroupKind::None | GroupKind::SelfSide => 0,
                GroupKind::PerEdge => {
                    group_index(query.group_by.as_ref().expect("grouped"), &row, schema)
                }
                GroupKind::Cross => cross_group_index(
                    query.group_by.as_ref().expect("grouped"),
                    self_v,
                    analysis.sequence_column.as_ref().expect("cross grouping"),
                    pos.expect("cross grouping requires a position"),
                    schema,
                ),
            };
            let val = match &query.inner {
                Inner::Count => 1,
                Inner::Sum(expr) | Inner::Ratio(expr) => {
                    eval_value(expr, &row, schema).max(0) as u64
                }
            };
            count[g] += 1;
            sum[g] += val;
        }
        // Distribute the origin's local result(s).
        match analysis.group_kind {
            GroupKind::None => {
                record(&mut result[0], query, analysis, count[0], sum[0], clip);
            }
            GroupKind::SelfSide => {
                let g = self_group_index(query.group_by.as_ref().expect("grouped"), self_v, schema);
                record(&mut result[g], query, analysis, count[0], sum[0], clip);
            }
            GroupKind::PerEdge | GroupKind::Cross => {
                for g in 0..groups {
                    record(&mut result[g], query, analysis, count[g], sum[g], clip);
                }
            }
        }
    }
    PlainResult { groups: result }
}

fn record(
    gr: &mut GroupResult,
    query: &Query,
    analysis: &Analysis,
    count: u64,
    sum: u64,
    clip: (u64, u64),
) {
    if analysis.joint_ratio {
        let c = (count as usize).min(analysis.count_radix - 1);
        let s = (sum as usize).min(analysis.value_radix - 1);
        gr.histogram[c * analysis.value_radix + s] += 1;
        gr.total_pairs += c as u64;
        // §4.4 clipping: per-origin sums outside [a, b] clamp to the bounds.
        gr.total_clipped_sum += (s as u64).clamp(clip.0, clip.1);
    } else {
        let local = match query.inner {
            Inner::Count => count,
            _ => sum,
        };
        let idx = (local as usize).min(analysis.value_radix - 1);
        gr.histogram[idx] += 1;
    }
}

/// Iterates the `neigh(k)` rows of origin `v`: each distinct vertex within
/// `k` hops, paired with the first edge on the BFS path from `v`.
pub fn khop_rows(
    pop: &Population,
    v: VertexId,
    k: usize,
) -> Vec<(VertexId, &mycelium_graph::data::EdgeData)> {
    let g = &pop.graph;
    let n = g.len();
    let mut first_hop: Vec<Option<VertexId>> = vec![None; n];
    let mut dist = vec![usize::MAX; n];
    dist[v as usize] = 0;
    let mut frontier = vec![v];
    let mut out = Vec::new();
    for hop in 1..=k {
        let mut next = Vec::new();
        for &u in &frontier {
            for (w, _) in g.neighbors(u) {
                if dist[w as usize] != usize::MAX {
                    continue;
                }
                dist[w as usize] = hop;
                first_hop[w as usize] = if hop == 1 {
                    Some(w)
                } else {
                    first_hop[u as usize]
                };
                next.push(w);
                out.push(w);
            }
        }
        frontier = next;
    }
    out.into_iter()
        .map(|w| {
            let fh = first_hop[w as usize].expect("reached vertices have a first hop");
            let edge = g.edge(v, fh).expect("first hop is adjacent");
            (w, edge)
        })
        .collect()
}

fn self_clauses_hold(
    query: &Query,
    analysis: &Analysis,
    self_v: &VertexData,
    schema: &Schema,
) -> bool {
    // Self clauses reference no dest/edge data; evaluate with a dummy row
    // mirroring self (the dest/edge fields are never read).
    let dummy_edge = mycelium_graph::data::EdgeData::household_contact(0);
    let row = Row {
        self_v,
        dest: self_v,
        edge: &dummy_edge,
    };
    query
        .predicate
        .clauses
        .iter()
        .zip(&analysis.clause_sites)
        .filter(|(_, site)| **site == ClauseSite::SelfOnly)
        .all(|(clause, _)| clause.iter().any(|a| eval_atom(a, &row, schema)))
}

fn dest_edge_clauses_hold(query: &Query, analysis: &Analysis, row: &Row, schema: &Schema) -> bool {
    query
        .predicate
        .clauses
        .iter()
        .zip(&analysis.clause_sites)
        .filter(|(_, site)| **site == ClauseSite::DestEdge)
        .all(|(clause, _)| clause.iter().any(|a| eval_atom(a, row, schema)))
}

/// Evaluates an atom over a row.
pub fn eval_atom(atom: &Atom, row: &Row, schema: &Schema) -> bool {
    match atom {
        Atom::Bool(col) => eval_bool_column(col, row),
        Atom::Cmp { lhs, op, rhs } => {
            let l = eval_value(lhs, row, schema);
            let r = eval_value(rhs, row, schema);
            match op {
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
            }
        }
        Atom::Between { value, lo, hi } => {
            let v = eval_value(value, row, schema);
            v >= eval_value(lo, row, schema) && v <= eval_value(hi, row, schema)
        }
        Atom::Func { name, arg } => {
            let loc = location_of(arg, row);
            match name.as_str() {
                "onSubway" => loc == Some(Location::Subway),
                "isHousehold" => loc == Some(Location::Household),
                _ => false,
            }
        }
    }
}

fn eval_bool_column(col: &Column, row: &Row) -> bool {
    let v = vertex_of(col.group, row);
    match col.name.as_str() {
        "inf" | "tInf" => v.map(|d| d.infected).unwrap_or(false),
        _ => eval_column(col, row, &Schema::default()) != 0,
    }
}

/// Evaluates an arithmetic value over a row.
pub fn eval_value(value: &Value, row: &Row, schema: &Schema) -> i64 {
    match value {
        Value::Col(c) => eval_column(c, row, schema),
        Value::Lit(l) => *l,
        Value::Add(inner, l) => eval_value(inner, row, schema) + l,
        Value::SubCols(a, b) => eval_column(a, row, schema) - eval_column(b, row, schema),
    }
}

fn vertex_of<'a>(group: ColumnGroup, row: &'a Row) -> Option<&'a VertexData> {
    match group {
        ColumnGroup::SelfV => Some(row.self_v),
        ColumnGroup::Dest => Some(row.dest),
        ColumnGroup::Edge => None,
    }
}

fn location_of(col: &Column, row: &Row) -> Option<Location> {
    if col.group == ColumnGroup::Edge && col.name == "location" {
        Some(row.edge.location)
    } else {
        None
    }
}

/// Evaluates a column to an integer. Diagnosis time is `-1` for
/// never-diagnosed participants so range tests cannot spuriously match.
pub fn eval_column(col: &Column, row: &Row, schema: &Schema) -> i64 {
    match col.group {
        ColumnGroup::SelfV | ColumnGroup::Dest => {
            let v = vertex_of(col.group, row).expect("vertex group");
            match col.name.as_str() {
                "inf" => v.infected as i64,
                "tInf" => {
                    if v.infected {
                        v.t_inf as i64
                    } else {
                        -1
                    }
                }
                "age" => v.age as i64,
                _ => 0,
            }
        }
        ColumnGroup::Edge => match col.name.as_str() {
            "duration" => {
                ((row.edge.duration / schema.duration_unit) as i64).min(schema.duration_cap as i64)
            }
            "contacts" => (row.edge.contacts as i64).min(schema.contacts_cap as i64),
            "last_contact" => row.edge.last_contact as i64,
            _ => 0,
        },
    }
}

/// Group index for per-row (edge / cross) grouping.
pub fn group_index(gb: &GroupBy, row: &Row, schema: &Schema) -> usize {
    match gb {
        GroupBy::Col(c) if c.name == "setting" => row.edge.setting.index(),
        GroupBy::Col(c) => (eval_column(c, row, schema).max(0) as usize) % 2,
        GroupBy::Func { name, arg } => match name.as_str() {
            "isHousehold" => (row.edge.location == Location::Household) as usize,
            "onSubway" => (row.edge.location == Location::Subway) as usize,
            "stage" => {
                let x = eval_value(arg, row, schema);
                usize::from(x > 5)
            }
            _ => 0,
        },
    }
}

/// Group index for self-side grouping.
pub fn self_group_index(gb: &GroupBy, self_v: &VertexData, schema: &Schema) -> usize {
    match gb {
        GroupBy::Col(c) if c.name == "age" => self_v.age_group().min(schema.age_range - 1),
        _ => 0,
    }
}

/// Human-readable group label.
pub fn group_label(gb: Option<&GroupBy>, g: usize) -> String {
    match gb {
        None => "all".to_string(),
        Some(GroupBy::Col(c)) if c.name == "age" => format!("age {}-{}", g * 10, g * 10 + 9),
        Some(GroupBy::Col(c)) if c.name == "setting" => {
            ["family", "social", "work"][g.min(2)].to_string()
        }
        Some(GroupBy::Func { name, .. }) if name == "isHousehold" => {
            ["non-household", "household"][g.min(1)].to_string()
        }
        Some(GroupBy::Func { name, .. }) if name == "stage" => {
            ["incubation", "illness"][g.min(1)].to_string()
        }
        Some(_) => format!("group {g}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::builtin::{paper_queries, paper_query};
    use mycelium_graph::generate::{epidemic_population, ContactGraphConfig, EpidemicConfig};
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn population(n: usize) -> Population {
        let mut rng = StdRng::seed_from_u64(77);
        epidemic_population(
            &ContactGraphConfig {
                n,
                ..ContactGraphConfig::default()
            },
            &EpidemicConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn all_paper_queries_evaluate() {
        let pop = population(500);
        let schema = Schema::default();
        for q in paper_queries() {
            let a = analyze(&q, &schema).unwrap();
            let r = evaluate(&q, &a, &schema, &pop);
            assert_eq!(r.groups.len(), a.groups, "{}", q.name);
            let total: u64 = r
                .groups
                .iter()
                .map(|g| g.histogram.iter().sum::<u64>())
                .sum();
            assert!(total > 0, "{} produced an empty result", q.name);
        }
    }

    #[test]
    fn q1_total_counts_infected_origins() {
        // Every infected origin contributes exactly one histogram entry.
        let pop = population(400);
        let schema = Schema::default();
        let q = paper_query("Q1").unwrap();
        let a = analyze(&q, &schema).unwrap();
        let r = evaluate(&q, &a, &schema, &pop);
        let infected = pop.vertices.iter().filter(|v| v.infected).count() as u64;
        assert_eq!(r.groups[0].histogram.iter().sum::<u64>(), infected);
    }

    #[test]
    fn q1_matches_pregel_baseline() {
        // The generic evaluator must agree with the hand-written plaintext
        // baseline on the count distribution.
        let pop = population(400);
        let schema = Schema::default();
        let q = paper_query("Q1").unwrap();
        let a = analyze(&q, &schema).unwrap();
        let r = evaluate(&q, &a, &schema, &pop);
        let max = a.value_radix - 1;
        let baseline = mycelium_graph::pregel::q1_plaintext_histogram(
            &pop.graph,
            &pop.vertices,
            2,
            u16::MAX, // No window in Q1's SQL.
            max,
        );
        assert_eq!(&r.groups[0].histogram[..=max], &baseline[..]);
    }

    #[test]
    fn q8_household_rate_exceeds_community() {
        let pop = population(2000);
        let schema = Schema::default();
        let q = paper_query("Q8").unwrap();
        let a = analyze(&q, &schema).unwrap();
        let r = evaluate(&q, &a, &schema, &pop);
        assert_eq!(r.groups.len(), 2);
        let non_household = &r.groups[0];
        let household = &r.groups[1];
        assert!(household.total_pairs > 0);
        assert!(
            household.rate() > non_household.rate(),
            "household SAR {} vs {}",
            household.rate(),
            non_household.rate()
        );
    }

    #[test]
    fn q5_age_groups_partition_origins() {
        let pop = population(300);
        let schema = Schema::default();
        let q = paper_query("Q5").unwrap();
        let a = analyze(&q, &schema).unwrap();
        let r = evaluate(&q, &a, &schema, &pop);
        // Every vertex is an origin (no self clauses) and lands in exactly
        // one age group.
        let total: u64 = r
            .groups
            .iter()
            .map(|g| g.histogram.iter().sum::<u64>())
            .sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn q6_grouped_totals_match_infected() {
        let pop = population(400);
        let schema = Schema::default();
        let q = paper_query("Q6").unwrap();
        let a = analyze(&q, &schema).unwrap();
        let r = evaluate(&q, &a, &schema, &pop);
        let infected = pop.vertices.iter().filter(|v| v.infected).count() as u64;
        let total: u64 = r
            .groups
            .iter()
            .map(|g| g.histogram.iter().sum::<u64>())
            .sum();
        assert_eq!(total, infected);
    }

    #[test]
    fn q7_per_edge_groups_each_get_every_origin() {
        let pop = population(300);
        let schema = Schema::default();
        let q = paper_query("Q7").unwrap();
        let a = analyze(&q, &schema).unwrap();
        let r = evaluate(&q, &a, &schema, &pop);
        let infected = pop.vertices.iter().filter(|v| v.infected).count() as u64;
        // With per-edge grouping every passing origin contributes one entry
        // to EVERY group window.
        for g in &r.groups {
            assert_eq!(g.histogram.iter().sum::<u64>(), infected, "{}", g.label);
        }
    }

    #[test]
    fn khop_rows_first_edge() {
        // On a path 0-1-2, origin 0's 2-hop rows are (1, edge01), (2, edge01).
        use mycelium_graph::data::EdgeData;
        use mycelium_graph::graph::GraphBuilder;
        let mut b = GraphBuilder::new(3, 4);
        let mut e1 = EdgeData::household_contact(1);
        e1.duration = 100;
        let mut e2 = EdgeData::household_contact(2);
        e2.duration = 200;
        b.add_edge(0, 1, e1);
        b.add_edge(1, 2, e2);
        let pop = Population {
            graph: b.build(),
            vertices: vec![VertexData::healthy(30, 0); 3],
        };
        let rows = khop_rows(&pop, 0, 2);
        assert_eq!(rows.len(), 2);
        for (_, e) in rows {
            assert_eq!(e.duration, 100, "first edge is always edge(0,1)");
        }
    }

    #[test]
    fn uninfected_t_inf_never_matches_ranges() {
        let schema = Schema::default();
        let healthy = VertexData::healthy(30, 0);
        let edge = mycelium_graph::data::EdgeData::household_contact(10);
        let row = Row {
            self_v: &healthy,
            dest: &healthy,
            edge: &edge,
        };
        let col = Column::new(ColumnGroup::Dest, "tInf");
        assert_eq!(eval_column(&col, &row, &schema), -1);
    }
}
