//! Discretized evaluation of cross (`self` ↔ `dest`) clauses.
//!
//! The §4.5 sequence encoding quantizes the `dest` column of a cross
//! comparison to a finite position range (the language requires that "both
//! take a finite number of discrete values"). The *same* quantization must
//! be used by the plaintext oracle and by the encrypted pipeline — the
//! neighbor decides which position its value occupies, and the origin
//! decides, per position, whether the clause holds and (for Q10-style
//! grouping) which group the position belongs to. This module is that
//! single shared definition.

use mycelium_graph::data::VertexData;

use crate::analyze::Schema;
use crate::ast::{Atom, Column, ColumnGroup, GroupBy, Value};
use crate::eval::{eval_atom, Row};

/// Maps a destination's actual value of the sequence column to its
/// position in `[0, range)`, or `None` when the value is undefined or out
/// of range (such a neighbor contributes the neutral element at every
/// position).
pub fn discretize_dest(col: &Column, dest: &VertexData, schema: &Schema) -> Option<usize> {
    debug_assert_eq!(col.group, ColumnGroup::Dest);
    match col.name.as_str() {
        "tInf" => {
            if !dest.infected {
                return None;
            }
            let p = dest.t_inf as usize;
            (p < schema.t_inf_range).then_some(p)
        }
        "age" => {
            let p = (dest.age as usize) / 10;
            Some(p.min(schema.age_range - 1))
        }
        "inf" => Some(dest.infected as usize),
        _ => None,
    }
}

/// The representative concrete value of position `p` (what the origin
/// substitutes for the `dest` column when evaluating the clause).
pub fn representative(col: &Column, p: usize) -> i64 {
    match col.name.as_str() {
        "tInf" => p as i64,
        "age" => p as i64 * 10 + 5, // Decade midpoint.
        _ => p as i64,
    }
}

/// Evaluates a cross clause (a disjunction of atoms) at position `p`:
/// every occurrence of the sequence column is replaced by the position's
/// representative; the dest is assumed "defined" (e.g. diagnosed) since a
/// neighbor only claims a position when its value is.
pub fn clause_holds_at_position(
    clause: &[Atom],
    self_v: &VertexData,
    edge: &mycelium_graph::data::EdgeData,
    col: &Column,
    p: usize,
    schema: &Schema,
) -> bool {
    let rep = representative(col, p);
    // Build a synthetic dest whose sequence column takes the
    // representative value and which counts as diagnosed.
    let dest = match col.name.as_str() {
        "tInf" => VertexData {
            infected: true,
            t_inf: rep.max(0) as u16,
            age: 0,
            household: 0,
        },
        "age" => VertexData {
            infected: true,
            t_inf: 0,
            age: rep.clamp(0, 255) as u8,
            household: 0,
        },
        _ => VertexData {
            infected: rep != 0,
            t_inf: 0,
            age: 0,
            household: 0,
        },
    };
    let row = Row {
        self_v,
        dest: &dest,
        edge,
    };
    clause.iter().any(|a| eval_atom(a, &row, schema))
}

/// Group index for a cross `GROUP BY` expression (Q10's
/// `stage(dest.tInf - self.tInf)`) evaluated at position `p`.
pub fn cross_group_index(
    gb: &GroupBy,
    self_v: &VertexData,
    col: &Column,
    p: usize,
    schema: &Schema,
) -> usize {
    match gb {
        GroupBy::Func { name, arg } if name == "stage" => {
            let rep = representative(col, p);
            let x = match arg {
                Value::SubCols(a, b) => {
                    let val = |c: &Column| -> i64 {
                        if c.group == ColumnGroup::Dest && c.name == col.name {
                            rep
                        } else if c.group == ColumnGroup::SelfV {
                            match c.name.as_str() {
                                "tInf" => {
                                    if self_v.infected {
                                        self_v.t_inf as i64
                                    } else {
                                        -1
                                    }
                                }
                                "age" => self_v.age as i64,
                                _ => 0,
                            }
                        } else {
                            0
                        }
                    };
                    val(a) - val(b)
                }
                _ => 0,
            };
            let _ = schema;
            usize::from(x > 5)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use mycelium_graph::data::EdgeData;

    fn schema() -> Schema {
        Schema::default()
    }

    fn tinf_col() -> Column {
        Column::new(ColumnGroup::Dest, "tInf")
    }

    #[test]
    fn discretize_tinf() {
        let s = schema();
        let mut d = VertexData::healthy(30, 0);
        assert_eq!(discretize_dest(&tinf_col(), &d, &s), None);
        d.infected = true;
        d.t_inf = 5;
        assert_eq!(discretize_dest(&tinf_col(), &d, &s), Some(5));
        d.t_inf = 14; // Out of the 14-value range [0, 13].
        assert_eq!(discretize_dest(&tinf_col(), &d, &s), None);
    }

    #[test]
    fn discretize_age_decades() {
        let s = schema();
        let col = Column::new(ColumnGroup::Dest, "age");
        let mut d = VertexData::healthy(37, 0);
        assert_eq!(discretize_dest(&col, &d, &s), Some(3));
        d.age = 99;
        assert_eq!(discretize_dest(&col, &d, &s), Some(9));
        d.age = 120;
        assert_eq!(discretize_dest(&col, &d, &s), Some(9), "clamped");
    }

    #[test]
    fn q3_clause_at_positions() {
        // dest.tInf > self.tInf + 2 with self.tInf = 4: holds for p >= 7.
        let s = schema();
        let clause = vec![Atom::Cmp {
            lhs: Value::Col(tinf_col()),
            op: CmpOp::Gt,
            rhs: Value::Add(
                Box::new(Value::Col(Column::new(ColumnGroup::SelfV, "tInf"))),
                2,
            ),
        }];
        let self_v = VertexData {
            infected: true,
            t_inf: 4,
            age: 30,
            household: 0,
        };
        let edge = EdgeData::household_contact(0);
        for p in 0..14 {
            let holds = clause_holds_at_position(&clause, &self_v, &edge, &tinf_col(), p, &s);
            assert_eq!(holds, p > 6, "position {p}");
        }
    }

    #[test]
    fn q10_stage_groups_by_serial_interval() {
        let gb = GroupBy::Func {
            name: "stage".into(),
            arg: Value::SubCols(tinf_col(), Column::new(ColumnGroup::SelfV, "tInf")),
        };
        let self_v = VertexData {
            infected: true,
            t_inf: 2,
            age: 30,
            household: 0,
        };
        let s = schema();
        // Serial interval p - 2: incubation (≤5) for p ≤ 7, illness after.
        assert_eq!(cross_group_index(&gb, &self_v, &tinf_col(), 7, &s), 0);
        assert_eq!(cross_group_index(&gb, &self_v, &tinf_col(), 8, &s), 1);
    }

    #[test]
    fn representatives() {
        assert_eq!(representative(&tinf_col(), 9), 9);
        let age = Column::new(ColumnGroup::Dest, "age");
        assert_eq!(representative(&age, 3), 35);
    }
}
