//! Mycelium's SQL-subset query language (§4).
//!
//! Queries see the data as a table `neigh(k)` with one row per member of
//! each origin vertex's `k`-hop neighborhood; columns come in three groups:
//! `self.*` (the origin's private data), `dest.*` (the neighbor's), and
//! `edge.*` (the first edge on the path). Two extensions distinguish the
//! language from plain SQL: the outer aggregate must be `HISTO` or `GSUM`,
//! and `GSUM` queries carry a clipping range (§4).
//!
//! * [`ast`] — the abstract syntax tree.
//! * [`parser`] — a hand-rolled lexer + recursive-descent parser.
//! * [`analyze`] — semantic analysis: clause classification
//!   (self/dest/edge/cross), the Figure 6 ciphertext count, static
//!   differential-privacy sensitivity (§4.7), multiplication depth, and the
//!   coefficient-window layout used by the HE encoding.
//! * [`builtin`] — the paper's ten example queries (Figure 2).
//! * [`eval`] — ground-truth plaintext evaluation over a synthetic
//!   population (the oracle the encrypted pipeline is checked against).

pub mod analyze;
pub mod ast;
pub mod builtin;
pub mod crosseval;
pub mod eval;
pub mod parser;

pub use analyze::{analyze, cost_report, cost_report_sql, Analysis, CostReport, ReportError};
pub use ast::{Agg, Atom, Column, ColumnGroup, GroupBy, Inner, Pred, Query, Value};
pub use parser::{parse, ParseError};
