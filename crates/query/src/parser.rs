//! Lexer and recursive-descent parser for the query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := SELECT agg FROM neigh(INT) [WHERE pred]
//!             [GROUP BY groupby] [CLIP [INT, INT]]
//! agg      := (HISTO | GSUM) ( inner )
//! inner    := COUNT(*) | SUM(value) | SUM(value) / COUNT(*)
//! pred     := conj (OR conj)*          -- OR binds looser than AND
//! conj     := atom (AND atom)*
//! atom     := '(' pred ')' | func '(' column ')'
//!           | value (cmp value | IN '[' value ',' value ']')?
//! value    := (column | INT | func...) (('+'|'-') INT)?
//!           | column '-' column
//! column   := (self|dest|edge) '.' IDENT
//! cmp      := = | != | < | <= | > | >=
//! groupby  := column | func '(' value ')'
//! ```

use crate::ast::{Agg, Atom, CmpOp, Column, ColumnGroup, GroupBy, Inner, Pred, Query, Value};

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Token index where the failure occurred.
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(char),
    Le,
    Ge,
    Ne,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let v = text.parse().map_err(|_| ParseError {
                message: format!("integer overflow: {text}"),
                position: toks.len(),
            })?;
            toks.push(Tok::Int(v));
        } else if c == '<' && chars.get(i + 1) == Some(&'=') {
            toks.push(Tok::Le);
            i += 2;
        } else if c == '>' && chars.get(i + 1) == Some(&'=') {
            toks.push(Tok::Ge);
            i += 2;
        } else if c == '!' && chars.get(i + 1) == Some(&'=') {
            toks.push(Tok::Ne);
            i += 2;
        } else if "()[],.*/+-=<>".contains(c) {
            toks.push(Tok::Sym(c));
            i += 1;
        } else {
            return Err(ParseError {
                message: format!("unexpected character {c:?}"),
                position: toks.len(),
            });
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            position: self.pos,
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(self.err(format!("expected {c:?}, got {other:?}"))),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected keyword {kw}, got {other:?}"))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.err(format!("expected integer, got {other:?}"))),
        }
    }

    fn signed_int(&mut self) -> Result<i64, ParseError> {
        if matches!(self.peek(), Some(Tok::Sym('-'))) {
            self.next();
            Ok(-self.expect_int()?)
        } else {
            self.expect_int()
        }
    }

    fn query(&mut self, name: &str) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let agg = match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("HISTO") => Agg::Histo,
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("GSUM") => Agg::Gsum,
            other => return Err(self.err(format!("expected HISTO or GSUM, got {other:?}"))),
        };
        self.expect_sym('(')?;
        let inner = self.inner()?;
        self.expect_sym(')')?;
        self.expect_kw("FROM")?;
        self.expect_kw("neigh")?;
        self.expect_sym('(')?;
        let hops = self.expect_int()? as usize;
        self.expect_sym(')')?;
        let predicate = if self.peek_kw("WHERE") {
            self.next();
            self.pred()?
        } else {
            Pred::default()
        };
        let group_by = if self.peek_kw("GROUP") {
            self.next();
            self.expect_kw("BY")?;
            Some(self.group_by()?)
        } else {
            None
        };
        let clip = if self.peek_kw("CLIP") {
            self.next();
            self.expect_sym('[')?;
            let a = self.expect_int()? as u64;
            self.expect_sym(',')?;
            let b = self.expect_int()? as u64;
            self.expect_sym(']')?;
            Some((a, b))
        } else {
            None
        };
        if self.pos != self.toks.len() {
            return Err(self.err("trailing tokens after query"));
        }
        if hops == 0 {
            return Err(self.err("neigh(k) requires k >= 1"));
        }
        Ok(Query {
            name: name.to_string(),
            agg,
            inner,
            hops,
            predicate,
            group_by,
            clip,
        })
    }

    fn inner(&mut self) -> Result<Inner, ParseError> {
        if self.peek_kw("COUNT") {
            self.next();
            self.expect_sym('(')?;
            self.expect_sym('*')?;
            self.expect_sym(')')?;
            return Ok(Inner::Count);
        }
        self.expect_kw("SUM")?;
        self.expect_sym('(')?;
        let v = self.value()?;
        self.expect_sym(')')?;
        if matches!(self.peek(), Some(Tok::Sym('/'))) {
            self.next();
            self.expect_kw("COUNT")?;
            self.expect_sym('(')?;
            self.expect_sym('*')?;
            self.expect_sym(')')?;
            return Ok(Inner::Ratio(v));
        }
        Ok(Inner::Sum(v))
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        // pred := conj (OR conj)* — normalize to CNF-ish: collect OR groups
        // of conjunction... Figure 2 queries are pure conjunctions; we
        // support a single level: conjunction of disjunctions.
        let mut clauses = Vec::new();
        loop {
            let disj = self.disjunction_atom()?;
            clauses.push(disj);
            if self.peek_kw("AND") {
                self.next();
            } else {
                break;
            }
        }
        Ok(Pred { clauses })
    }

    /// One clause: `group (OR group)*` where a group is an atom or a
    /// parenthesized disjunction.
    fn disjunction_atom(&mut self) -> Result<Vec<Atom>, ParseError> {
        let mut atoms = self.atom_group()?;
        while self.peek_kw("OR") {
            self.next();
            atoms.extend(self.atom_group()?);
        }
        Ok(atoms)
    }

    fn atom_group(&mut self) -> Result<Vec<Atom>, ParseError> {
        if matches!(self.peek(), Some(Tok::Sym('('))) {
            self.next();
            let atoms = self.disjunction_atom()?;
            self.expect_sym(')')?;
            return Ok(atoms);
        }
        Ok(vec![self.atom()?])
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        // Function atom: ident '(' column ')'.
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if !is_column_group(&name) && matches!(self.toks.get(self.pos + 1), Some(Tok::Sym('(')))
            {
                self.next();
                self.expect_sym('(')?;
                let arg = self.column()?;
                self.expect_sym(')')?;
                return Ok(Atom::Func { name, arg });
            }
        }
        let lhs = self.value()?;
        match self.peek().cloned() {
            Some(Tok::Sym('=')) => {
                self.next();
                let rhs = self.value()?;
                Ok(Atom::Cmp {
                    lhs,
                    op: CmpOp::Eq,
                    rhs,
                })
            }
            Some(Tok::Ne) => {
                self.next();
                let rhs = self.value()?;
                Ok(Atom::Cmp {
                    lhs,
                    op: CmpOp::Ne,
                    rhs,
                })
            }
            Some(Tok::Sym('<')) => {
                self.next();
                let rhs = self.value()?;
                Ok(Atom::Cmp {
                    lhs,
                    op: CmpOp::Lt,
                    rhs,
                })
            }
            Some(Tok::Le) => {
                self.next();
                let rhs = self.value()?;
                Ok(Atom::Cmp {
                    lhs,
                    op: CmpOp::Le,
                    rhs,
                })
            }
            Some(Tok::Sym('>')) => {
                self.next();
                let rhs = self.value()?;
                Ok(Atom::Cmp {
                    lhs,
                    op: CmpOp::Gt,
                    rhs,
                })
            }
            Some(Tok::Ge) => {
                self.next();
                let rhs = self.value()?;
                Ok(Atom::Cmp {
                    lhs,
                    op: CmpOp::Ge,
                    rhs,
                })
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("IN") => {
                self.next();
                self.expect_sym('[')?;
                let lo = self.value()?;
                self.expect_sym(',')?;
                let hi = self.value()?;
                self.expect_sym(']')?;
                Ok(Atom::Between { value: lhs, lo, hi })
            }
            _ => match lhs {
                Value::Col(c) => Ok(Atom::Bool(c)),
                _ => Err(self.err("expected comparison operator")),
            },
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        let base = match self.peek().cloned() {
            Some(Tok::Int(_)) | Some(Tok::Sym('-')) => Value::Lit(self.signed_int()?),
            Some(Tok::Ident(_)) => Value::Col(self.column()?),
            other => return Err(self.err(format!("expected value, got {other:?}"))),
        };
        match self.peek().cloned() {
            Some(Tok::Sym('+')) => {
                self.next();
                let lit = self.expect_int()?;
                Ok(Value::Add(Box::new(base), lit))
            }
            Some(Tok::Sym('-')) => {
                self.next();
                // Either `col - int` or `col - col` (Q10).
                if matches!(self.peek(), Some(Tok::Int(_))) {
                    let lit = self.expect_int()?;
                    Ok(Value::Add(Box::new(base), -lit))
                } else {
                    let rhs = self.column()?;
                    match base {
                        Value::Col(lhs) => Ok(Value::SubCols(lhs, rhs)),
                        _ => Err(self.err("column subtraction requires a column on the left")),
                    }
                }
            }
            _ => Ok(base),
        }
    }

    fn column(&mut self) -> Result<Column, ParseError> {
        let group = match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("self") => ColumnGroup::SelfV,
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("dest") => ColumnGroup::Dest,
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("edge") => ColumnGroup::Edge,
            other => return Err(self.err(format!("expected self/dest/edge, got {other:?}"))),
        };
        self.expect_sym('.')?;
        match self.next() {
            Some(Tok::Ident(name)) => Ok(Column { group, name }),
            other => Err(self.err(format!("expected column name, got {other:?}"))),
        }
    }

    fn group_by(&mut self) -> Result<GroupBy, ParseError> {
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if !is_column_group(&name) && matches!(self.toks.get(self.pos + 1), Some(Tok::Sym('(')))
            {
                self.next();
                self.expect_sym('(')?;
                let arg = self.value()?;
                self.expect_sym(')')?;
                return Ok(GroupBy::Func { name, arg });
            }
        }
        Ok(GroupBy::Col(self.column()?))
    }
}

fn is_column_group(s: &str) -> bool {
    s.eq_ignore_ascii_case("self")
        || s.eq_ignore_ascii_case("dest")
        || s.eq_ignore_ascii_case("edge")
}

/// Parses a query string.
pub fn parse(name: &str, input: &str) -> Result<Query, ParseError> {
    let toks = lex(input)?;
    Parser { toks, pos: 0 }.query(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn parse_q1_style() {
        let q = parse(
            "Q1",
            "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE dest.inf AND self.inf",
        )
        .unwrap();
        assert_eq!(q.agg, Agg::Histo);
        assert_eq!(q.inner, Inner::Count);
        assert_eq!(q.hops, 2);
        assert_eq!(q.predicate.clauses.len(), 2);
        assert!(q.group_by.is_none());
    }

    #[test]
    fn parse_sum_with_edge_column() {
        let q = parse(
            "Q2",
            "SELECT HISTO(SUM(edge.duration)) FROM neigh(1) \
             WHERE self.inf AND dest.tInf IN [edge.last_contact+5, edge.last_contact+10]",
        )
        .unwrap();
        assert!(matches!(q.inner, Inner::Sum(Value::Col(ref c)) if c.name == "duration"));
        let atom = &q.predicate.clauses[1][0];
        match atom {
            Atom::Between { value, lo, hi } => {
                assert!(matches!(value, Value::Col(c) if c.group == ColumnGroup::Dest));
                assert!(matches!(lo, Value::Add(_, 5)));
                assert!(matches!(hi, Value::Add(_, 10)));
            }
            other => panic!("expected Between, got {other:?}"),
        }
    }

    #[test]
    fn parse_cross_comparison() {
        let q = parse(
            "Q3",
            "SELECT HISTO(SUM(edge.contacts)) FROM neigh(1) \
             WHERE self.inf AND dest.tInf AND dest.tInf > self.tInf+2",
        )
        .unwrap();
        let atom = &q.predicate.clauses[2][0];
        assert!(matches!(
            atom,
            Atom::Cmp {
                op: CmpOp::Gt,
                rhs: Value::Add(_, 2),
                ..
            }
        ));
    }

    #[test]
    fn parse_group_by_and_func() {
        let q = parse(
            "Q8",
            "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) WHERE self.inf \
             GROUP BY isHousehold(edge.location) CLIP [0, 10]",
        )
        .unwrap();
        assert_eq!(q.agg, Agg::Gsum);
        assert!(matches!(q.inner, Inner::Ratio(_)));
        assert!(
            matches!(q.group_by, Some(GroupBy::Func { ref name, .. }) if name == "isHousehold")
        );
        assert_eq!(q.clip, Some((0, 10)));
    }

    #[test]
    fn parse_func_atom() {
        let q = parse(
            "Q4",
            "SELECT HISTO(SUM(dest.inf)) FROM neigh(1) WHERE onSubway(edge.location) AND self.inf",
        )
        .unwrap();
        assert!(matches!(
            &q.predicate.clauses[0][0],
            Atom::Func { name, .. } if name == "onSubway"
        ));
    }

    #[test]
    fn parse_column_subtraction_groupby() {
        let q = parse(
            "Q10",
            "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) \
             WHERE self.inf AND dest.tInf > self.tInf+2 \
             GROUP BY stage(dest.tInf - self.tInf) CLIP [0, 5]",
        )
        .unwrap();
        match q.group_by.unwrap() {
            GroupBy::Func { name, arg } => {
                assert_eq!(name, "stage");
                assert!(matches!(arg, Value::SubCols(_, _)));
            }
            other => panic!("expected func group-by, got {other:?}"),
        }
    }

    #[test]
    fn parse_or_clause() {
        let q = parse(
            "T",
            "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE (self.inf OR self.age > 65) AND dest.inf",
        )
        .unwrap();
        assert_eq!(q.predicate.clauses.len(), 2);
        assert_eq!(q.predicate.clauses[0].len(), 2);
    }

    #[test]
    fn parse_age_between_with_negative_offset() {
        let q = parse(
            "Q9",
            "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) \
             WHERE dest.age IN [0, 100] AND self.age IN [dest.age-10, dest.age+10] CLIP [0, 10]",
        )
        .unwrap();
        match &q.predicate.clauses[1][0] {
            Atom::Between { lo, hi, .. } => {
                assert!(matches!(lo, Value::Add(_, -10)));
                assert!(matches!(hi, Value::Add(_, 10)));
            }
            other => panic!("expected Between, got {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("E", "SELECT HISTO(COUNT(*)) FROM neigh(0)").is_err());
        assert!(parse("E", "SELECT MAX(COUNT(*)) FROM neigh(1)").is_err());
        assert!(parse("E", "SELECT HISTO(COUNT(*)) FROM neigh(1) garbage").is_err());
        assert!(parse("E", "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE bogus.col").is_err());
        assert!(parse("E", "SELECT HISTO(COUNT(*» FROM neigh(1)").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("T", "select histo(count(*)) from neigh(1) where self.inf").is_ok());
    }
}
