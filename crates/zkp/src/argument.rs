//! A transparent Fiat–Shamir spot-check argument for R1CS satisfaction.
//!
//! The prover Merkle-commits to its witness; the Fiat–Shamir transform
//! (hashing the commitment, the statement digest, and a context string)
//! selects `t` random constraint indices; the prover opens every witness
//! variable those constraints touch, with Merkle inclusion proofs. The
//! verifier recomputes the challenge, checks the openings, and evaluates
//! the selected constraints.
//!
//! A witness with a `δ` fraction of unsatisfied constraints escapes
//! detection with probability `(1 − δ)^t`; for the §4.6 one-hot statements
//! a single dishonest coefficient violates at least one of a handful of
//! constraints, so `t` is chosen to push the escape probability below
//! `2^-40` for the circuit sizes in use. (Succinctness and the
//! zero-knowledge property of the deployed system come from Groth16; see
//! [`crate::cost`] and DESIGN.md.)

use std::collections::HashMap;

use mycelium_crypto::merkle::{InclusionProof, MerkleTree};
use mycelium_crypto::sha256::{sha256_concat, Digest};

use crate::r1cs::{ConstraintSystem, Var};

/// Default number of spot-checked constraints.
pub const DEFAULT_CHECKS: usize = 80;

/// A spot-check proof.
#[derive(Debug, Clone)]
pub struct Proof {
    /// Merkle root of the witness commitment.
    pub witness_root: Digest,
    /// Opened variables: `(var, value, per-leaf salt, inclusion proof)`.
    pub openings: Vec<Opening>,
    /// Number of constraints checked (`t`).
    pub checks: usize,
}

/// One opened witness variable.
#[derive(Debug, Clone)]
pub struct Opening {
    /// Variable index.
    pub var: Var,
    /// Claimed value.
    pub value: u64,
    /// The per-leaf salt (derived from the prover's master salt, so
    /// unopened leaves stay hidden).
    pub salt: Digest,
    /// Merkle inclusion proof for the salted leaf at index `var`.
    pub proof: InclusionProof,
}

fn leaf_bytes(var: Var, value: u64, salt: &Digest) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + 8 + 32);
    v.extend_from_slice(&(var as u64).to_le_bytes());
    v.extend_from_slice(&value.to_le_bytes());
    v.extend_from_slice(salt);
    v
}

fn derive_master_salt(witness: &[u64], context: &[u8]) -> Digest {
    // Deterministic in (witness, statement): good enough for a prover-side
    // secret in this simulation (a deployment would draw it fresh).
    let mut bytes = Vec::with_capacity(witness.len() * 8);
    for w in witness {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    sha256_concat(&[b"zkp-salt", context, &bytes])
}

fn leaf_salt(master: &Digest, var: Var) -> Digest {
    sha256_concat(&[b"zkp-leaf-salt", master, &(var as u64).to_le_bytes()])
}

fn challenge_indices(root: &Digest, statement: &Digest, count: usize, total: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    let mut ctr = 0u64;
    while out.len() < count.min(total) {
        let d = sha256_concat(&[b"zkp-challenge", root, statement, &ctr.to_le_bytes()]);
        ctr += 1;
        let idx = (u64::from_le_bytes(d[..8].try_into().expect("8 bytes")) % total as u64) as usize;
        if !out.contains(&idx) {
            out.push(idx);
        }
    }
    out
}

/// Produces a proof that `witness` satisfies `cs`, bound to `statement`
/// (e.g. a hash of the ciphertext the plaintext witness corresponds to).
///
/// # Panics
///
/// Panics if the witness does not satisfy the system (honest provers only
/// call this with valid witnesses; a malicious prover would forge the
/// structure, which [`verify`] is designed to catch).
pub fn prove(cs: &ConstraintSystem, witness: &[u64], statement: &Digest, checks: usize) -> Proof {
    assert!(
        cs.is_satisfied(witness),
        "prove called with an unsatisfied witness"
    );
    prove_unchecked(cs, witness, statement, checks)
}

/// Like [`prove`] but without the satisfaction assertion — used by tests
/// and malicious-device simulations that *want* to produce a proof for a
/// bad witness (which must then fail verification).
pub fn prove_unchecked(
    cs: &ConstraintSystem,
    witness: &[u64],
    statement: &Digest,
    checks: usize,
) -> Proof {
    let master = derive_master_salt(witness, statement);
    let leaves: Vec<Vec<u8>> = witness
        .iter()
        .enumerate()
        .map(|(v, &w)| leaf_bytes(v, w, &leaf_salt(&master, v)))
        .collect();
    let tree = MerkleTree::build(&leaves);
    let root = tree.root();
    let indices = challenge_indices(&root, statement, checks, cs.constraints.len());
    // Open every variable the selected constraints touch.
    let mut vars: Vec<Var> = Vec::new();
    for &i in &indices {
        let con = &cs.constraints[i];
        for lc in [&con.a, &con.b, &con.c] {
            for v in lc.vars() {
                if v != 0 && !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
    }
    vars.sort_unstable();
    let openings = vars
        .into_iter()
        .map(|v| Opening {
            var: v,
            value: witness[v],
            salt: leaf_salt(&master, v),
            proof: tree.prove(v).expect("witness variable in tree"),
        })
        .collect();
    Proof {
        witness_root: root,
        openings,
        checks,
    }
}

/// Verifies a proof against the constraint system and statement digest.
pub fn verify(cs: &ConstraintSystem, statement: &Digest, proof: &Proof) -> bool {
    let indices = challenge_indices(
        &proof.witness_root,
        statement,
        proof.checks,
        cs.constraints.len(),
    );
    // Every opening must bind (var, value) to the committed root: the leaf
    // encodes its own index, so an opening cannot be replayed at another
    // position.
    let mut opened: HashMap<Var, u64> = HashMap::new();
    for o in &proof.openings {
        let leaf = leaf_bytes(o.var, o.value, &o.salt);
        if !o.proof.verify(&proof.witness_root, o.var, &leaf) {
            return false;
        }
        opened.insert(o.var, o.value);
    }
    // Every selected constraint must be checkable from the openings and
    // satisfied.
    for &i in &indices {
        match cs.check_constraint(i, &opened) {
            Some(true) => {}
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wellformed::{well_formed_circuit, well_formed_witness};
    use mycelium_math::zq::Modulus;

    fn field() -> Modulus {
        Modulus::new_prime(2_147_483_647).unwrap()
    }

    fn statement(tag: u8) -> Digest {
        [tag; 32]
    }

    #[test]
    fn honest_proof_verifies() {
        let c = well_formed_circuit(field(), 16, 8);
        let mut coeffs = vec![0u64; 16];
        coeffs[3] = 1;
        coeffs[9] = 1;
        let w = well_formed_witness(&c, &coeffs);
        let proof = prove(&c.cs, &w, &statement(1), DEFAULT_CHECKS);
        assert!(verify(&c.cs, &statement(1), &proof));
    }

    #[test]
    fn bad_witness_detected() {
        let c = well_formed_circuit(field(), 16, 8);
        let mut coeffs = vec![0u64; 16];
        coeffs[3] = 2; // Oversized coefficient.
        let w = well_formed_witness(&c, &coeffs);
        let proof = prove_unchecked(&c.cs, &w, &statement(2), DEFAULT_CHECKS);
        assert!(!verify(&c.cs, &statement(2), &proof));
    }

    #[test]
    fn double_contribution_detected() {
        let c = well_formed_circuit(field(), 8, 8);
        let w = well_formed_witness(&c, &[1, 1, 0, 0, 0, 0, 0, 0]);
        let proof = prove_unchecked(&c.cs, &w, &statement(3), DEFAULT_CHECKS);
        assert!(!verify(&c.cs, &statement(3), &proof));
    }

    #[test]
    fn wrong_statement_fails() {
        // The challenge is bound to the statement (ciphertext digest), so a
        // proof cannot be replayed for a different ciphertext.
        let c = well_formed_circuit(field(), 8, 8);
        let w = well_formed_witness(&c, &[1, 0, 0, 0, 0, 0, 0, 0]);
        let proof = prove(&c.cs, &w, &statement(4), DEFAULT_CHECKS);
        assert!(verify(&c.cs, &statement(4), &proof));
        // Re-verification under a different statement re-derives different
        // challenge indices; the openings then do not cover them (except
        // with tiny probability for toy circuits — use a larger one).
        let big = well_formed_circuit(field(), 256, 16);
        let mut coeffs = vec![0u64; 256];
        coeffs[7] = 1;
        let wb = well_formed_witness(&big, &coeffs);
        let pb = prove(&big.cs, &wb, &statement(5), 20);
        assert!(verify(&big.cs, &statement(5), &pb));
        assert!(!verify(&big.cs, &statement(6), &pb));
    }

    #[test]
    fn tampered_opening_fails() {
        let c = well_formed_circuit(field(), 8, 8);
        let w = well_formed_witness(&c, &[0, 0, 1, 0, 0, 0, 0, 0]);
        let mut proof = prove(&c.cs, &w, &statement(7), DEFAULT_CHECKS);
        // Claim a different value for some opened variable.
        if let Some(first) = proof.openings.first_mut() {
            first.value += 1;
        }
        assert!(!verify(&c.cs, &statement(7), &proof));
    }

    #[test]
    fn detection_probability_scales_with_checks() {
        // With very few checks a sparse violation can slip through; with
        // DEFAULT_CHECKS on these circuit sizes it cannot (every constraint
        // is selected since t exceeds the count).
        let c = well_formed_circuit(field(), 32, 32);
        let mut coeffs = vec![0u64; 32];
        coeffs[0] = 5;
        let w = well_formed_witness(&c, &coeffs);
        let p = prove_unchecked(&c.cs, &w, &statement(8), DEFAULT_CHECKS);
        assert!(!verify(&c.cs, &statement(8), &p));
    }
}
