//! The Groth16 cost model (§5, §6.4, §6.6).
//!
//! The paper's prototype proves well-formedness with Groth16 (ZoKrates →
//! bellman) and reports: proof generation ≈ 1 minute per device (§6.4),
//! and aggregator-side verification whose cost is dominated not by the
//! three pairings but by the public-input scalar multiplications — Groth16
//! "scales linearly in the public I/O size, which, in our case, includes
//! the fairly large ciphertexts" (§6.6). This model reproduces those
//! costs; the constants are calibrated so that the Figure 9(b) curve (ZKP
//! verification dominating global aggregation, ~10⁵–10⁶ cores for 10⁹
//! users within 10 hours) matches the paper.

/// Groth16 cost constants.
#[derive(Debug, Clone)]
pub struct Groth16Model {
    /// Proof size in bytes (two G1 + one G2 element on BLS12-381).
    pub proof_bytes: usize,
    /// Proving time per proof in seconds (§6.4: "around a minute").
    pub prove_seconds: f64,
    /// Fixed verification cost (three pairings), seconds.
    pub verify_base_seconds: f64,
    /// Per-public-input-element (32-byte scalar) verification cost: one
    /// G1 scalar multiplication, seconds.
    pub verify_per_element_seconds: f64,
}

impl Default for Groth16Model {
    fn default() -> Self {
        Self {
            proof_bytes: 192,
            prove_seconds: 60.0,
            verify_base_seconds: 0.006,
            verify_per_element_seconds: 75e-6,
        }
    }
}

impl Groth16Model {
    /// Verification time for a statement whose public input is
    /// `public_input_bytes` long (the ciphertexts, per §6.6).
    pub fn verify_seconds(&self, public_input_bytes: usize) -> f64 {
        let elements = public_input_bytes.div_ceil(32);
        self.verify_base_seconds + elements as f64 * self.verify_per_element_seconds
    }

    /// Total proving time for a device submitting `proofs` proofs.
    pub fn device_prove_seconds(&self, proofs: usize) -> f64 {
        self.prove_seconds * proofs as f64
    }

    /// Aggregator cores needed to verify `proofs` proofs (each with the
    /// given public-input size) within `deadline_seconds`.
    pub fn cores_for_verification(
        &self,
        proofs: u64,
        public_input_bytes: usize,
        deadline_seconds: f64,
    ) -> f64 {
        let total = proofs as f64 * self.verify_seconds(public_input_bytes);
        total / deadline_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proof_size_is_constant() {
        let m = Groth16Model::default();
        assert_eq!(m.proof_bytes, 192);
    }

    #[test]
    fn verification_scales_linearly_in_public_input() {
        let m = Groth16Model::default();
        let small = m.verify_seconds(1024);
        let big = m.verify_seconds(4_300_000); // One paper-sized ciphertext.
        assert!(big > 100.0 * small);
        // ≈ 134k elements · 75µs ≈ 10 s — the §6.6 bottleneck.
        assert!(big > 5.0 && big < 20.0, "verify {big} s");
    }

    #[test]
    fn figure9b_scale() {
        // 10^9 participants, one 4.3 MB ciphertext each, 10-hour deadline:
        // the paper's Figure 9(b) shows ~10^5–10^6 cores, dominated by ZKP
        // verification.
        let m = Groth16Model::default();
        let cores = m.cores_for_verification(1_000_000_000, 4_300_000, 10.0 * 3600.0);
        assert!(
            (1e5..1e7).contains(&cores),
            "cores for 1e9 users: {cores:.0}"
        );
        // And smaller populations need proportionally fewer.
        let small = m.cores_for_verification(1_000_000, 4_300_000, 10.0 * 3600.0);
        assert!((cores / small - 1000.0).abs() < 1.0);
    }

    #[test]
    fn device_proving_time_matches_paper() {
        // §6.4: "ZKP proof generation takes around a minute".
        let m = Groth16Model::default();
        let t = m.device_prove_seconds(1);
        assert!((30.0..120.0).contains(&t));
    }
}
