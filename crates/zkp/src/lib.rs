//! Proofs of ciphertext well-formedness (§4.6).
//!
//! Byzantine devices must not be able to inject histogram contributions
//! with more than one nonzero coefficient or coefficients larger than 1 —
//! otherwise a single device could shift a released statistic arbitrarily.
//! Mycelium has every device prove, in zero knowledge, that its ciphertext
//! is *well-formed*; the aggregator verifies and discards offenders, which
//! bounds Byzantine influence to the same ±1-per-bin any honest device has.
//!
//! The paper instantiates the proofs with Groth16 (ZoKrates + bellman).
//! Pairing-based SNARKs are out of scope for a from-scratch workspace, so
//! this crate provides (per DESIGN.md):
//!
//! * [`r1cs`] — a real rank-1 constraint system over a word-sized prime
//!   field, with the witness-generation helpers the statements need.
//! * [`wellformed`] — the §4.6 statements as R1CS circuits: *one-hot*
//!   (at most one nonzero coefficient, value ≤ 1, inside a window) and
//!   *windowed* variants for GROUP BY layouts.
//! * [`argument`] — a transparent Fiat–Shamir spot-check argument:
//!   Merkle-commit the witness, derive random constraint indices from the
//!   transcript, open exactly those constraints. Sound against our
//!   simulated adversaries (cheating probability `(1-δ)^t` for unsatisfied
//!   fraction `δ`); *succinctness and zero-knowledge* are supplied by the
//!   Groth16 cost model below, not by this argument.
//! * [`cost`] — the Groth16 cost model (proof size, proving time,
//!   verification time linear in the public input) calibrated to the
//!   paper's reported numbers; this drives the Figure 9(b) reproduction.

pub mod argument;
pub mod cost;
pub mod r1cs;
pub mod wellformed;

pub use argument::{prove, verify, Proof};
pub use r1cs::{ConstraintSystem, LinearCombination};
