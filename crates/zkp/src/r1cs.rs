//! A rank-1 constraint system (R1CS) over a word-sized prime field.
//!
//! Every constraint has the form `⟨A, w⟩ · ⟨B, w⟩ = ⟨C, w⟩` for sparse
//! linear combinations `A, B, C` over the witness vector `w` (with `w[0]`
//! fixed to 1). This is the same constraint shape Groth16 consumes; the
//! circuits in [`crate::wellformed`] compile to it.

use mycelium_math::zq::Modulus;

/// A variable index into the witness vector (`0` is the constant one).
pub type Var = usize;

/// A sparse linear combination `Σ coeff·w[var]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinearCombination {
    /// `(variable, coefficient)` terms.
    pub terms: Vec<(Var, u64)>,
}

impl LinearCombination {
    /// The zero combination.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A single variable.
    pub fn var(v: Var) -> Self {
        Self {
            terms: vec![(v, 1)],
        }
    }

    /// A constant (coefficient on `w[0] = 1`).
    pub fn constant(c: u64) -> Self {
        Self {
            terms: vec![(0, c)],
        }
    }

    /// Adds a term.
    pub fn plus(mut self, v: Var, coeff: u64) -> Self {
        self.terms.push((v, coeff));
        self
    }

    /// Evaluates against a witness.
    pub fn eval(&self, witness: &[u64], q: &Modulus) -> u64 {
        let mut acc = 0u64;
        for &(v, c) in &self.terms {
            acc = q.add(acc, q.mul(q.reduce(c), q.reduce(witness[v])));
        }
        acc
    }

    /// The variables this combination touches.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }
}

/// One constraint `⟨A,w⟩·⟨B,w⟩ = ⟨C,w⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left factor.
    pub a: LinearCombination,
    /// Right factor.
    pub b: LinearCombination,
    /// Product.
    pub c: LinearCombination,
}

/// A constraint system plus witness layout.
#[derive(Debug, Clone)]
pub struct ConstraintSystem {
    /// Field modulus.
    pub field: Modulus,
    /// Number of witness variables (including the constant 1 at index 0).
    pub num_vars: usize,
    /// Constraints.
    pub constraints: Vec<Constraint>,
    /// How many leading witness variables (after the constant) are public.
    pub num_public: usize,
}

impl ConstraintSystem {
    /// Creates an empty system over `field`.
    pub fn new(field: Modulus) -> Self {
        Self {
            field,
            num_vars: 1, // w[0] = 1.
            constraints: Vec::new(),
            num_public: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn alloc(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Adds a constraint.
    pub fn enforce(&mut self, a: LinearCombination, b: LinearCombination, c: LinearCombination) {
        self.constraints.push(Constraint { a, b, c });
    }

    /// Checks whether `witness` satisfies every constraint.
    ///
    /// # Panics
    ///
    /// Panics if the witness length does not match the system.
    pub fn is_satisfied(&self, witness: &[u64]) -> bool {
        self.unsatisfied_indices(witness).is_empty()
    }

    /// Indices of unsatisfied constraints.
    pub fn unsatisfied_indices(&self, witness: &[u64]) -> Vec<usize> {
        assert_eq!(witness.len(), self.num_vars, "witness length mismatch");
        assert_eq!(witness[0], 1, "w[0] must be the constant 1");
        let q = &self.field;
        self.constraints
            .iter()
            .enumerate()
            .filter_map(|(i, con)| {
                let a = con.a.eval(witness, q);
                let b = con.b.eval(witness, q);
                let c = con.c.eval(witness, q);
                if q.mul(a, b) != c {
                    Some(i)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Checks one constraint against a partial witness map (used by the
    /// spot-check verifier, which only sees opened variables).
    pub fn check_constraint(
        &self,
        index: usize,
        opened: &std::collections::HashMap<Var, u64>,
    ) -> Option<bool> {
        let con = self.constraints.get(index)?;
        let eval = |lc: &LinearCombination| -> Option<u64> {
            let mut acc = 0u64;
            for &(v, coeff) in &lc.terms {
                let w = if v == 0 { 1 } else { *opened.get(&v)? };
                acc = self.field.add(
                    acc,
                    self.field
                        .mul(self.field.reduce(coeff), self.field.reduce(w)),
                );
            }
            Some(acc)
        };
        let a = eval(&con.a)?;
        let b = eval(&con.b)?;
        let c = eval(&con.c)?;
        Some(self.field.mul(a, b) == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Modulus {
        Modulus::new_prime(2_147_483_647).unwrap()
    }

    #[test]
    fn boolean_constraint() {
        // x·(x-1) = 0 ⟺ x ∈ {0,1}.
        let q = field();
        let mut cs = ConstraintSystem::new(q);
        let x = cs.alloc();
        let x_minus_1 = LinearCombination::var(x).plus(0, q.value() - 1);
        cs.enforce(
            LinearCombination::var(x),
            x_minus_1,
            LinearCombination::zero(),
        );
        assert!(cs.is_satisfied(&[1, 0]));
        assert!(cs.is_satisfied(&[1, 1]));
        assert!(!cs.is_satisfied(&[1, 2]));
        assert_eq!(cs.unsatisfied_indices(&[1, 2]), vec![0]);
    }

    #[test]
    fn multiplication_constraint() {
        // z = x·y.
        let q = field();
        let mut cs = ConstraintSystem::new(q);
        let x = cs.alloc();
        let y = cs.alloc();
        let z = cs.alloc();
        cs.enforce(
            LinearCombination::var(x),
            LinearCombination::var(y),
            LinearCombination::var(z),
        );
        assert!(cs.is_satisfied(&[1, 3, 5, 15]));
        assert!(!cs.is_satisfied(&[1, 3, 5, 16]));
    }

    #[test]
    fn linear_combinations_evaluate() {
        let q = field();
        let lc = LinearCombination::constant(7).plus(1, 2).plus(2, 3);
        assert_eq!(lc.eval(&[1, 10, 100], &q), 7 + 20 + 300);
    }

    #[test]
    fn partial_check_with_openings() {
        let q = field();
        let mut cs = ConstraintSystem::new(q);
        let x = cs.alloc();
        let y = cs.alloc();
        cs.enforce(
            LinearCombination::var(x),
            LinearCombination::var(y),
            LinearCombination::constant(6),
        );
        let mut opened = std::collections::HashMap::new();
        opened.insert(x, 2u64);
        opened.insert(y, 3u64);
        assert_eq!(cs.check_constraint(0, &opened), Some(true));
        opened.insert(y, 4u64);
        assert_eq!(cs.check_constraint(0, &opened), Some(false));
        let empty = std::collections::HashMap::new();
        assert_eq!(cs.check_constraint(0, &empty), None, "missing openings");
        assert_eq!(cs.check_constraint(5, &opened), None, "bad index");
    }

    #[test]
    #[should_panic(expected = "witness length mismatch")]
    fn witness_shape_enforced() {
        let cs = ConstraintSystem::new(field());
        let _ = cs.is_satisfied(&[1, 2]);
    }
}
