//! The §4.6 well-formedness statements as R1CS circuits.
//!
//! A contribution plaintext is **well-formed** when each group window holds
//! at most one nonzero coefficient and that coefficient is exactly 1 —
//! precisely what stops a Byzantine device from reporting a vector "with
//! coefficients larger than 1, or with more than one nonzero coefficient"
//! (§4.6). The circuit, per window:
//!
//! * booleanity: `m_i · (m_i − 1) = 0` for every coefficient, and
//! * exclusivity: `S · (S − 1) = 0` where `S = Σ_i m_i`
//!   (so zero or one coefficient is set).

use mycelium_math::zq::Modulus;

use crate::r1cs::{ConstraintSystem, LinearCombination, Var};

/// The well-formedness circuit for a plaintext of `len` coefficients split
/// into equal `window`-sized group windows.
#[derive(Debug, Clone)]
pub struct WellFormedCircuit {
    /// The constraint system.
    pub cs: ConstraintSystem,
    /// Witness variables of the plaintext coefficients, in order.
    pub coeff_vars: Vec<Var>,
}

/// Builds the circuit.
///
/// # Panics
///
/// Panics if `window` is zero or does not divide `len`.
pub fn well_formed_circuit(field: Modulus, len: usize, window: usize) -> WellFormedCircuit {
    assert!(
        window > 0 && len.is_multiple_of(window),
        "window must divide length"
    );
    let mut cs = ConstraintSystem::new(field);
    let coeff_vars: Vec<Var> = (0..len).map(|_| cs.alloc()).collect();
    cs.num_public = 0;
    let minus_one = field.value() - 1;
    // Booleanity per coefficient.
    for &v in &coeff_vars {
        cs.enforce(
            LinearCombination::var(v),
            LinearCombination::var(v).plus(0, minus_one),
            LinearCombination::zero(),
        );
    }
    // Exclusivity per window.
    for w in coeff_vars.chunks(window) {
        let mut sum = LinearCombination::zero();
        for &v in w {
            sum = sum.plus(v, 1);
        }
        let mut sum_minus_one = sum.clone();
        sum_minus_one = sum_minus_one.plus(0, minus_one);
        cs.enforce(sum, sum_minus_one, LinearCombination::zero());
    }
    WellFormedCircuit { cs, coeff_vars }
}

/// Builds the witness for a plaintext coefficient vector.
///
/// # Panics
///
/// Panics if the coefficient count mismatches the circuit.
pub fn well_formed_witness(circuit: &WellFormedCircuit, coeffs: &[u64]) -> Vec<u64> {
    assert_eq!(coeffs.len(), circuit.coeff_vars.len(), "coefficient count");
    let mut w = vec![0u64; circuit.cs.num_vars];
    w[0] = 1;
    for (&v, &c) in circuit.coeff_vars.iter().zip(coeffs) {
        w[v] = circuit.cs.field.reduce(c);
    }
    w
}

/// Convenience: is this coefficient vector well-formed (each window one-hot
/// or empty)? Plain-code oracle used by tests and the aggregator's
/// simulation-side cross-check.
pub fn is_well_formed(coeffs: &[u64], window: usize) -> bool {
    coeffs.chunks(window).all(|w| {
        let nonzero: Vec<&u64> = w.iter().filter(|&&c| c != 0).collect();
        nonzero.len() <= 1 && nonzero.iter().all(|&&c| c == 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Modulus {
        Modulus::new_prime(2_147_483_647).unwrap()
    }

    #[test]
    fn honest_monomials_satisfy() {
        let c = well_formed_circuit(field(), 8, 4);
        for hot in 0..8 {
            let mut coeffs = vec![0u64; 8];
            coeffs[hot] = 1;
            let w = well_formed_witness(&c, &coeffs);
            assert!(c.cs.is_satisfied(&w), "hot={hot}");
        }
        // All-zero (Enc(0)) is also well-formed.
        let w = well_formed_witness(&c, &[0u64; 8]);
        assert!(c.cs.is_satisfied(&w));
        // One per window is fine.
        let w = well_formed_witness(&c, &[0, 1, 0, 0, 0, 0, 1, 0]);
        assert!(c.cs.is_satisfied(&w));
    }

    #[test]
    fn oversized_coefficient_rejected() {
        let c = well_formed_circuit(field(), 4, 4);
        let w = well_formed_witness(&c, &[2, 0, 0, 0]);
        assert!(!c.cs.is_satisfied(&w));
    }

    #[test]
    fn two_in_one_window_rejected() {
        let c = well_formed_circuit(field(), 4, 4);
        let w = well_formed_witness(&c, &[1, 0, 1, 0]);
        assert!(!c.cs.is_satisfied(&w));
        // But the same pattern across two windows is fine.
        let c2 = well_formed_circuit(field(), 4, 2);
        let w2 = well_formed_witness(&c2, &[1, 0, 1, 0]);
        assert!(c2.cs.is_satisfied(&w2));
    }

    #[test]
    fn oracle_matches_circuit() {
        let c = well_formed_circuit(field(), 6, 3);
        let cases: Vec<Vec<u64>> = vec![
            vec![0, 0, 0, 0, 0, 0],
            vec![1, 0, 0, 0, 1, 0],
            vec![1, 1, 0, 0, 0, 0],
            vec![0, 3, 0, 0, 0, 0],
        ];
        for coeffs in cases {
            let w = well_formed_witness(&c, &coeffs);
            assert_eq!(
                c.cs.is_satisfied(&w),
                is_well_formed(&coeffs, 3),
                "{coeffs:?}"
            );
        }
    }

    #[test]
    fn constraint_count() {
        let c = well_formed_circuit(field(), 16, 4);
        // 16 booleanity + 4 exclusivity.
        assert_eq!(c.cs.constraints.len(), 20);
    }

    #[test]
    #[should_panic(expected = "window must divide length")]
    fn bad_window_rejected() {
        let _ = well_formed_circuit(field(), 10, 4);
    }
}
