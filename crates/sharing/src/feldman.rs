//! Feldman verifiable secret sharing.
//!
//! A Feldman dealing is a Shamir sharing plus a public commitment vector
//! `C_j = g^{a_j}` to the sharing polynomial's coefficients. Party `i`
//! verifies its share `y_i` by checking
//! `g^{y_i} == Π_j C_j^{i^j}` — a cheating dealer who hands out
//! inconsistent shares is caught immediately. This is the building block of
//! the extended VSR protocol ([`crate::vsr`]) that moves Mycelium's
//! decryption key between committees (§4.2).

use mycelium_math::rng::Rng;

use crate::group::SchnorrGroup;
use crate::shamir::{eval_poly, Share};
use mycelium_math::zq::Modulus;

/// The public commitments of a Feldman dealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeldmanCommitment {
    /// `commit[j] = g^{a_j}` for the degree-`t` sharing polynomial.
    pub commits: Vec<u64>,
    /// The group the commitments live in.
    pub group: SchnorrGroup,
}

/// A complete Feldman dealing: shares plus commitments.
#[derive(Debug, Clone)]
pub struct FeldmanDealing {
    /// The `n` shares (evaluation points `1..=n`).
    pub shares: Vec<Share>,
    /// Public commitments.
    pub commitment: FeldmanCommitment,
}

impl FeldmanCommitment {
    /// Verifies one share against the commitments:
    /// `g^y == Π_j C_j^{x^j}`.
    pub fn verify(&self, share: &Share) -> bool {
        if share.x == 0 {
            return false;
        }
        let g = &self.group;
        let q = Modulus::new(g.q).expect("group order is a valid modulus");
        let lhs = g.exp(share.y);
        let mut rhs = 1u64;
        let mut x_pow = 1u64; // x^j mod q.
        for &c in &self.commits {
            rhs = g.mul(rhs, g.exp_base(c, x_pow));
            x_pow = q.mul(x_pow, q.reduce(share.x));
        }
        lhs == rhs
    }

    /// The commitment to the secret itself (`g^{a_0} = g^{f(0)}`).
    pub fn secret_commitment(&self) -> u64 {
        self.commits[0]
    }

    /// Derives the commitment to `f(x)` for an arbitrary point — i.e. what
    /// `g^{y_x}` *should* be. Used by VSR to check sub-dealings against the
    /// previous committee's commitments.
    pub fn share_commitment(&self, x: u64) -> u64 {
        let g = &self.group;
        let q = Modulus::new(g.q).expect("group order is a valid modulus");
        let mut acc = 1u64;
        let mut x_pow = 1u64;
        for &c in &self.commits {
            acc = g.mul(acc, g.exp_base(c, x_pow));
            x_pow = q.mul(x_pow, q.reduce(x));
        }
        acc
    }

    /// Threshold of the committed polynomial (degree).
    pub fn threshold(&self) -> usize {
        self.commits.len() - 1
    }
}

/// Deals a `(t, n)` Feldman sharing of `secret` in the given group.
///
/// # Panics
///
/// Panics on invalid threshold parameters.
pub fn deal<R: Rng + ?Sized>(
    secret: u64,
    t: usize,
    n: usize,
    group: SchnorrGroup,
    rng: &mut R,
) -> FeldmanDealing {
    assert!(n > 0 && t < n, "invalid threshold parameters");
    assert!((n as u64) < group.q, "too many parties for the field");
    let q = Modulus::new(group.q).expect("group order is a valid modulus");
    let mut coeffs = Vec::with_capacity(t + 1);
    coeffs.push(q.reduce(secret));
    for _ in 0..t {
        coeffs.push(rng.gen_range(0..group.q));
    }
    let shares: Vec<Share> = (1..=n as u64)
        .map(|x| Share {
            x,
            y: eval_poly(&coeffs, x, q),
        })
        .collect();
    let commits = coeffs.iter().map(|&a| group.exp(a)).collect();
    FeldmanDealing {
        shares,
        commitment: FeldmanCommitment { commits, group },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shamir::reconstruct;
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn setup() -> (SchnorrGroup, StdRng) {
        (
            SchnorrGroup::for_order(2_147_483_647).unwrap(),
            StdRng::seed_from_u64(21),
        )
    }

    #[test]
    fn all_shares_verify() {
        let (g, mut rng) = setup();
        let dealing = deal(0xDEADBEEF % g.q, 3, 10, g, &mut rng);
        for s in &dealing.shares {
            assert!(dealing.commitment.verify(s));
        }
    }

    #[test]
    fn tampered_share_rejected() {
        let (g, mut rng) = setup();
        let dealing = deal(42, 2, 6, g, &mut rng);
        let mut bad = dealing.shares[3];
        bad.y = (bad.y + 1) % g.q;
        assert!(!dealing.commitment.verify(&bad));
        let mut bad_x = dealing.shares[3];
        bad_x.x += 1;
        assert!(!dealing.commitment.verify(&bad_x));
    }

    #[test]
    fn shares_reconstruct_secret() {
        let (g, mut rng) = setup();
        let secret = 987654321 % g.q;
        let dealing = deal(secret, 3, 8, g, &mut rng);
        let q = Modulus::new(g.q).unwrap();
        assert_eq!(reconstruct(&dealing.shares[2..6], q), Some(secret));
    }

    #[test]
    fn secret_commitment_matches() {
        let (g, mut rng) = setup();
        let secret = 777;
        let dealing = deal(secret, 2, 5, g, &mut rng);
        assert_eq!(dealing.commitment.secret_commitment(), g.exp(secret));
    }

    #[test]
    fn share_commitment_predicts_share() {
        let (g, mut rng) = setup();
        let dealing = deal(1234, 2, 5, g, &mut rng);
        for s in &dealing.shares {
            assert_eq!(dealing.commitment.share_commitment(s.x), g.exp(s.y));
        }
    }

    #[test]
    fn zero_point_rejected() {
        let (g, mut rng) = setup();
        let dealing = deal(1, 1, 3, g, &mut rng);
        assert!(!dealing.commitment.verify(&Share { x: 0, y: 1 }));
    }

    #[test]
    fn inconsistent_dealer_caught() {
        // A malicious dealer publishes commitments for one polynomial but
        // hands party 2 a share of a different one.
        let (g, mut rng) = setup();
        let honest = deal(5, 2, 5, g, &mut rng);
        let other = deal(6, 2, 5, g, &mut rng);
        assert!(!honest.commitment.verify(&other.shares[1]));
    }
}
