//! Committee election and the Figure 8 probability curves.
//!
//! Mycelium elects a small committee of user devices per query to hold the
//! decryption key (§4.2). Figure 8 of the paper (whose equations come from
//! the Honeycrisp authors) quantifies the committee-size trade-off:
//!
//! * **privacy failure** — enough malicious members end up on the committee
//!   to reconstruct the secret key (a majority, given the `t ≥ c/2`
//!   threshold of §5), and
//! * **liveness failure** — too few members are honest *and online* to
//!   reach the `t + 1` quorum for decryption.
//!
//! Both are binomial tail probabilities in the committee size `c`.

use mycelium_crypto::kdf::prf_range;

/// Elects `c` distinct committee members from `n` devices using a public
/// random seed (e.g. the bulletin-board beacon), so that the aggregator
/// cannot bias the choice.
///
/// # Panics
///
/// Panics if `c > n`.
pub fn elect(n: u64, c: usize, seed: &[u8]) -> Vec<u64> {
    assert!(c as u64 <= n, "committee larger than the population");
    let mut members = Vec::with_capacity(c);
    let mut counter = 0u64;
    while members.len() < c {
        let pick = prf_range(seed, b"committee-election", counter, n);
        counter += 1;
        if !members.contains(&pick) {
            members.push(pick);
        }
    }
    members
}

/// Binomial probability mass `P[X = k]` for `X ~ Bin(n, p)`.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    // Work in log space for numerical stability.
    let mut log = 0.0f64;
    for i in 0..k {
        log += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    if p > 0.0 {
        log += k as f64 * p.ln();
    } else if k > 0 {
        return 0.0;
    }
    if p < 1.0 {
        log += (n - k) as f64 * (1.0 - p).ln();
    } else if k < n {
        return 0.0;
    }
    log.exp()
}

/// Upper-tail probability `P[X ≥ k]` for `X ~ Bin(n, p)`.
pub fn binomial_tail_ge(n: usize, k: usize, p: f64) -> f64 {
    (k..=n).map(|i| binomial_pmf(n, i, p)).sum()
}

/// Figure 8(a): probability that a committee of size `c`, drawn from a
/// population with malicious fraction `malice`, contains enough malicious
/// members (a majority, `⌊c/2⌋ + 1`) to reconstruct the secret key.
pub fn privacy_failure_probability(c: usize, malice: f64) -> f64 {
    binomial_tail_ge(c, c / 2 + 1, malice)
}

/// Figure 8(b): probability that at least `⌊c/2⌋ + 1` members are honest
/// and online (each member is independently faulty — malicious or offline —
/// with probability `fault`), so the decryption quorum can be met.
pub fn liveness_probability(c: usize, fault: f64) -> f64 {
    binomial_tail_ge(c, c / 2 + 1, 1.0 - fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn election_is_deterministic_and_distinct() {
        let a = elect(1000, 10, b"beacon-1");
        let b = elect(1000, 10, b"beacon-1");
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "members must be distinct");
        assert!(a.iter().all(|&m| m < 1000));
        assert_ne!(a, elect(1000, 10, b"beacon-2"));
    }

    #[test]
    fn election_full_population() {
        let mut all = elect(5, 5, b"x");
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10usize, 0.3), (25, 0.02), (40, 0.97)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_edge_cases() {
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
        assert!((binomial_pmf(5, 0, 0.0) - 1.0).abs() < 1e-12);
        assert!((binomial_pmf(5, 5, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 3, 1.0), 0.0);
    }

    #[test]
    fn privacy_failure_monotonic() {
        // More malice → more failures; bigger committee → fewer.
        let f1 = privacy_failure_probability(10, 0.01);
        let f2 = privacy_failure_probability(10, 0.04);
        assert!(f2 > f1);
        let f3 = privacy_failure_probability(30, 0.04);
        assert!(f3 < f2);
        // With 2% malice and c=10, failure needs 6 of 10 malicious — tiny.
        assert!(privacy_failure_probability(10, 0.02) < 1e-7);
    }

    #[test]
    fn liveness_behaviour() {
        // With no faults, liveness is certain.
        assert!((liveness_probability(10, 0.0) - 1.0).abs() < 1e-12);
        // Realistic fault rates keep liveness high.
        assert!(liveness_probability(10, 0.05) > 0.999);
        // Extreme churn hurts.
        assert!(liveness_probability(10, 0.6) < 0.5);
        // Larger committees tolerate churn better at fixed fault rate.
        assert!(liveness_probability(40, 0.2) > liveness_probability(10, 0.2));
    }

    #[test]
    fn figure8_shape() {
        // Reproduce the qualitative Figure 8(a) shape: log-probability
        // decreasing in c for every malice rate on the paper's x-axis.
        for &malice in &[0.005, 0.01, 0.02, 0.04] {
            let mut last = 1.0f64;
            for &c in &[10usize, 20, 30, 40] {
                let p = privacy_failure_probability(c, malice);
                assert!(p < last, "c={c} malice={malice}");
                last = p;
            }
        }
    }
}
