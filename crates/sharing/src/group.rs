//! Schnorr groups: prime-order subgroups of `Z_p^*`.
//!
//! Feldman VSS commits to sharing-polynomial coefficients as `g^{a_j}` in a
//! group whose order equals the share field. Because Mycelium's share
//! fields are the BGV chain primes (≈2^40–2^55), we construct for each chain
//! prime `q` a prime `p = c·q + 1` and use the order-`q` subgroup of
//! `Z_p^*`.
//!
//! **Security note (documented substitution):** word-sized groups offer no
//! discrete-log hardness; a deployment would use a ≥2048-bit `p` or a
//! prime-order elliptic-curve group. All protocol logic — commitment
//! homomorphism, share verification, VSR sub-share checks — is independent
//! of the group size, which is why the group is a value, not a hard-coded
//! constant.

use mycelium_math::zq::is_prime;

/// A prime-order subgroup of `Z_p^*` with `p = c·q + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchnorrGroup {
    /// The field prime `p` (may be up to 2^64).
    pub p: u64,
    /// The group order `q` (prime), equal to the share field.
    pub q: u64,
    /// A generator of the order-`q` subgroup.
    pub g: u64,
}

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

impl SchnorrGroup {
    /// Finds a Schnorr group of order `q` (a prime), trying cofactors
    /// `c = 2, 4, 6, …` until `p = c·q + 1` is prime.
    ///
    /// Returns `None` if `q` is not prime or no suitable `p < 2^64` exists
    /// (practically impossible for the prime sizes in this workspace).
    pub fn for_order(q: u64) -> Option<Self> {
        if !is_prime(q) {
            return None;
        }
        let mut c = 2u64;
        loop {
            let p = c.checked_mul(q)?.checked_add(1)?;
            if is_prime(p) {
                // Find a generator: h^c has order dividing q; accept when
                // it is not 1 (then its order is exactly q, q prime).
                for h in 2..p {
                    let g = pow_mod(h, c, p);
                    if g != 1 {
                        debug_assert_eq!(pow_mod(g, q, p), 1);
                        return Some(Self { p, q, g });
                    }
                }
            }
            c += 2;
        }
    }

    /// `g^e mod p` for an exponent reduced modulo the order.
    pub fn exp(&self, e: u64) -> u64 {
        pow_mod(self.g, e % self.q, self.p)
    }

    /// `base^e mod p` for an arbitrary group element.
    pub fn exp_base(&self, base: u64, e: u64) -> u64 {
        pow_mod(base, e % self.q, self.p)
    }

    /// Group multiplication.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        mul_mod(a, b, self.p)
    }

    /// Checks that `x` lies in the order-`q` subgroup.
    pub fn is_member(&self, x: u64) -> bool {
        x != 0 && x < self.p && pow_mod(x, self.q, self.p) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::zq::ntt_primes;

    #[test]
    fn group_for_small_prime() {
        let g = SchnorrGroup::for_order(101).unwrap();
        assert_eq!((g.p - 1) % 101, 0);
        assert!(is_prime(g.p));
        assert_eq!(pow_mod(g.g, 101, g.p), 1);
        assert_ne!(g.g, 1);
    }

    #[test]
    fn group_for_chain_primes() {
        // Groups must exist for realistic BGV chain primes (40- and 55-bit).
        for bits in [40u32, 55] {
            for q in ntt_primes(bits, 1024, 3) {
                let g = SchnorrGroup::for_order(q).unwrap();
                assert!(g.is_member(g.g));
                assert!(g.is_member(g.exp(123456789)));
            }
        }
    }

    #[test]
    fn exponent_homomorphism() {
        let g = SchnorrGroup::for_order(1_000_003).unwrap();
        let a = 123456u64;
        let b = 987654u64;
        assert_eq!(g.mul(g.exp(a), g.exp(b)), g.exp((a + b) % g.q));
        assert_eq!(g.exp_base(g.exp(a), b), g.exp(mul_mod(a, b, g.q)));
    }

    #[test]
    fn rejects_composite_order() {
        assert!(SchnorrGroup::for_order(100).is_none());
    }

    #[test]
    fn membership() {
        let g = SchnorrGroup::for_order(101).unwrap();
        assert!(!g.is_member(0));
        assert!(g.is_member(1)); // Identity.
                                 // A random non-member: an element of order p-1 (a primitive root)
                                 // is not in the subgroup unless c == 1.
        let outside = (2..g.p).find(|&x| !g.is_member(x));
        assert!(outside.is_some());
    }

    #[test]
    fn identity_element() {
        let g = SchnorrGroup::for_order(101).unwrap();
        assert_eq!(g.exp(0), 1);
        assert_eq!(g.exp(g.q), 1);
        assert_eq!(g.mul(g.exp(42), 1), g.exp(42));
    }
}
