//! Threshold BGV decryption with smudging noise.
//!
//! The committee holds a `(t, n)` coefficient-wise Shamir sharing of the
//! BGV secret key `s`. To decrypt an aggregate ciphertext `(c_0, c_1)`,
//! each participating member `i` locally computes a **decryption share**
//!
//! ```text
//! d_i = λ_i · (c_1 · [s]_i) + t_pt · e_i        (λ folded in locally)
//! ```
//!
//! where `λ_i` is the Lagrange coefficient for the participating set and
//! `e_i` is *smudging noise* that hides the key share in the released
//! value. Summing `t + 1` shares with `c_0` yields
//! `c_0 + c_1·s + t_pt·Σe_i`, which reduces modulo `t_pt` to the plaintext.
//! This mirrors the paper's SCALE-MAMBA MPC for BGV decryption (§5),
//! executed share-wise instead of inside a generic MPC.
//!
//! The committee also adds the Laplace noise for differential privacy
//! before releasing anything (§4.4); [`derive_joint_noise`] implements the
//! commit-then-combine seed derivation our simulated MPC uses for that.

use mycelium_bgv::{Ciphertext, Plaintext, SecretKey};
use mycelium_crypto::sha256::sha256_concat;
use mycelium_math::rng::Rng;
use mycelium_math::rns::{Representation, RnsPoly};

use crate::shamir::{lagrange_at_zero, share_rns};

/// The committee's sharing of the BGV secret key.
#[derive(Debug, Clone)]
pub struct KeyShareSet {
    /// One share per member (members are `1..=n`), at the top level, in
    /// coefficient representation.
    pub shares: Vec<RnsPoly>,
    /// Reconstruction threshold `t` (any `t + 1` members decrypt).
    pub threshold: usize,
}

impl KeyShareSet {
    /// Shares a secret key among `n` members with threshold `t`.
    pub fn deal<R: Rng + ?Sized>(sk: &SecretKey, t: usize, n: usize, rng: &mut R) -> Self {
        let ctx = sk.context();
        let s = RnsPoly::from_signed(ctx.clone(), ctx.max_level(), sk.coefficients());
        let sharing = share_rns(&s, t, n, rng);
        Self {
            shares: sharing.shares,
            threshold: t,
        }
    }

    /// Member `i`'s share (1-based), truncated to the given level.
    ///
    /// Truncation is sound because each chain prime's sharing is
    /// independent.
    pub fn share_for(&self, member: usize, level: usize) -> RnsPoly {
        self.shares[member - 1].truncate_level(level)
    }

    /// Number of members.
    pub fn members(&self) -> usize {
        self.shares.len()
    }
}

/// One member's decryption share.
#[derive(Debug, Clone)]
pub struct DecryptionShare {
    /// The member's evaluation point.
    pub member: u64,
    /// `λ_i·(c_1·[s]_i) + t·e_i` in NTT representation at the ciphertext's
    /// level.
    pub d: RnsPoly,
}

/// Errors from threshold decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdError {
    /// Threshold decryption requires a degree-1 (2-component) ciphertext;
    /// relinearize first (the aggregator's job, §5).
    WrongDegree { parts: usize },
    /// Fewer shares than `threshold + 1`, or inconsistent member sets.
    NotEnoughShares { got: usize, need: usize },
    /// Duplicate or zero member indices.
    BadMembers,
}

impl std::fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThresholdError::WrongDegree { parts } => write!(
                f,
                "threshold decryption needs a 2-part ciphertext, got {parts}"
            ),
            ThresholdError::NotEnoughShares { got, need } => {
                write!(f, "got {got} decryption shares, need {need}")
            }
            ThresholdError::BadMembers => write!(f, "duplicate or zero member indices"),
        }
    }
}

impl std::error::Error for ThresholdError {}

/// Computes member `member`'s decryption share for `ct`.
///
/// `participants` is the full set of member indices taking part (needed for
/// the Lagrange coefficient). `smudge_bound` bounds the uniform smudging
/// noise `e_i ∈ [-B, B]`.
pub fn decryption_share<R: Rng + ?Sized>(
    ct: &Ciphertext,
    key_shares: &KeyShareSet,
    member: u64,
    participants: &[u64],
    smudge_bound: i64,
    rng: &mut R,
) -> Result<DecryptionShare, ThresholdError> {
    if ct.parts().len() != 2 {
        return Err(ThresholdError::WrongDegree {
            parts: ct.parts().len(),
        });
    }
    if member == 0 || !participants.contains(&member) {
        return Err(ThresholdError::BadMembers);
    }
    let level = ct.level();
    let mut share = key_shares.share_for(member as usize, level);
    share.to_ntt();
    let ctx = share.context().clone();
    // c1 · [s]_i.
    let mut d = ct.parts()[1].mul(&share);
    // Fold in λ_i (per prime — Lagrange coefficients differ per modulus).
    let mut residues = Vec::with_capacity(level);
    {
        let mut d_coeff = d.coeff();
        for prime_idx in 0..level {
            let m = ctx.moduli()[prime_idx];
            let lambda = lagrange_at_zero(participants, m).ok_or(ThresholdError::BadMembers)?;
            let my_pos = participants
                .iter()
                .position(|&p| p == member)
                .expect("checked above");
            let l = lambda[my_pos];
            let res: Vec<u64> = d_coeff.residues()[prime_idx]
                .iter()
                .map(|&c| m.mul(c, l))
                .collect();
            residues.push(res);
        }
        d_coeff = RnsPoly::from_residues(ctx.clone(), Representation::Coefficient, residues);
        // Smudging noise: t · e_i with e_i uniform in [-B, B].
        let n = ctx.degree();
        let e: Vec<i64> = (0..n)
            .map(|_| rng.gen_range(-smudge_bound..=smudge_bound))
            .collect();
        let e_poly =
            RnsPoly::from_signed(ctx.clone(), level, &e).scalar_mul(ct.params().plaintext_modulus);
        d = d_coeff.add(&e_poly);
        d.to_ntt();
    }
    Ok(DecryptionShare { member, d })
}

/// Combines `t + 1` decryption shares with the ciphertext to recover the
/// plaintext.
pub fn combine(
    ct: &Ciphertext,
    shares: &[DecryptionShare],
    threshold: usize,
) -> Result<Plaintext, ThresholdError> {
    if ct.parts().len() != 2 {
        return Err(ThresholdError::WrongDegree {
            parts: ct.parts().len(),
        });
    }
    if shares.len() < threshold + 1 {
        return Err(ThresholdError::NotEnoughShares {
            got: shares.len(),
            need: threshold + 1,
        });
    }
    let mut seen = Vec::new();
    for s in shares {
        if s.member == 0 || seen.contains(&s.member) {
            return Err(ThresholdError::BadMembers);
        }
        seen.push(s.member);
    }
    let mut acc = ct.parts()[0].clone();
    for s in shares {
        acc = acc.add(&s.d);
    }
    let t = ct.params().plaintext_modulus;
    let coeffs = acc.coeff().crt_centered_mod(t);
    Ok(Plaintext::new(coeffs, t).expect("centered reduction is in range"))
}

/// Derives the committee's joint DP-noise randomness from per-member seed
/// contributions (commit-then-reveal inside the simulated MPC): no
/// non-majority subset can predict or bias the output.
///
/// Returns `count` discrete-Laplace samples with scale `b`.
///
/// # Panics
///
/// Panics if `seeds` is empty or `b <= 0`.
pub fn derive_joint_noise(seeds: &[[u8; 32]], b: f64, count: usize) -> Vec<i64> {
    assert!(!seeds.is_empty(), "at least one seed contribution required");
    assert!(b > 0.0, "Laplace scale must be positive");
    let mut joint = [0u8; 32];
    for s in seeds {
        for (j, byte) in s.iter().enumerate() {
            joint[j] ^= byte;
        }
    }
    // Deterministic PRG from the joint seed.
    let mut out = Vec::with_capacity(count);
    let mut ctr = 0u64;
    while out.len() < count {
        let block = sha256_concat(&[&joint, b"dp-noise", &ctr.to_le_bytes()]);
        ctr += 1;
        // Two u64 draws per block → one uniform in (0,1) and one sign/geom.
        let u1 = u64::from_le_bytes(block[..8].try_into().expect("8 bytes"));
        let u2 = u64::from_le_bytes(block[8..16].try_into().expect("8 bytes"));
        let u = (u1 >> 11) as f64 / (1u64 << 53) as f64;
        let u = u.max(f64::MIN_POSITIVE);
        let alpha = (-1.0 / b).exp();
        let k = (u.ln() / alpha.ln()).floor() as i64;
        let sign = if u2 & 1 == 1 { 1 } else { -1 };
        if k == 0 && sign < 0 {
            continue; // Keep the distribution symmetric (no double zero).
        }
        out.push(sign * k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_bgv::encoding::encode_monomial;
    use mycelium_bgv::{BgvParams, KeySet};
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn setup() -> (BgvParams, KeySet, StdRng) {
        let params = BgvParams::test_small();
        let mut rng = StdRng::seed_from_u64(41);
        let ks = KeySet::generate_with_relin_levels(&params, &[params.levels], &mut rng);
        (params, ks, rng)
    }

    #[test]
    fn threshold_decrypt_matches_direct() {
        let (params, ks, mut rng) = setup();
        let t_pt = params.plaintext_modulus;
        let pt = encode_monomial(7, params.n, t_pt).unwrap();
        let ct = Ciphertext::encrypt(&ks.public, &pt, &mut rng).unwrap();
        let key_shares = KeyShareSet::deal(&ks.secret, 2, 5, &mut rng);
        let participants = [1u64, 3, 5];
        let dshares: Vec<DecryptionShare> = participants
            .iter()
            .map(|&m| decryption_share(&ct, &key_shares, m, &participants, 100, &mut rng).unwrap())
            .collect();
        let out = combine(&ct, &dshares, key_shares.threshold).unwrap();
        assert_eq!(out, ct.decrypt(&ks.secret));
        assert_eq!(out.coeffs()[7], 1);
    }

    #[test]
    fn works_after_homomorphic_ops_and_levels() {
        let (params, ks, mut rng) = setup();
        let t_pt = params.plaintext_modulus;
        let a = Ciphertext::encrypt(
            &ks.public,
            &encode_monomial(2, params.n, t_pt).unwrap(),
            &mut rng,
        )
        .unwrap();
        let b = Ciphertext::encrypt(
            &ks.public,
            &encode_monomial(3, params.n, t_pt).unwrap(),
            &mut rng,
        )
        .unwrap();
        let prod = a
            .mul(&b)
            .unwrap()
            .relinearize(&ks.relin)
            .unwrap()
            .mod_switch_down()
            .unwrap();
        let key_shares = KeyShareSet::deal(&ks.secret, 1, 4, &mut rng);
        let participants = [2u64, 4];
        let dshares: Vec<DecryptionShare> = participants
            .iter()
            .map(|&m| decryption_share(&prod, &key_shares, m, &participants, 50, &mut rng).unwrap())
            .collect();
        let out = combine(&prod, &dshares, 1).unwrap();
        assert_eq!(out.coeffs()[5], 1);
    }

    #[test]
    fn too_few_shares_rejected() {
        let (params, ks, mut rng) = setup();
        let pt = encode_monomial(0, params.n, params.plaintext_modulus).unwrap();
        let ct = Ciphertext::encrypt(&ks.public, &pt, &mut rng).unwrap();
        let key_shares = KeyShareSet::deal(&ks.secret, 2, 5, &mut rng);
        let participants = [1u64, 2, 3];
        let one_share = decryption_share(&ct, &key_shares, 1, &participants, 10, &mut rng).unwrap();
        assert!(matches!(
            combine(&ct, &[one_share], 2),
            Err(ThresholdError::NotEnoughShares { got: 1, need: 3 })
        ));
    }

    #[test]
    fn degree_two_rejected() {
        let (params, ks, mut rng) = setup();
        let t_pt = params.plaintext_modulus;
        let a = Ciphertext::encrypt(
            &ks.public,
            &encode_monomial(1, params.n, t_pt).unwrap(),
            &mut rng,
        )
        .unwrap();
        let prod = a.mul(&a).unwrap(); // Not relinearized.
        let key_shares = KeyShareSet::deal(&ks.secret, 1, 3, &mut rng);
        assert!(matches!(
            decryption_share(&prod, &key_shares, 1, &[1, 2], 10, &mut rng),
            Err(ThresholdError::WrongDegree { parts: 3 })
        ));
    }

    #[test]
    fn nonparticipant_rejected() {
        let (params, ks, mut rng) = setup();
        let pt = encode_monomial(0, params.n, params.plaintext_modulus).unwrap();
        let ct = Ciphertext::encrypt(&ks.public, &pt, &mut rng).unwrap();
        let key_shares = KeyShareSet::deal(&ks.secret, 1, 4, &mut rng);
        assert!(matches!(
            decryption_share(&ct, &key_shares, 3, &[1, 2], 10, &mut rng),
            Err(ThresholdError::BadMembers)
        ));
    }

    #[test]
    fn duplicate_share_members_rejected() {
        let (params, ks, mut rng) = setup();
        let pt = encode_monomial(0, params.n, params.plaintext_modulus).unwrap();
        let ct = Ciphertext::encrypt(&ks.public, &pt, &mut rng).unwrap();
        let key_shares = KeyShareSet::deal(&ks.secret, 1, 4, &mut rng);
        let participants = [1u64, 2];
        let s1 = decryption_share(&ct, &key_shares, 1, &participants, 10, &mut rng).unwrap();
        let s1b = s1.clone();
        assert!(matches!(
            combine(&ct, &[s1, s1b], 1),
            Err(ThresholdError::BadMembers)
        ));
    }

    #[test]
    fn joint_noise_deterministic_and_distributed() {
        let seeds = [[1u8; 32], [2u8; 32], [3u8; 32]];
        let a = derive_joint_noise(&seeds, 5.0, 100);
        let b = derive_joint_noise(&seeds, 5.0, 100);
        assert_eq!(a, b);
        // Changing any single member's seed changes the noise.
        let seeds2 = [[1u8; 32], [2u8; 32], [4u8; 32]];
        assert_ne!(a, derive_joint_noise(&seeds2, 5.0, 100));
        // Roughly centered.
        let n = 10_000;
        let big = derive_joint_noise(&seeds, 3.0, n);
        let mean = big.iter().sum::<i64>() as f64 / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
    }
}
