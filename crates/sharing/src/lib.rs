//! Secret sharing, verifiable secret redistribution, and threshold BGV
//! decryption for Mycelium's committees.
//!
//! In Mycelium (§4.2, §5) the BGV decryption key is never held by any single
//! party: a *genesis committee* generates all keys once and Shamir-shares
//! the decryption key; each query is served by a fresh randomly-elected
//! committee of user devices; and the key moves from committee to committee
//! with an **extended verifiable secret redistribution (VSR)** protocol, so
//! that members of different committees cannot pool their shares. The
//! committee decrypts the global aggregate inside an MPC and adds the
//! Laplace noise required for differential privacy before releasing the
//! result.
//!
//! * [`shamir`] — Shamir secret sharing over word-sized prime fields, and
//!   coefficient-wise sharing of RNS ring elements (the BGV secret key).
//! * [`group`] — Schnorr groups of prime order `q` (subgroups of `Z_p^*`
//!   with `p = c·q + 1`), the commitment space for Feldman VSS.
//! * [`feldman`] — Feldman verifiable secret sharing: dealers publish
//!   `g^{a_j}` commitments; every share is publicly checkable.
//! * [`vsr`] — extended VSR: an old `(t, n)` committee redistributes to a
//!   new `(t', n')` committee, with sub-share verification against the old
//!   commitments, without ever reconstructing the secret.
//! * [`threshold`] — threshold BGV decryption with smudging noise, and the
//!   committee's in-MPC Laplace noise addition.
//! * [`committee`] — committee election plus the Figure 8 privacy-failure
//!   and liveness probability curves (binomial tail bounds, as in
//!   Honeycrisp).

pub mod committee;
pub mod feldman;
pub mod group;
pub mod shamir;
pub mod threshold;
pub mod vsr;

pub use feldman::{FeldmanCommitment, FeldmanDealing};
pub use group::SchnorrGroup;
pub use shamir::{lagrange_at_zero, reconstruct, share, Share};
pub use threshold::{DecryptionShare, KeyShareSet};
