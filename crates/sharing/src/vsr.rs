//! Extended verifiable secret redistribution (VSR).
//!
//! Mycelium generates its BGV decryption key **once** and then moves it from
//! committee to committee (§4.2): the old `(t, n)` committee *redistributes*
//! the key to a new `(t', n')` committee such that
//!
//! * the secret is never reconstructed anywhere,
//! * members of the old and new committees cannot combine shares across
//!   committees (the new sharing polynomial is fresh), and
//! * every sub-share is verifiable: a cheating old member is identified and
//!   excluded (following Gopinath–Gupta's extended VSR, the paper's [46]).
//!
//! Protocol sketch: each participating old member `i` Feldman-deals its
//! share `y_i` to the new committee. The new members check (a) each
//! sub-share against the sub-dealing's commitments, and (b) the sub-dealing
//! against the *old* commitments: `C_i[0] == g^{y_i}` must equal the old
//! committee's derived share commitment. New member `j` then combines
//! `y'_j = Σ_{i∈I} λ_i · y_{i,j}` over a verified set `I` of `t+1` old
//! members; the new commitments are `C'_k = Π_i C_{i,k}^{λ_i}`.
//!
//! For the full BGV key (an RNS ring element with thousands of shared
//! coefficients) the same combination runs coefficient-wise, and
//! verifiability is provided per chain prime by a Feldman dealing of a
//! *random linear combination* of the dealer's coefficient shares (batch
//! verification — a standard technique that catches any inconsistent
//! coefficient with probability `1 - 1/q`).

use mycelium_math::rng::Rng;
use mycelium_math::rns::{Representation, RnsPoly};
use mycelium_math::zq::Modulus;

use crate::feldman::{deal, FeldmanCommitment, FeldmanDealing};
use crate::group::SchnorrGroup;
use crate::shamir::{lagrange_at_zero, Share};

/// Errors during redistribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VsrError {
    /// Not enough (verified) sub-dealings to hit the old threshold.
    NotEnoughDealers { got: usize, need: usize },
    /// A sub-dealing's secret does not match the old share commitment.
    DealerInconsistent { dealer: u64 },
    /// A sub-share failed verification against its sub-dealing commitments.
    SubShareInvalid { dealer: u64, receiver: u64 },
    /// Duplicate or invalid dealer indices.
    BadDealerIndices,
}

impl std::fmt::Display for VsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VsrError::NotEnoughDealers { got, need } => {
                write!(f, "only {got} verified dealers, need {need}")
            }
            VsrError::DealerInconsistent { dealer } => {
                write!(
                    f,
                    "dealer {dealer}'s sub-dealing contradicts the old commitments"
                )
            }
            VsrError::SubShareInvalid { dealer, receiver } => {
                write!(
                    f,
                    "sub-share from dealer {dealer} to receiver {receiver} is invalid"
                )
            }
            VsrError::BadDealerIndices => write!(f, "duplicate or zero dealer indices"),
        }
    }
}

impl std::error::Error for VsrError {}

/// One old member's contribution: a Feldman sub-dealing of its share.
#[derive(Debug, Clone)]
pub struct SubDealing {
    /// The old member's evaluation point.
    pub dealer_x: u64,
    /// The `(t', n')` Feldman dealing of the old member's share value.
    pub dealing: FeldmanDealing,
}

/// Creates old member `x`'s sub-dealing for the new committee.
pub fn sub_deal<R: Rng + ?Sized>(
    old_share: &Share,
    t_new: usize,
    n_new: usize,
    group: SchnorrGroup,
    rng: &mut R,
) -> SubDealing {
    SubDealing {
        dealer_x: old_share.x,
        dealing: deal(old_share.y, t_new, n_new, group, rng),
    }
}

/// Verifies a sub-dealing against the old committee's commitments: the
/// committed sub-secret must equal `g^{f(dealer_x)}`.
pub fn verify_sub_dealing(old: &FeldmanCommitment, sub: &SubDealing) -> bool {
    sub.dealing.commitment.secret_commitment() == old.share_commitment(sub.dealer_x)
        && sub.dealing.commitment.group == old.group
}

/// The outcome of a redistribution round.
#[derive(Debug, Clone)]
pub struct Redistribution {
    /// New committee shares (evaluation points `1..=n'`).
    pub shares: Vec<Share>,
    /// New public commitments (fresh polynomial — old shares are useless
    /// against it).
    pub commitment: FeldmanCommitment,
}

/// Runs a full redistribution round from the sub-dealings of a set of old
/// members.
///
/// `old_threshold` is the old sharing's `t` (so `t + 1` verified dealers are
/// required). Inconsistent dealers cause an error identifying them — in the
/// full protocol the round is re-run without them.
pub fn redistribute(
    old_commitment: &FeldmanCommitment,
    subs: &[SubDealing],
    old_threshold: usize,
) -> Result<Redistribution, VsrError> {
    // Validate dealer indices.
    let mut xs: Vec<u64> = Vec::with_capacity(subs.len());
    for s in subs {
        if s.dealer_x == 0 || xs.contains(&s.dealer_x) {
            return Err(VsrError::BadDealerIndices);
        }
        xs.push(s.dealer_x);
    }
    if subs.len() < old_threshold + 1 {
        return Err(VsrError::NotEnoughDealers {
            got: subs.len(),
            need: old_threshold + 1,
        });
    }
    // Verify every sub-dealing against the old commitments, and every
    // sub-share against its sub-dealing.
    for s in subs {
        if !verify_sub_dealing(old_commitment, s) {
            return Err(VsrError::DealerInconsistent { dealer: s.dealer_x });
        }
        for sh in &s.dealing.shares {
            if !s.dealing.commitment.verify(sh) {
                return Err(VsrError::SubShareInvalid {
                    dealer: s.dealer_x,
                    receiver: sh.x,
                });
            }
        }
    }
    let group = old_commitment.group;
    let q = Modulus::new(group.q).expect("group order is a valid modulus");
    let lambda = lagrange_at_zero(&xs, q).ok_or(VsrError::BadDealerIndices)?;
    let n_new = subs[0].dealing.shares.len();
    let t_new = subs[0].dealing.commitment.threshold();
    // New share for receiver j: Σ_i λ_i · y_{i,j}.
    let shares = (0..n_new)
        .map(|j| {
            let mut y = 0u64;
            for (s, &l) in subs.iter().zip(&lambda) {
                y = q.add(y, q.mul(l, q.reduce(s.dealing.shares[j].y)));
            }
            Share { x: j as u64 + 1, y }
        })
        .collect();
    // New commitments: C'_k = Π_i C_{i,k}^{λ_i}.
    let commits = (0..=t_new)
        .map(|k| {
            let mut c = 1u64;
            for (s, &l) in subs.iter().zip(&lambda) {
                c = group.mul(c, group.exp_base(s.dealing.commitment.commits[k], l));
            }
            c
        })
        .collect();
    Ok(Redistribution {
        shares,
        commitment: FeldmanCommitment { commits, group },
    })
}

/// Redistributes a coefficient-wise RNS sharing (the BGV secret key) from
/// `t+1` old members to a new `(t', n')` committee.
///
/// `old` holds `(evaluation_point, share)` pairs. Verifiability is provided
/// by [`batch_check`] on a random linear combination; this function performs
/// the share arithmetic.
///
/// # Panics
///
/// Panics on empty input, duplicate points, NTT-domain shares, or invalid
/// thresholds.
pub fn redistribute_rns<R: Rng + ?Sized>(
    old: &[(u64, &RnsPoly)],
    old_threshold: usize,
    t_new: usize,
    n_new: usize,
    rng: &mut R,
) -> Vec<RnsPoly> {
    assert!(old.len() > old_threshold, "not enough old shares");
    assert!(t_new < n_new, "invalid new threshold");
    for (_, s) in old {
        assert_eq!(
            s.representation(),
            Representation::Coefficient,
            "shares must be in coefficient representation"
        );
    }
    let ctx = old[0].1.context().clone();
    let level = old[0].1.level();
    let degree = ctx.degree();
    let xs: Vec<u64> = old.iter().map(|(x, _)| *x).collect();
    // Sub-deal each old share coefficient-wise, then λ-combine.
    // new_share[j][prime][coeff] = Σ_i λ_i · subshare_{i,j}[prime][coeff].
    let mut new_res: Vec<Vec<Vec<u64>>> = vec![vec![vec![0u64; degree]; level]; n_new];
    for prime_idx in 0..level {
        let m = ctx.moduli()[prime_idx];
        let lambda = lagrange_at_zero(&xs, m).expect("distinct nonzero points");
        for c in 0..degree {
            for ((_, old_share), &l) in old.iter().zip(&lambda) {
                let y = old_share.residues()[prime_idx][c];
                // Fresh random polynomial for this dealer/coefficient.
                let mut coeffs = Vec::with_capacity(t_new + 1);
                coeffs.push(y);
                for _ in 0..t_new {
                    coeffs.push(rng.gen_range(0..m.value()));
                }
                for (j, res) in new_res.iter_mut().enumerate() {
                    let sub = crate::shamir::eval_poly(&coeffs, j as u64 + 1, m);
                    res[prime_idx][c] = m.add(res[prime_idx][c], m.mul(l, sub));
                }
            }
        }
    }
    new_res
        .into_iter()
        .map(|r| RnsPoly::from_residues(ctx.clone(), Representation::Coefficient, r))
        .collect()
}

/// Batch-verifies that two coefficient-wise sharings are consistent by
/// comparing a random linear combination of their reconstructions.
///
/// Used as the RNS-level analogue of the Feldman checks: after a
/// redistribution, any `t+1` old shares and any `t'+1` new shares must
/// reconstruct the same ring element; checking a random linear combination
/// of all coefficients per prime catches any discrepancy with probability
/// `1 − 1/q` per prime.
pub fn batch_check(
    old: &[(u64, &RnsPoly)],
    old_threshold: usize,
    new: &[(u64, &RnsPoly)],
    new_threshold: usize,
    challenge_seed: u64,
) -> bool {
    let rec_old = match crate::shamir::reconstruct_rns(old, old_threshold) {
        Some(v) => v,
        None => return false,
    };
    let rec_new = match crate::shamir::reconstruct_rns(new, new_threshold) {
        Some(v) => v,
        None => return false,
    };
    if rec_old.level() != rec_new.level() {
        return false;
    }
    let ctx = rec_old.context();
    for prime_idx in 0..rec_old.level() {
        let m = ctx.moduli()[prime_idx];
        let mut r = challenge_seed | 1;
        let mut acc_old = 0u64;
        let mut acc_new = 0u64;
        for (a, b) in rec_old.residues()[prime_idx]
            .iter()
            .zip(&rec_new.residues()[prime_idx])
        {
            // Deterministic challenge stream (xorshift).
            r ^= r << 13;
            r ^= r >> 7;
            r ^= r << 17;
            let c = m.reduce(r);
            acc_old = m.add(acc_old, m.mul(c, *a));
            acc_new = m.add(acc_new, m.mul(c, *b));
        }
        if acc_old != acc_new {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shamir::{reconstruct, share_rns};
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn setup() -> (SchnorrGroup, StdRng) {
        (
            SchnorrGroup::for_order(2_147_483_647).unwrap(),
            StdRng::seed_from_u64(31),
        )
    }

    #[test]
    fn redistribution_preserves_secret() {
        let (g, mut rng) = setup();
        let secret = 0xC0FFEE % g.q;
        let old = deal(secret, 2, 5, g, &mut rng);
        // Three old members (t+1 = 3) participate.
        let subs: Vec<SubDealing> = old.shares[..3]
            .iter()
            .map(|s| sub_deal(s, 3, 7, g, &mut rng))
            .collect();
        let redist = redistribute(&old.commitment, &subs, 2).unwrap();
        assert_eq!(redist.shares.len(), 7);
        let q = Modulus::new(g.q).unwrap();
        // Any 4 new shares reconstruct.
        assert_eq!(reconstruct(&redist.shares[1..5], q), Some(secret));
        assert_eq!(reconstruct(&redist.shares[3..7], q), Some(secret));
        // And all new shares verify against the new commitments.
        for s in &redist.shares {
            assert!(redist.commitment.verify(s));
        }
        assert_eq!(redist.commitment.secret_commitment(), g.exp(secret));
    }

    #[test]
    fn new_and_old_shares_do_not_mix() {
        // An old share is not a valid share of the new polynomial: the
        // core security property of redistribution.
        let (g, mut rng) = setup();
        let old = deal(111, 1, 4, g, &mut rng);
        let subs: Vec<SubDealing> = old.shares[..2]
            .iter()
            .map(|s| sub_deal(s, 1, 4, g, &mut rng))
            .collect();
        let redist = redistribute(&old.commitment, &subs, 1).unwrap();
        for old_share in &old.shares {
            assert!(!redist.commitment.verify(old_share));
        }
    }

    #[test]
    fn cheating_dealer_detected() {
        let (g, mut rng) = setup();
        let old = deal(55, 1, 4, g, &mut rng);
        let mut subs: Vec<SubDealing> = old.shares[..2]
            .iter()
            .map(|s| sub_deal(s, 1, 4, g, &mut rng))
            .collect();
        // Dealer 2 deals a wrong value.
        let bogus = Share {
            x: old.shares[1].x,
            y: (old.shares[1].y + 1) % g.q,
        };
        subs[1] = sub_deal(&bogus, 1, 4, g, &mut rng);
        match redistribute(&old.commitment, &subs, 1) {
            Err(VsrError::DealerInconsistent { dealer }) => assert_eq!(dealer, 2),
            other => panic!("expected dealer detection, got {other:?}"),
        }
    }

    #[test]
    fn not_enough_dealers() {
        let (g, mut rng) = setup();
        let old = deal(55, 2, 5, g, &mut rng);
        let subs: Vec<SubDealing> = old.shares[..2]
            .iter()
            .map(|s| sub_deal(s, 1, 4, g, &mut rng))
            .collect();
        assert!(matches!(
            redistribute(&old.commitment, &subs, 2),
            Err(VsrError::NotEnoughDealers { got: 2, need: 3 })
        ));
    }

    #[test]
    fn duplicate_dealers_rejected() {
        let (g, mut rng) = setup();
        let old = deal(55, 1, 4, g, &mut rng);
        let s0 = sub_deal(&old.shares[0], 1, 4, g, &mut rng);
        let s0b = sub_deal(&old.shares[0], 1, 4, g, &mut rng);
        assert!(matches!(
            redistribute(&old.commitment, &[s0, s0b], 1),
            Err(VsrError::BadDealerIndices)
        ));
    }

    #[test]
    fn threshold_change_supported() {
        // (2, 5) -> (4, 9): growing the committee and the threshold.
        let (g, mut rng) = setup();
        let secret = 31337;
        let old = deal(secret, 2, 5, g, &mut rng);
        let subs: Vec<SubDealing> = old.shares[1..4]
            .iter()
            .map(|s| sub_deal(s, 4, 9, g, &mut rng))
            .collect();
        let redist = redistribute(&old.commitment, &subs, 2).unwrap();
        let q = Modulus::new(g.q).unwrap();
        // 5 shares (t'+1) reconstruct; 4 do not.
        assert_eq!(reconstruct(&redist.shares[..5], q), Some(secret));
        assert_ne!(reconstruct(&redist.shares[..4], q), Some(secret));
    }

    #[test]
    fn rns_redistribution_preserves_key() {
        let ctx = mycelium_math::rns::RnsContext::with_primes(16, 30, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let key = mycelium_math::sample::uniform_rns(&ctx, 2, &mut rng);
        let old = share_rns(&key, 1, 4, &mut rng);
        let old_refs: Vec<(u64, &RnsPoly)> = [0usize, 2]
            .iter()
            .map(|&i| (i as u64 + 1, &old.shares[i]))
            .collect();
        let new_shares = redistribute_rns(&old_refs, 1, 2, 5, &mut rng);
        assert_eq!(new_shares.len(), 5);
        let new_refs: Vec<(u64, &RnsPoly)> = [0usize, 1, 3]
            .iter()
            .map(|&i| (i as u64 + 1, &new_shares[i]))
            .collect();
        let rec = crate::shamir::reconstruct_rns(&new_refs, 2).unwrap();
        assert_eq!(rec, key);
        // Batched consistency check passes.
        assert!(batch_check(&old_refs, 1, &new_refs, 2, 0xFEED));
    }

    #[test]
    fn batch_check_catches_corruption() {
        let ctx = mycelium_math::rns::RnsContext::with_primes(16, 30, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let key = mycelium_math::sample::uniform_rns(&ctx, 2, &mut rng);
        let old = share_rns(&key, 1, 4, &mut rng);
        let old_refs: Vec<(u64, &RnsPoly)> = [0usize, 2]
            .iter()
            .map(|&i| (i as u64 + 1, &old.shares[i]))
            .collect();
        let mut new_shares = redistribute_rns(&old_refs, 1, 1, 4, &mut rng);
        // Corrupt one coefficient of every new share (a consistent-looking
        // but wrong redistribution).
        for s in new_shares.iter_mut() {
            let mut res = s.residues().to_vec();
            res[0][3] = (res[0][3] + 1) % s.context().moduli()[0].value();
            *s = RnsPoly::from_residues(s.context().clone(), Representation::Coefficient, res);
        }
        let new_refs: Vec<(u64, &RnsPoly)> = [0usize, 1]
            .iter()
            .map(|&i| (i as u64 + 1, &new_shares[i]))
            .collect();
        assert!(!batch_check(&old_refs, 1, &new_refs, 1, 0xFEED));
    }
}
