//! Shamir secret sharing over word-sized prime fields.
//!
//! A `(t, n)` sharing hides the secret as the constant term of a random
//! degree-`t` polynomial; any `t + 1` shares reconstruct it by Lagrange
//! interpolation and any `t` shares reveal nothing. The BGV secret key —
//! an RNS ring element — is shared coefficient-wise over each chain prime
//! (the MPC field is the share field, as in the paper's SCALE-MAMBA setup,
//! §5), which is what lets committee members compute *decryption shares*
//! without reconstructing the key (see [`crate::threshold`]).

use mycelium_math::rng::Rng;
use mycelium_math::rns::{Representation, RnsPoly};
use mycelium_math::zq::Modulus;

/// One party's share: the evaluation of the sharing polynomial at `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point (the party index, nonzero).
    pub x: u64,
    /// Share value `f(x)`.
    pub y: u64,
}

/// Splits `secret` into `n` shares with threshold `t` (any `t + 1`
/// reconstruct).
///
/// # Panics
///
/// Panics if `t + 1 > n`, `n == 0`, or `n >= q`.
pub fn share<R: Rng + ?Sized>(
    secret: u64,
    t: usize,
    n: usize,
    modulus: Modulus,
    rng: &mut R,
) -> Vec<Share> {
    assert!(n > 0 && t < n, "invalid threshold parameters");
    assert!(
        (n as u64) < modulus.value(),
        "too many parties for the field"
    );
    let mut coeffs = Vec::with_capacity(t + 1);
    coeffs.push(modulus.reduce(secret));
    for _ in 0..t {
        coeffs.push(rng.gen_range(0..modulus.value()));
    }
    (1..=n as u64)
        .map(|x| Share {
            x,
            y: eval_poly(&coeffs, x, modulus),
        })
        .collect()
}

/// Evaluates the sharing polynomial at `x` (Horner).
pub fn eval_poly(coeffs: &[u64], x: u64, modulus: Modulus) -> u64 {
    let x = modulus.reduce(x);
    coeffs
        .iter()
        .rev()
        .fold(0u64, |acc, &c| modulus.mul_add(acc, x, c))
}

/// Reconstructs the secret (`f(0)`) from at least `t + 1` shares.
///
/// Returns `None` if shares have duplicate `x` coordinates or a zero
/// coordinate.
pub fn reconstruct(shares: &[Share], modulus: Modulus) -> Option<u64> {
    let xs: Vec<u64> = shares.iter().map(|s| s.x).collect();
    let lambda = lagrange_at_zero(&xs, modulus)?;
    let mut acc = 0u64;
    for (s, &l) in shares.iter().zip(&lambda) {
        acc = modulus.add(acc, modulus.mul(l, modulus.reduce(s.y)));
    }
    Some(acc)
}

/// Computes the Lagrange coefficients `λ_i = Π_{j≠i} x_j / (x_j - x_i)`
/// for interpolation at zero.
///
/// Returns `None` on duplicate or zero evaluation points.
pub fn lagrange_at_zero(xs: &[u64], modulus: Modulus) -> Option<Vec<u64>> {
    for (i, &xi) in xs.iter().enumerate() {
        if xi == 0 || xs[..i].contains(&xi) {
            return None;
        }
    }
    let mut out = Vec::with_capacity(xs.len());
    for (i, &xi) in xs.iter().enumerate() {
        let mut num = 1u64;
        let mut den = 1u64;
        for (j, &xj) in xs.iter().enumerate() {
            if i == j {
                continue;
            }
            let xj_r = modulus.reduce(xj);
            let xi_r = modulus.reduce(xi);
            num = modulus.mul(num, xj_r);
            den = modulus.mul(den, modulus.sub(xj_r, xi_r));
        }
        out.push(modulus.mul(num, modulus.inv(den)?));
    }
    Some(out)
}

/// A `(t, n)` sharing of an entire RNS ring element: every coefficient of
/// every residue polynomial is shared independently, and party `i`'s share
/// is itself an [`RnsPoly`].
///
/// This is exactly the form committee members need: the linearity of
/// Shamir sharing means `[c1 · s]_i = c1 · [s]_i` — the partial decryption
/// each member computes locally.
#[derive(Debug, Clone)]
pub struct RnsShares {
    /// `shares[i]` is party `i+1`'s share (evaluation point `i+1`).
    pub shares: Vec<RnsPoly>,
    /// Reconstruction threshold: `t + 1` shares are needed.
    pub threshold: usize,
}

/// Shares an RNS ring element coefficient-wise.
///
/// The input must be in coefficient representation.
///
/// # Panics
///
/// Panics on invalid threshold parameters or NTT-domain input.
pub fn share_rns<R: Rng + ?Sized>(value: &RnsPoly, t: usize, n: usize, rng: &mut R) -> RnsShares {
    assert_eq!(
        value.representation(),
        Representation::Coefficient,
        "share_rns requires coefficient representation"
    );
    assert!(n > 0 && t < n, "invalid threshold parameters");
    let ctx = value.context().clone();
    let level = value.level();
    let degree = ctx.degree();
    let mut per_party: Vec<Vec<Vec<u64>>> = vec![Vec::with_capacity(level); n];
    for (prime_idx, residues) in value.residues().iter().enumerate() {
        let m = ctx.moduli()[prime_idx];
        let mut party_res: Vec<Vec<u64>> = vec![Vec::with_capacity(degree); n];
        for &coeff in residues {
            // One random polynomial per coefficient.
            let mut coeffs = Vec::with_capacity(t + 1);
            coeffs.push(coeff);
            for _ in 0..t {
                coeffs.push(rng.gen_range(0..m.value()));
            }
            for (party, res) in party_res.iter_mut().enumerate() {
                res.push(eval_poly(&coeffs, party as u64 + 1, m));
            }
        }
        for (party, res) in party_res.into_iter().enumerate() {
            per_party[party].push(res);
        }
    }
    let shares = per_party
        .into_iter()
        .map(|residues| RnsPoly::from_residues(ctx.clone(), Representation::Coefficient, residues))
        .collect();
    RnsShares {
        shares,
        threshold: t,
    }
}

/// Reconstructs an RNS ring element from `(party_index, share)` pairs
/// (1-based indices).
///
/// Returns `None` with fewer than `threshold + 1` shares or duplicate
/// indices. `threshold` is the `t` used at sharing time.
pub fn reconstruct_rns(indexed_shares: &[(u64, &RnsPoly)], threshold: usize) -> Option<RnsPoly> {
    if indexed_shares.len() < threshold + 1 {
        return None;
    }
    let ctx = indexed_shares[0].1.context().clone();
    let level = indexed_shares[0].1.level();
    let xs: Vec<u64> = indexed_shares.iter().map(|(x, _)| *x).collect();
    let degree = ctx.degree();
    let mut residues = Vec::with_capacity(level);
    for prime_idx in 0..level {
        let m = ctx.moduli()[prime_idx];
        let lambda = lagrange_at_zero(&xs, m)?;
        let mut res = vec![0u64; degree];
        for ((_, sh), &l) in indexed_shares.iter().zip(&lambda) {
            for (c, out) in sh.residues()[prime_idx].iter().zip(res.iter_mut()) {
                *out = m.add(*out, m.mul(l, *c));
            }
        }
        residues.push(res);
    }
    Some(RnsPoly::from_residues(
        ctx,
        Representation::Coefficient,
        residues,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::{SeedableRng, StdRng};
    use mycelium_math::rns::RnsContext;

    fn field() -> Modulus {
        Modulus::new_prime(2_147_483_647).unwrap() // 2^31 - 1.
    }

    #[test]
    fn share_and_reconstruct() {
        let q = field();
        let mut rng = StdRng::seed_from_u64(1);
        for secret in [0u64, 1, 42, 2_147_483_646] {
            let shares = share(secret, 3, 10, q, &mut rng);
            assert_eq!(shares.len(), 10);
            assert_eq!(reconstruct(&shares[..4], q), Some(secret));
            assert_eq!(reconstruct(&shares[3..8], q), Some(secret));
            // All ten work too.
            assert_eq!(reconstruct(&shares, q), Some(secret));
        }
    }

    #[test]
    fn insufficient_shares_give_wrong_secret() {
        // With only t shares the interpolation yields a value that is (with
        // overwhelming probability) not the secret — and crucially, *any*
        // secret is consistent with t shares.
        let q = field();
        let mut rng = StdRng::seed_from_u64(2);
        let secret = 123456;
        let shares = share(secret, 4, 10, q, &mut rng);
        let wrong = reconstruct(&shares[..4], q).unwrap();
        assert_ne!(wrong, secret);
    }

    #[test]
    fn duplicate_points_rejected() {
        let q = field();
        let s = Share { x: 1, y: 5 };
        assert_eq!(reconstruct(&[s, s], q), None);
        assert_eq!(reconstruct(&[Share { x: 0, y: 1 }], q), None);
    }

    #[test]
    fn lagrange_sums_correctly() {
        // For the constant polynomial f == c, every share is c, and the
        // lagrange coefficients must sum to 1.
        let q = field();
        let xs = [1u64, 5, 9, 2];
        let lambda = lagrange_at_zero(&xs, q).unwrap();
        let sum = lambda.iter().fold(0u64, |a, &l| q.add(a, l));
        assert_eq!(sum, 1);
    }

    #[test]
    fn rns_share_roundtrip() {
        let ctx = RnsContext::with_primes(16, 30, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let value = mycelium_math::sample::uniform_rns(&ctx, 3, &mut rng);
        let sharing = share_rns(&value, 2, 5, &mut rng);
        assert_eq!(sharing.shares.len(), 5);
        let picked: Vec<(u64, &RnsPoly)> = [0usize, 2, 4]
            .iter()
            .map(|&i| (i as u64 + 1, &sharing.shares[i]))
            .collect();
        let rec = reconstruct_rns(&picked, sharing.threshold).unwrap();
        assert_eq!(rec, value);
    }

    #[test]
    fn rns_too_few_shares() {
        let ctx = RnsContext::with_primes(8, 30, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let value = mycelium_math::sample::uniform_rns(&ctx, 2, &mut rng);
        let sharing = share_rns(&value, 2, 5, &mut rng);
        let picked: Vec<(u64, &RnsPoly)> = [0usize, 1]
            .iter()
            .map(|&i| (i as u64 + 1, &sharing.shares[i]))
            .collect();
        assert!(reconstruct_rns(&picked, sharing.threshold).is_none());
    }

    #[test]
    fn shares_are_linear() {
        // [a]_i + [b]_i is a valid share of a + b — the property threshold
        // decryption relies on.
        let ctx = RnsContext::with_primes(8, 30, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let a = mycelium_math::sample::uniform_rns(&ctx, 2, &mut rng);
        let b = mycelium_math::sample::uniform_rns(&ctx, 2, &mut rng);
        let sa = share_rns(&a, 1, 4, &mut rng);
        let sb = share_rns(&b, 1, 4, &mut rng);
        let sum_shares: Vec<RnsPoly> = sa
            .shares
            .iter()
            .zip(&sb.shares)
            .map(|(x, y)| x.add(y))
            .collect();
        let picked: Vec<(u64, &RnsPoly)> = [0usize, 1, 3]
            .iter()
            .map(|&i| (i as u64 + 1, &sum_shares[i]))
            .collect();
        assert_eq!(reconstruct_rns(&picked, 1).unwrap(), a.add(&b));
    }

    #[test]
    #[should_panic(expected = "invalid threshold")]
    fn threshold_must_fit() {
        let q = field();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = share(1, 5, 5, q, &mut rng);
    }
}
