//! Budget-stretching techniques (§4.4's "more sophisticated techniques").
//!
//! The prototype (like the paper's) charges each query its full `ε`.
//! §4.4 points at two standard improvements, both implemented here:
//!
//! * **Advanced composition** (Dwork–Roth Thm 3.20): `k` queries at `ε`
//!   each are `(ε', kδ' + δ)`-DP with
//!   `ε' = ε·√(2k·ln(1/δ)) + k·ε·(e^ε − 1)` — for small `ε` the budget
//!   grows as `√k` instead of `k`.
//! * **The sparse-vector technique** (as used in Honeycrisp): answering
//!   "is this noisy value above the threshold?" pays only when the answer
//!   is *yes*; an arbitrary number of below-threshold probes is free.

use mycelium_math::rng::Rng;
use mycelium_math::sample::sample_laplace;

use crate::DpError;

/// Total privacy cost of `k` adaptively-chosen `epsilon`-DP queries under
/// advanced composition at slack `delta`.
///
/// Returns the `ε'` such that the composition is `(ε', k·δ_each + delta)`-DP.
///
/// Every degenerate input is a typed [`DpError::InvalidParameter`], never
/// a NaN: `epsilon` must be positive and finite, `delta` must lie in
/// `(0, 1)`, and `k` must be at least one (composing zero queries is a
/// caller bug, not a zero-cost composition).
pub fn advanced_composition(epsilon: f64, k: usize, delta: f64) -> Result<f64, DpError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DpError::InvalidParameter);
    }
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(DpError::InvalidParameter);
    }
    if k == 0 {
        return Err(DpError::InvalidParameter);
    }
    let k = k as f64;
    Ok(epsilon * (2.0 * k * (1.0 / delta).ln()).sqrt() + k * epsilon * (epsilon.exp() - 1.0))
}

/// How many `epsilon`-queries a total budget admits under basic vs
/// advanced composition — the "budget stretch" §4.4 alludes to.
///
/// Rejects non-positive or non-finite `total`/`epsilon` and out-of-range
/// `delta` with a typed [`DpError::InvalidParameter`] (the old signature
/// silently cast `total / 0.0` through `floor() as usize`).
pub fn queries_supported(total: f64, epsilon: f64, delta: f64) -> Result<(usize, usize), DpError> {
    if !total.is_finite() || total <= 0.0 {
        return Err(DpError::InvalidParameter);
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DpError::InvalidParameter);
    }
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(DpError::InvalidParameter);
    }
    let basic = (total / epsilon).floor() as usize;
    let mut advanced = basic;
    while advanced_composition(epsilon, advanced + 1, delta)
        .map(|e| e <= total)
        .unwrap_or(false)
    {
        advanced += 1;
    }
    Ok((basic, advanced.max(basic)))
}

/// The sparse-vector mechanism ("Above Threshold").
///
/// Initialized with a noisy threshold; each probe compares a noisy query
/// value against it. Below-threshold answers are free; the first
/// above-threshold answer consumes the mechanism (it must be re-armed,
/// paying `ε` again).
#[derive(Debug)]
pub struct SparseVector {
    epsilon: f64,
    sensitivity: f64,
    noisy_threshold: f64,
    exhausted: bool,
}

impl SparseVector {
    /// Arms the mechanism for a threshold query at cost `epsilon`.
    pub fn arm<R: Rng + ?Sized>(
        threshold: f64,
        sensitivity: f64,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<Self, DpError> {
        if epsilon <= 0.0 || sensitivity <= 0.0 {
            return Err(DpError::InvalidParameter);
        }
        Ok(Self {
            epsilon,
            sensitivity,
            noisy_threshold: threshold + sample_laplace(2.0 * sensitivity / epsilon, rng),
            exhausted: false,
        })
    }

    /// Probes one query value. Returns `Some(true)` when the (noisy) value
    /// clears the threshold — which exhausts the mechanism — `Some(false)`
    /// when it does not, and `None` when the mechanism is spent.
    pub fn probe<R: Rng + ?Sized>(&mut self, value: f64, rng: &mut R) -> Option<bool> {
        if self.exhausted {
            return None;
        }
        let noisy = value + sample_laplace(4.0 * self.sensitivity / self.epsilon, rng);
        if noisy >= self.noisy_threshold {
            self.exhausted = true;
            Some(true)
        } else {
            Some(false)
        }
    }

    /// Whether the mechanism has fired.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::{SeedableRng, StdRng};

    #[test]
    fn advanced_beats_basic_for_many_queries() {
        // 100 queries at ε=0.1: basic costs 10; advanced far less.
        let adv = advanced_composition(0.1, 100, 1e-6).unwrap();
        assert!(adv < 10.0, "advanced {adv}");
        assert!(adv > 0.1, "still more than one query");
    }

    #[test]
    fn stretch_factor() {
        let (basic, advanced) = queries_supported(1.0, 0.01, 1e-6).unwrap();
        assert_eq!(basic, 100);
        assert!(
            advanced > 2 * basic,
            "advanced composition should stretch the budget: {advanced}"
        );
    }

    #[test]
    fn invalid_parameters() {
        assert!(advanced_composition(0.0, 5, 1e-6).is_err());
        assert!(advanced_composition(0.1, 5, 0.0).is_err());
        assert!(advanced_composition(0.1, 5, 1.5).is_err());
    }

    #[test]
    fn degenerate_inputs_are_typed_errors_not_nan() {
        // k = 0: composing zero queries is a caller bug.
        assert_eq!(
            advanced_composition(0.1, 0, 1e-6),
            Err(DpError::InvalidParameter)
        );
        // delta exactly 1 (and above) leaves ln(1/δ) degenerate.
        assert_eq!(
            advanced_composition(0.1, 5, 1.0),
            Err(DpError::InvalidParameter)
        );
        // Non-finite parameters.
        assert_eq!(
            advanced_composition(f64::NAN, 5, 1e-6),
            Err(DpError::InvalidParameter)
        );
        assert_eq!(
            advanced_composition(0.1, 5, f64::INFINITY),
            Err(DpError::InvalidParameter)
        );
        // queries_supported: zero/negative/non-finite budget or epsilon.
        assert_eq!(
            queries_supported(1.0, 0.0, 1e-6),
            Err(DpError::InvalidParameter)
        );
        assert_eq!(
            queries_supported(0.0, 0.1, 1e-6),
            Err(DpError::InvalidParameter)
        );
        assert_eq!(
            queries_supported(f64::INFINITY, 0.1, 1e-6),
            Err(DpError::InvalidParameter)
        );
        assert_eq!(
            queries_supported(1.0, 0.1, 1.0),
            Err(DpError::InvalidParameter)
        );
        // Every valid composition must come out finite.
        for k in [1usize, 2, 10, 1000] {
            let e = advanced_composition(0.5, k, 1e-9).unwrap();
            assert!(e.is_finite() && e > 0.0);
        }
    }

    /// Satellite property test: over a deterministic grid of
    /// (total, epsilon, delta), advanced composition never reports a
    /// *smaller* supported-query count than basic composition, and the
    /// reported advanced count actually fits the budget.
    #[test]
    fn advanced_count_never_below_basic_property() {
        let totals = [0.25f64, 1.0, 3.0, 5.0, 20.0];
        let epsilons = [0.005f64, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0];
        let deltas = [1e-9f64, 1e-6, 1e-3, 0.49];
        for &total in &totals {
            for &epsilon in &epsilons {
                for &delta in &deltas {
                    let (basic, advanced) = queries_supported(total, epsilon, delta)
                        .unwrap_or_else(|e| {
                            panic!("valid grid point ({total}, {epsilon}, {delta}): {e:?}")
                        });
                    assert!(
                        advanced >= basic,
                        "advanced ({advanced}) < basic ({basic}) at \
                         total={total} eps={epsilon} delta={delta}"
                    );
                    assert_eq!(basic, (total / epsilon).floor() as usize);
                    if advanced > basic {
                        // The claimed count must genuinely fit the budget…
                        let cost = advanced_composition(epsilon, advanced, delta).unwrap();
                        assert!(
                            cost <= total,
                            "claimed k={advanced} costs {cost} > total {total}"
                        );
                        // …and be maximal: one more query must not fit.
                        let next = advanced_composition(epsilon, advanced + 1, delta).unwrap();
                        assert!(next > total, "k={} still fits", advanced + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_vector_fires_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = SparseVector::arm(100.0, 1.0, 2.0, &mut rng).unwrap();
        // Far-below values: free probes, all false.
        for _ in 0..50 {
            assert_eq!(sv.probe(0.0, &mut rng), Some(false));
        }
        // A far-above value fires.
        assert_eq!(sv.probe(1000.0, &mut rng), Some(true));
        assert!(sv.is_exhausted());
        assert_eq!(sv.probe(1000.0, &mut rng), None);
    }

    #[test]
    fn sparse_vector_is_actually_noisy() {
        // Near the threshold, answers vary across randomness.
        let mut outcomes = std::collections::HashSet::new();
        for seed in 0..64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sv = SparseVector::arm(10.0, 1.0, 1.0, &mut rng).unwrap();
            outcomes.insert(sv.probe(10.0, &mut rng));
        }
        assert!(outcomes.contains(&Some(true)));
        assert!(outcomes.contains(&Some(false)));
    }
}
