//! Budget-stretching techniques (§4.4's "more sophisticated techniques").
//!
//! The prototype (like the paper's) charges each query its full `ε`.
//! §4.4 points at two standard improvements, both implemented here:
//!
//! * **Advanced composition** (Dwork–Roth Thm 3.20): `k` queries at `ε`
//!   each are `(ε', kδ' + δ)`-DP with
//!   `ε' = ε·√(2k·ln(1/δ)) + k·ε·(e^ε − 1)` — for small `ε` the budget
//!   grows as `√k` instead of `k`.
//! * **The sparse-vector technique** (as used in Honeycrisp): answering
//!   "is this noisy value above the threshold?" pays only when the answer
//!   is *yes*; an arbitrary number of below-threshold probes is free.

use mycelium_math::rng::Rng;
use mycelium_math::sample::sample_laplace;

use crate::DpError;

/// Total privacy cost of `k` adaptively-chosen `epsilon`-DP queries under
/// advanced composition at slack `delta`.
///
/// Returns the `ε'` such that the composition is `(ε', k·δ_each + delta)`-DP.
pub fn advanced_composition(epsilon: f64, k: usize, delta: f64) -> Result<f64, DpError> {
    if epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0 {
        return Err(DpError::InvalidParameter);
    }
    let k = k as f64;
    Ok(epsilon * (2.0 * k * (1.0 / delta).ln()).sqrt() + k * epsilon * (epsilon.exp() - 1.0))
}

/// How many `epsilon`-queries a total budget admits under basic vs
/// advanced composition — the "budget stretch" §4.4 alludes to.
pub fn queries_supported(total: f64, epsilon: f64, delta: f64) -> (usize, usize) {
    let basic = (total / epsilon).floor() as usize;
    let mut advanced = basic;
    while advanced_composition(epsilon, advanced + 1, delta)
        .map(|e| e <= total)
        .unwrap_or(false)
    {
        advanced += 1;
    }
    (basic, advanced.max(basic))
}

/// The sparse-vector mechanism ("Above Threshold").
///
/// Initialized with a noisy threshold; each probe compares a noisy query
/// value against it. Below-threshold answers are free; the first
/// above-threshold answer consumes the mechanism (it must be re-armed,
/// paying `ε` again).
#[derive(Debug)]
pub struct SparseVector {
    epsilon: f64,
    sensitivity: f64,
    noisy_threshold: f64,
    exhausted: bool,
}

impl SparseVector {
    /// Arms the mechanism for a threshold query at cost `epsilon`.
    pub fn arm<R: Rng + ?Sized>(
        threshold: f64,
        sensitivity: f64,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<Self, DpError> {
        if epsilon <= 0.0 || sensitivity <= 0.0 {
            return Err(DpError::InvalidParameter);
        }
        Ok(Self {
            epsilon,
            sensitivity,
            noisy_threshold: threshold + sample_laplace(2.0 * sensitivity / epsilon, rng),
            exhausted: false,
        })
    }

    /// Probes one query value. Returns `Some(true)` when the (noisy) value
    /// clears the threshold — which exhausts the mechanism — `Some(false)`
    /// when it does not, and `None` when the mechanism is spent.
    pub fn probe<R: Rng + ?Sized>(&mut self, value: f64, rng: &mut R) -> Option<bool> {
        if self.exhausted {
            return None;
        }
        let noisy = value + sample_laplace(4.0 * self.sensitivity / self.epsilon, rng);
        if noisy >= self.noisy_threshold {
            self.exhausted = true;
            Some(true)
        } else {
            Some(false)
        }
    }

    /// Whether the mechanism has fired.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::{SeedableRng, StdRng};

    #[test]
    fn advanced_beats_basic_for_many_queries() {
        // 100 queries at ε=0.1: basic costs 10; advanced far less.
        let adv = advanced_composition(0.1, 100, 1e-6).unwrap();
        assert!(adv < 10.0, "advanced {adv}");
        assert!(adv > 0.1, "still more than one query");
    }

    #[test]
    fn stretch_factor() {
        let (basic, advanced) = queries_supported(1.0, 0.01, 1e-6);
        assert_eq!(basic, 100);
        assert!(
            advanced > 2 * basic,
            "advanced composition should stretch the budget: {advanced}"
        );
    }

    #[test]
    fn invalid_parameters() {
        assert!(advanced_composition(0.0, 5, 1e-6).is_err());
        assert!(advanced_composition(0.1, 5, 0.0).is_err());
        assert!(advanced_composition(0.1, 5, 1.5).is_err());
    }

    #[test]
    fn sparse_vector_fires_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = SparseVector::arm(100.0, 1.0, 2.0, &mut rng).unwrap();
        // Far-below values: free probes, all false.
        for _ in 0..50 {
            assert_eq!(sv.probe(0.0, &mut rng), Some(false));
        }
        // A far-above value fires.
        assert_eq!(sv.probe(1000.0, &mut rng), Some(true));
        assert!(sv.is_exhausted());
        assert_eq!(sv.probe(1000.0, &mut rng), None);
    }

    #[test]
    fn sparse_vector_is_actually_noisy() {
        // Near the threshold, answers vary across randomness.
        let mut outcomes = std::collections::HashSet::new();
        for seed in 0..64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sv = SparseVector::arm(10.0, 1.0, 1.0, &mut rng).unwrap();
            outcomes.insert(sv.probe(10.0, &mut rng));
        }
        assert!(outcomes.contains(&Some(true)));
        assert!(outcomes.contains(&Some(false)));
    }
}
