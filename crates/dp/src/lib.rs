//! Differential privacy: the Laplace mechanism and budget accounting
//! (§2.3, §4.4, §4.7).
//!
//! Mycelium's committee adds calibrated noise to every released statistic:
//! for a query with sensitivity `s` released at privacy cost `ε`, each
//! value gets independent Laplace noise of scale `s/ε`. The committee also
//! maintains a *privacy budget* from which each query's `ε` is deducted;
//! the prototype (like the paper's) deducts the full `ε` per query, which
//! is safe but conservative.

pub mod composition;

use mycelium_math::rng::Rng;
use mycelium_math::sample::{sample_discrete_laplace, sample_laplace};

/// Budget-accounting errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// The requested `ε` exceeds the remaining budget.
    BudgetExhausted {
        /// Requested cost.
        requested: f64,
        /// Remaining budget.
        remaining: f64,
    },
    /// Nonpositive `ε` or sensitivity.
    InvalidParameter,
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining {remaining}"
            ),
            DpError::InvalidParameter => write!(f, "ε and sensitivity must be positive"),
        }
    }
}

impl std::error::Error for DpError {}

/// A privacy budget tracker (§4.4).
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Creates a budget of `total` ε.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not positive and finite.
    pub fn new(total: f64) -> Self {
        assert!(total > 0.0 && total.is_finite(), "budget must be positive");
        Self { total, spent: 0.0 }
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Charges `epsilon` (the conservative full-cost accounting the
    /// prototype uses).
    pub fn charge(&mut self, epsilon: f64) -> Result<(), DpError> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(DpError::InvalidParameter);
        }
        if epsilon > self.remaining() + 1e-12 {
            return Err(DpError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        Ok(())
    }
}

/// The Laplace mechanism: `value + Lap(sensitivity / epsilon)`.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<f64, DpError> {
    if sensitivity <= 0.0 || epsilon <= 0.0 {
        return Err(DpError::InvalidParameter);
    }
    Ok(value + sample_laplace(sensitivity / epsilon, rng))
}

/// Integer-valued Laplace mechanism (two-sided geometric), the variant the
/// committee computes inside the MPC where only integers exist.
pub fn discrete_laplace_mechanism<R: Rng + ?Sized>(
    value: i64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<i64, DpError> {
    if sensitivity <= 0.0 || epsilon <= 0.0 {
        return Err(DpError::InvalidParameter);
    }
    Ok(value + sample_discrete_laplace(sensitivity / epsilon, rng))
}

/// Releases a histogram under `ε`-DP: each bin gets independent Laplace
/// noise of scale `sensitivity / epsilon` (HISTO sensitivity is 2, §4.7).
pub fn release_histogram<R: Rng + ?Sized>(
    counts: &[u64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<Vec<f64>, DpError> {
    counts
        .iter()
        .map(|&c| laplace_mechanism(c as f64, sensitivity, epsilon, rng))
        .collect()
}

/// Applies pre-sampled noise values (e.g. the committee's jointly-derived
/// noise from `mycelium_sharing::threshold::derive_joint_noise`) to a
/// histogram.
pub fn apply_noise(counts: &[u64], noise: &[i64]) -> Vec<i64> {
    counts
        .iter()
        .zip(noise)
        .map(|(&c, &n)| c as i64 + n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::{SeedableRng, StdRng};

    #[test]
    fn budget_accounting() {
        let mut b = PrivacyBudget::new(1.0);
        assert_eq!(b.remaining(), 1.0);
        b.charge(0.3).unwrap();
        b.charge(0.3).unwrap();
        assert!((b.remaining() - 0.4).abs() < 1e-12);
        assert!(matches!(
            b.charge(0.5),
            Err(DpError::BudgetExhausted { .. })
        ));
        // The failed charge spent nothing.
        assert!((b.remaining() - 0.4).abs() < 1e-12);
        b.charge(0.4).unwrap();
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut b = PrivacyBudget::new(1.0);
        assert_eq!(b.charge(0.0), Err(DpError::InvalidParameter));
        assert_eq!(b.charge(-1.0), Err(DpError::InvalidParameter));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(laplace_mechanism(1.0, 0.0, 1.0, &mut rng).is_err());
        assert!(laplace_mechanism(1.0, 1.0, 0.0, &mut rng).is_err());
    }

    #[test]
    fn noise_scale_tracks_sensitivity_over_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let collect = |sens: f64, eps: f64, rng: &mut StdRng| -> f64 {
            let v: Vec<f64> = (0..n)
                .map(|_| laplace_mechanism(0.0, sens, eps, rng).unwrap())
                .collect();
            let mean = v.iter().sum::<f64>() / n as f64;
            (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
        };
        // Laplace std = b·√2 with b = s/ε.
        let s1 = collect(2.0, 1.0, &mut rng);
        assert!((s1 - 2.0 * 2f64.sqrt()).abs() < 0.15, "std {s1}");
        let s2 = collect(2.0, 4.0, &mut rng);
        assert!((s2 - 0.5 * 2f64.sqrt()).abs() < 0.05, "std {s2}");
    }

    #[test]
    fn histogram_release_preserves_signal() {
        let mut rng = StdRng::seed_from_u64(3);
        let counts = vec![1000u64, 0, 500, 2000];
        let released = release_histogram(&counts, 2.0, 1.0, &mut rng).unwrap();
        assert_eq!(released.len(), 4);
        for (r, &c) in released.iter().zip(&counts) {
            assert!((r - c as f64).abs() < 50.0, "noise too large: {r} vs {c}");
        }
    }

    #[test]
    fn discrete_mechanism_is_integer_and_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<i64> = (0..50_000)
            .map(|_| discrete_laplace_mechanism(10, 2.0, 1.0, &mut rng).unwrap())
            .collect();
        let mean = samples.iter().sum::<i64>() as f64 / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn apply_noise_adds_elementwise() {
        assert_eq!(apply_noise(&[5, 10], &[-2, 3]), vec![3, 13]);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = PrivacyBudget::new(0.0);
    }
}
