//! Hop selection and onion encryption (§3.4–§3.5).
//!
//! **Hop selection.** Forwarders are the random fraction `f` of pseudonyms
//! whose PRF ratio `H(x ‖ B)/H_max` falls below `f`; the range is split
//! into `k` classes so hop `i` is drawn from class `i`. Because the beacon
//! `B` is fixed only after `M1` is committed, the aggregator cannot bias
//! selection toward confederates.
//!
//! **Onion layers.** The source shares a symmetric key with every hop
//! (established by the telescoping protocol) and encrypts inside-out: the
//! *inner* layer to the destination uses authenticated encryption (stream
//! cipher + MAC, nonce = round number, not transmitted), every *middle*
//! layer uses the MAC-less `SEnc`. A forwarder that must mask a missing
//! message substitutes uniformly random bytes — indistinguishable from a
//! genuine `SEnc` layer, which defeats the two-colluding-hops attack of
//! §3.5 while the destination still detects garbage via the inner MAC.

use mycelium_crypto::chacha20::{sdec, senc};
use mycelium_crypto::kdf::prf_ratio;
use mycelium_crypto::penc;
use mycelium_math::rng::Rng;

/// A random path identifier, regenerated per hop pair (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(pub [u8; 16]);

impl PathId {
    /// Generates a fresh random path id.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut id = [0u8; 16];
        rng.fill(&mut id);
        Self(id)
    }
}

/// Returns the forwarder class of pseudonym number `x`: `Some(i)` with
/// `i ∈ [0, k)` if `x` is eligible as hop `i+1`, `None` if `x` is not a
/// forwarder at all.
pub fn forwarder_class(x: u64, beacon: &[u8], f: f64, k: usize) -> Option<usize> {
    let ratio = prf_ratio(x, beacon);
    if ratio >= f {
        return None;
    }
    Some(((ratio / f) * k as f64) as usize)
}

/// Samples a pseudonym number eligible as hop `i` (1-based) by rejection.
///
/// # Panics
///
/// Panics if `i` is not in `1..=k` or no eligible pseudonym is found in a
/// bounded number of attempts (astronomically unlikely for realistic
/// `total · f / k`).
pub fn select_hop<R: Rng + ?Sized>(
    i: usize,
    k: usize,
    f: f64,
    total: u64,
    beacon: &[u8],
    rng: &mut R,
) -> u64 {
    assert!(i >= 1 && i <= k, "hop index out of range");
    for _ in 0..100_000 {
        let x = rng.gen_range(0..total);
        if forwarder_class(x, beacon, f, k) == Some(i - 1) {
            return x;
        }
    }
    panic!("no eligible hop found: population too small for f/k");
}

/// Builds the onion for one message: ECIES inner layer to the destination,
/// then `SEnc` middle layers for hops `k, k-1, …, 1`.
///
/// `hop_keys[i]` is the symmetric key shared with hop `i+1`; layer `i` is
/// bound to C-round `base_round + i + 1` (the round in which that hop
/// processes it).
pub fn build_onion<R: Rng + ?Sized>(
    hop_keys: &[[u8; 32]],
    dst_key: &penc::PublicKey,
    base_round: u64,
    payload: &[u8],
    rng: &mut R,
) -> Vec<u8> {
    let mut blob = penc::encrypt(dst_key, payload, rng);
    for (idx, key) in hop_keys.iter().enumerate().rev() {
        let round = base_round + idx as u64 + 1;
        blob = senc(key, round, &blob);
    }
    blob
}

/// Peels one middle layer at hop `i` (0-based index into the path).
pub fn peel_layer(key: &[u8; 32], base_round: u64, hop_index: usize, blob: &[u8]) -> Vec<u8> {
    sdec(key, base_round + hop_index as u64 + 1, blob)
}

/// Opens the inner layer at the destination.
pub fn open_inner(dst: &penc::KeyPair, blob: &[u8]) -> Result<Vec<u8>, penc::PencError> {
    dst.decrypt(blob)
}

/// Generates a dummy of the right size for a missing message (§3.5).
pub fn random_dummy<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<u8> {
    let mut d = vec![0u8; len];
    rng.fill(&mut d[..]);
    d
}

/// The on-the-wire size of an onion for a payload of `len` bytes: only the
/// inner ECIES layer adds overhead, middle layers are length-preserving.
pub fn onion_len(len: usize) -> usize {
    len + penc::OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_crypto::penc::KeyPair;
    use mycelium_math::rng::{SeedableRng, StdRng};

    #[test]
    fn forwarder_fraction_and_classes() {
        let beacon = b"beacon";
        let f = 0.1;
        let k = 3;
        let total = 100_000u64;
        let mut class_counts = [0usize; 3];
        let mut forwarders = 0usize;
        for x in 0..total {
            if let Some(c) = forwarder_class(x, beacon, f, k) {
                forwarders += 1;
                class_counts[c] += 1;
            }
        }
        let frac = forwarders as f64 / total as f64;
        assert!((frac - f).abs() < 0.01, "forwarder fraction {frac}");
        for (i, &c) in class_counts.iter().enumerate() {
            let expect = total as f64 * f / k as f64;
            assert!(
                (c as f64 - expect).abs() < expect * 0.2,
                "class {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn select_hop_lands_in_class() {
        let mut rng = StdRng::seed_from_u64(1);
        let beacon = b"b2";
        for i in 1..=3 {
            let x = select_hop(i, 3, 0.1, 100_000, beacon, &mut rng);
            assert_eq!(forwarder_class(x, beacon, 0.1, 3), Some(i - 1));
        }
    }

    #[test]
    fn onion_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let dst = KeyPair::generate(&mut rng);
        let hop_keys = [[1u8; 32], [2u8; 32], [3u8; 32]];
        let payload = b"are you ill?".to_vec();
        let base = 100;
        let onion = build_onion(&hop_keys, &dst.public(), base, &payload, &mut rng);
        assert_eq!(onion.len(), onion_len(payload.len()));
        let l1 = peel_layer(&hop_keys[0], base, 0, &onion);
        let l2 = peel_layer(&hop_keys[1], base, 1, &l1);
        let l3 = peel_layer(&hop_keys[2], base, 2, &l2);
        assert_eq!(open_inner(&dst, &l3).unwrap(), payload);
    }

    #[test]
    fn wrong_round_breaks_decryption() {
        let mut rng = StdRng::seed_from_u64(3);
        let dst = KeyPair::generate(&mut rng);
        let hop_keys = [[7u8; 32]];
        let onion = build_onion(&hop_keys, &dst.public(), 5, b"m", &mut rng);
        let peeled_wrong = peel_layer(&hop_keys[0], 6, 0, &onion);
        assert!(open_inner(&dst, &peeled_wrong).is_err());
    }

    #[test]
    fn dummy_rejected_by_inner_layer_only() {
        // A dummy passes through SEnc peeling without error but fails the
        // destination's authenticated inner layer — exactly the §3.5
        // design.
        let mut rng = StdRng::seed_from_u64(4);
        let dst = KeyPair::generate(&mut rng);
        let hop_keys = [[1u8; 32], [2u8; 32]];
        let real = build_onion(&hop_keys, &dst.public(), 0, b"payload", &mut rng);
        let dummy = random_dummy(real.len(), &mut rng);
        assert_eq!(dummy.len(), real.len());
        let peeled = peel_layer(&hop_keys[1], 0, 1, &dummy);
        assert_eq!(peeled.len(), dummy.len(), "peeling never fails");
        assert!(open_inner(&dst, &peeled).is_err(), "inner MAC catches it");
    }

    #[test]
    fn middle_layers_are_length_preserving() {
        let mut rng = StdRng::seed_from_u64(5);
        let dst = KeyPair::generate(&mut rng);
        for k in 1..=4 {
            let keys: Vec<[u8; 32]> = (0..k).map(|i| [i as u8 + 1; 32]).collect();
            let onion = build_onion(&keys, &dst.public(), 9, &vec![0u8; 256], &mut rng);
            assert_eq!(onion.len(), onion_len(256), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "hop index out of range")]
    fn select_hop_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        select_hop(4, 3, 0.1, 1000, b"b", &mut rng);
    }
}
