//! Mycelium's anonymous communication layer (§3).
//!
//! Devices must exchange messages with their graph neighbors knowing only
//! pseudonyms, through an untrusted aggregator, without revealing the graph
//! topology. The design is a mix network in which *devices themselves* are
//! the mixes and the aggregator is a mediator holding per-pseudonym
//! mailboxes:
//!
//! * [`bulletin`] — the public bulletin board (blockchain stand-in) that
//!   prevents the aggregator from equivocating.
//! * [`maps`] — the verifiable maps `M1` (pseudonym number → pseudonym,
//!   public key, device number) and `M2` (device number → pseudonym
//!   hashes), Merkle-committed and audited by devices (§3.3).
//! * [`mailbox`] — per-pseudonym mailboxes with per-C-round Merkle
//!   commitments (mailbox MHTs under a C-round MHT), inclusion proofs for
//!   senders, and drop detection for receivers.
//! * [`onion`] — hop selection via the beacon-keyed PRF buckets (§3.4) and
//!   layered encryption: an authenticated inner layer (source ↔
//!   destination) under MAC-less stream-cipher middle layers, so that
//!   forwarders can substitute undetectable dummies (§3.5).
//! * [`circuit`] — the telescoping path-setup protocol (`k² + 2k`
//!   C-rounds), with ACKs and bulletin-board complaints.
//! * [`forward`] — per-round message forwarding (`k + 1` C-rounds each
//!   way), batch mixing, and dummy substitution for dropped messages.
//! * [`simtransport`] — circuit setup and onion forwarding re-hosted as
//!   message-passing actors on the deterministic simnet, recovering
//!   dropped messages by timeout + bounded-backoff retry.
//! * [`analysis`] — the Figure 5 curves: anonymity-set size,
//!   identification probability, goodput under failures, and protocol
//!   duration, both closed-form and by Monte-Carlo simulation.

pub mod analysis;
pub mod beacon;
pub mod bulletin;
pub mod circuit;
pub mod forward;
pub mod mailbox;
pub mod maps;
pub mod onion;
pub mod simtransport;

pub use bulletin::BulletinBoard;
pub use maps::{DeviceRegistration, VerifiableMaps};
