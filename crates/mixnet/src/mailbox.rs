//! Per-pseudonym mailboxes with Merkle commitments (§3.3–§3.4).
//!
//! All device-to-device traffic flows through mailboxes the aggregator
//! keeps, one per pseudonym. At the end of each C-round the aggregator
//! computes (a) a *mailbox MHT* over each mailbox's messages and (b) a
//! *C-round MHT* over the mailbox roots, commits the C-round root to the
//! bulletin board, and proves to each sender that its deposits were
//! included. A recipient fetches its whole mailbox together with the
//! mailbox MHT and checks it against the committed root — so the
//! aggregator cannot drop or reorder messages without detection.

use mycelium_crypto::merkle::{InclusionProof, MerkleTree};
use mycelium_crypto::sha256::Digest;

/// A deposited message (opaque ciphertext bytes plus the path id header).
pub type Message = Vec<u8>;

/// The aggregator's mailbox state for one C-round.
#[derive(Debug, Clone, Default)]
pub struct MailboxRound {
    /// `boxes[p]` holds the messages deposited for pseudonym number `p`.
    boxes: Vec<Vec<Message>>,
}

/// A commitment over one C-round's mailboxes.
#[derive(Debug, Clone)]
pub struct RoundCommitment {
    /// Mailbox roots in pseudonym order.
    pub mailbox_roots: Vec<Digest>,
    /// Tree over the mailbox roots.
    cround_tree: MerkleTree,
    /// Per-mailbox trees (kept by the aggregator to serve proofs).
    mailbox_trees: Vec<MerkleTree>,
}

/// A sender's inclusion proof: the message is in mailbox `p` at `slot`,
/// and mailbox `p`'s root is in the C-round tree.
#[derive(Debug, Clone)]
pub struct DepositProof {
    /// Target pseudonym number.
    pub pseudonym: usize,
    /// Slot within the mailbox.
    pub slot: usize,
    /// Proof of the message within the mailbox MHT.
    pub message_proof: InclusionProof,
    /// The mailbox root.
    pub mailbox_root: Digest,
    /// Proof of the mailbox root within the C-round MHT.
    pub mailbox_proof: InclusionProof,
}

impl MailboxRound {
    /// Creates empty mailboxes for `pseudonyms` recipients.
    pub fn new(pseudonyms: usize) -> Self {
        Self {
            boxes: vec![Vec::new(); pseudonyms],
        }
    }

    /// Deposits a message; returns the slot index.
    ///
    /// # Panics
    ///
    /// Panics if the pseudonym number is out of range.
    pub fn deposit(&mut self, pseudonym: usize, msg: Message) -> usize {
        self.boxes[pseudonym].push(msg);
        self.boxes[pseudonym].len() - 1
    }

    /// Number of messages currently in a mailbox.
    pub fn len(&self, pseudonym: usize) -> usize {
        self.boxes[pseudonym].len()
    }

    /// True if every mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.iter().all(|b| b.is_empty())
    }

    /// The messages in a mailbox (what the recipient downloads).
    pub fn fetch(&self, pseudonym: usize) -> &[Message] {
        &self.boxes[pseudonym]
    }

    /// Ends the C-round: commits all mailboxes.
    pub fn commit(&self) -> RoundCommitment {
        let mailbox_trees: Vec<MerkleTree> =
            self.boxes.iter().map(|b| MerkleTree::build(b)).collect();
        let mailbox_roots: Vec<Digest> = mailbox_trees.iter().map(|t| t.root()).collect();
        let cround_tree =
            MerkleTree::build(&mailbox_roots.iter().map(|r| r.to_vec()).collect::<Vec<_>>());
        RoundCommitment {
            mailbox_roots,
            cround_tree,
            mailbox_trees,
        }
    }
}

impl RoundCommitment {
    /// The C-round root (posted to the bulletin board).
    pub fn root(&self) -> Digest {
        self.cround_tree.root()
    }

    /// Produces a sender's deposit proof.
    pub fn prove_deposit(
        &self,
        round: &MailboxRound,
        pseudonym: usize,
        slot: usize,
    ) -> Option<DepositProof> {
        if pseudonym >= round.boxes.len() || slot >= round.boxes[pseudonym].len() {
            return None;
        }
        Some(DepositProof {
            pseudonym,
            slot,
            message_proof: self.mailbox_trees[pseudonym].prove(slot)?,
            mailbox_root: self.mailbox_roots[pseudonym],
            mailbox_proof: self.cround_tree.prove(pseudonym)?,
        })
    }

    /// Sender-side verification against the committed C-round root.
    pub fn verify_deposit(cround_root: &Digest, msg: &Message, proof: &DepositProof) -> bool {
        proof
            .message_proof
            .verify(&proof.mailbox_root, proof.slot, msg)
            && proof
                .mailbox_proof
                .verify(cround_root, proof.pseudonym, &proof.mailbox_root)
    }

    /// Recipient-side check: the downloaded mailbox contents match the
    /// committed root (no dropped or injected messages).
    pub fn verify_mailbox(
        cround_root: &Digest,
        pseudonym: usize,
        messages: &[Message],
        mailbox_proof: &InclusionProof,
    ) -> bool {
        let tree = MerkleTree::build(messages);
        mailbox_proof.verify(cround_root, pseudonym, &tree.root())
    }

    /// The proof a recipient needs alongside its mailbox download.
    pub fn mailbox_proof(&self, pseudonym: usize) -> Option<InclusionProof> {
        self.cround_tree.prove(pseudonym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_commit_prove() {
        let mut round = MailboxRound::new(4);
        let m1 = b"onion layer a".to_vec();
        let m2 = b"onion layer b".to_vec();
        let s1 = round.deposit(2, m1.clone());
        let s2 = round.deposit(2, m2.clone());
        round.deposit(0, b"x".to_vec());
        let commit = round.commit();
        let root = commit.root();
        let p1 = commit.prove_deposit(&round, 2, s1).unwrap();
        let p2 = commit.prove_deposit(&round, 2, s2).unwrap();
        assert!(RoundCommitment::verify_deposit(&root, &m1, &p1));
        assert!(RoundCommitment::verify_deposit(&root, &m2, &p2));
        // Cross-verification fails.
        assert!(!RoundCommitment::verify_deposit(&root, &m2, &p1));
    }

    #[test]
    fn recipient_detects_dropped_message() {
        let mut round = MailboxRound::new(2);
        round.deposit(1, b"msg-a".to_vec());
        round.deposit(1, b"msg-b".to_vec());
        let commit = round.commit();
        let root = commit.root();
        let proof = commit.mailbox_proof(1).unwrap();
        // Full mailbox verifies.
        assert!(RoundCommitment::verify_mailbox(
            &root,
            1,
            round.fetch(1),
            &proof
        ));
        // A mailbox with one message silently removed does not.
        let tampered = vec![b"msg-a".to_vec()];
        assert!(!RoundCommitment::verify_mailbox(
            &root, 1, &tampered, &proof
        ));
    }

    #[test]
    fn empty_mailboxes_commit() {
        let round = MailboxRound::new(3);
        assert!(round.is_empty());
        let commit = round.commit();
        let proof = commit.mailbox_proof(0).unwrap();
        assert!(RoundCommitment::verify_mailbox(
            &commit.root(),
            0,
            &[],
            &proof
        ));
    }

    #[test]
    fn out_of_range_proofs() {
        let mut round = MailboxRound::new(2);
        round.deposit(0, b"m".to_vec());
        let commit = round.commit();
        assert!(commit.prove_deposit(&round, 0, 1).is_none());
        assert!(commit.prove_deposit(&round, 5, 0).is_none());
    }

    #[test]
    fn commitment_binds_mailbox_assignment() {
        // A message deposited only for pseudonym 0 cannot be proven for 1.
        let mut round = MailboxRound::new(2);
        let m = b"m".to_vec();
        round.deposit(0, m.clone());
        round.deposit(1, b"other".to_vec());
        let commit = round.commit();
        let root = commit.root();
        let p0 = commit.prove_deposit(&round, 0, 0).unwrap();
        assert!(RoundCommitment::verify_deposit(&root, &m, &p0));
        let mut forged = p0.clone();
        forged.pseudonym = 1;
        assert!(!RoundCommitment::verify_deposit(&root, &m, &forged));
    }
}
