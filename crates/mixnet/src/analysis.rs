//! The Figure 5 privacy and reliability curves (§6.3).
//!
//! Closed-form models, stated in the paper's own terms, plus Monte-Carlo
//! validation against the forwarding simulator:
//!
//! * **Anonymity-set size** (Fig 5a): each *honest* forwarder multiplies
//!   the candidate-sender set by `r/f` (the uploaded message could have
//!   been any the forwarder downloaded); a colluding forwarder multiplies
//!   by 1. Expectation over the binomially-distributed number of honest
//!   hops gives `(m + (1-m)·r/f)^k`, capped at the population size.
//! * **Identification probability** (Fig 5b): the sender is exposed when
//!   some replica's path is *entirely* malicious: `1 − (1 − m^k)^r`.
//! * **Goodput** (Fig 5c): a replica survives when its source and all `k`
//!   hops stay up: `(1−φ)^k`; a message is lost only when all `r` replicas
//!   die: goodput `= 1 − (1 − (1−φ)^k)^r`.
//! * **Duration** (Fig 5d): telescoping `k² + 2k` C-rounds, forwarding
//!   `2k + 2` (query + response) — both *measured* by the simulator in
//!   [`crate::circuit`]/[`crate::forward`], not just asserted.

use mycelium_math::rng::Rng;

/// Parameters of the analytic model.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisParams {
    /// Population size `N`.
    pub n: f64,
    /// Replicas `r`.
    pub r: usize,
    /// Hops `k`.
    pub k: usize,
    /// Forwarder fraction `f`.
    pub f: f64,
    /// Fraction of malicious devices.
    pub malice: f64,
}

/// Expected anonymity-set size (Figure 5a).
pub fn anonymity_set_size(p: &AnalysisParams) -> f64 {
    let per_hop = p.r as f64 / p.f;
    let grown = (p.malice + (1.0 - p.malice) * per_hop).powi(p.k as i32);
    grown.min(p.n)
}

/// Probability that the adversary identifies the sender of a given message
/// (Figure 5b): at least one replica path is entirely malicious.
pub fn identification_probability(p: &AnalysisParams) -> f64 {
    let full_path = p.malice.powi(p.k as i32);
    1.0 - (1.0 - full_path).powf(p.r as f64)
}

/// Probability a message reaches its destination (Figure 5c) when each
/// device independently fails (malice + churn) with probability `fail`.
pub fn goodput(k: usize, r: usize, fail: f64) -> f64 {
    let path_ok = (1.0 - fail).powi(k as i32);
    1.0 - (1.0 - path_ok).powf(r as f64)
}

/// Monte-Carlo estimate of goodput: sample `trials` messages, each with
/// `r` independent `k`-hop paths whose hops fail i.i.d. with probability
/// `fail`.
pub fn goodput_monte_carlo<R: Rng + ?Sized>(
    k: usize,
    r: usize,
    fail: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut ok = 0usize;
    for _ in 0..trials {
        let delivered = (0..r).any(|_| (0..k).all(|_| rng.gen::<f64>() >= fail));
        ok += delivered as usize;
    }
    ok as f64 / trials as f64
}

/// Monte-Carlo estimate of the identification probability.
pub fn identification_monte_carlo<R: Rng + ?Sized>(
    k: usize,
    r: usize,
    malice: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut exposed = 0usize;
    for _ in 0..trials {
        let hit = (0..r).any(|_| (0..k).all(|_| rng.gen::<f64>() < malice));
        exposed += hit as usize;
    }
    exposed as f64 / trials as f64
}

/// The full Figure 5(a) series: anonymity-set size for `k = 1..=k_max` and
/// each `r`.
pub fn figure5a(n: f64, f: f64, malice: f64, k_max: usize, rs: &[usize]) -> Vec<(usize, Vec<f64>)> {
    rs.iter()
        .map(|&r| {
            let series = (1..=k_max)
                .map(|k| anonymity_set_size(&AnalysisParams { n, r, k, f, malice }))
                .collect();
            (r, series)
        })
        .collect()
}

/// The full Figure 5(b) series: identification probability vs malice rate
/// for each `k`.
pub fn figure5b(r: usize, malices: &[f64], ks: &[usize]) -> Vec<(usize, Vec<f64>)> {
    ks.iter()
        .map(|&k| {
            let series = malices
                .iter()
                .map(|&m| {
                    identification_probability(&AnalysisParams {
                        n: f64::INFINITY,
                        r,
                        k,
                        f: 0.1,
                        malice: m,
                    })
                })
                .collect();
            (k, series)
        })
        .collect()
}

/// The full Figure 5(c) series: goodput vs failure rate for each `r`.
pub fn figure5c(k: usize, fails: &[f64], rs: &[usize]) -> Vec<(usize, Vec<f64>)> {
    rs.iter()
        .map(|&r| (r, fails.iter().map(|&f| goodput(k, r, f)).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::{SeedableRng, StdRng};

    #[test]
    fn paper_headline_anonymity_number() {
        // §6.3: r = 2, k = 3, f = 0.1, malice 0.02 → anonymity set > 7000.
        let p = AnalysisParams {
            n: 1.1e6,
            r: 2,
            k: 3,
            f: 0.1,
            malice: 0.02,
        };
        let s = anonymity_set_size(&p);
        assert!(s > 7000.0, "anonymity set {s}");
        assert!(s < 10_000.0, "anonymity set {s} (order of magnitude)");
    }

    #[test]
    fn paper_headline_identification_number() {
        // §6.3: k = 3, malice 0.02 → p ≈ 1e-5 per query.
        let p = AnalysisParams {
            n: 1.1e6,
            r: 2,
            k: 3,
            f: 0.1,
            malice: 0.02,
        };
        let prob = identification_probability(&p);
        assert!(prob > 1e-6 && prob < 1e-4, "p = {prob}");
    }

    #[test]
    fn paper_headline_goodput_number() {
        // §6.3: r = 2, 4% failures, k = 3 → about one in 100 messages lost.
        let g = goodput(3, 2, 0.04);
        let lost = 1.0 - g;
        assert!(lost > 0.005 && lost < 0.02, "loss {lost}");
    }

    #[test]
    fn anonymity_grows_with_r_and_k() {
        let base = AnalysisParams {
            n: 1e9,
            r: 1,
            k: 2,
            f: 0.1,
            malice: 0.02,
        };
        let s1 = anonymity_set_size(&base);
        let s2 = anonymity_set_size(&AnalysisParams { r: 2, ..base });
        let s3 = anonymity_set_size(&AnalysisParams { k: 3, ..base });
        assert!(s2 > s1);
        assert!(s3 > s1);
        // And is capped by the population.
        let tiny = anonymity_set_size(&AnalysisParams { n: 50.0, ..base });
        assert_eq!(tiny, 50.0);
    }

    #[test]
    fn identification_shrinks_with_k_grows_with_r_m() {
        let p = |k, r, m| {
            identification_probability(&AnalysisParams {
                n: 1e6,
                r,
                k,
                f: 0.1,
                malice: m,
            })
        };
        assert!(p(4, 3, 0.02) < p(3, 3, 0.02));
        assert!(p(3, 3, 0.04) > p(3, 3, 0.02));
        assert!(p(3, 3, 0.02) > p(3, 2, 0.02));
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(81);
        for &(k, r, fail) in &[(3usize, 2usize, 0.05f64), (2, 1, 0.1), (4, 3, 0.03)] {
            let analytic = goodput(k, r, fail);
            let mc = goodput_monte_carlo(k, r, fail, 200_000, &mut rng);
            assert!(
                (analytic - mc).abs() < 0.01,
                "k={k} r={r} fail={fail}: {analytic} vs {mc}"
            );
        }
        // Identification at an exaggerated malice rate (so MC has signal).
        let analytic = identification_probability(&AnalysisParams {
            n: 1e6,
            r: 2,
            k: 2,
            f: 0.1,
            malice: 0.2,
        });
        let mc = identification_monte_carlo(2, 2, 0.2, 200_000, &mut rng);
        assert!((analytic - mc).abs() < 0.01, "{analytic} vs {mc}");
    }

    #[test]
    fn figure_series_shapes() {
        let fa = figure5a(1.1e6, 0.1, 0.02, 4, &[1, 2, 3]);
        assert_eq!(fa.len(), 3);
        for (_, series) in &fa {
            assert_eq!(series.len(), 4);
            assert!(series.windows(2).all(|w| w[1] >= w[0]), "monotone in k");
        }
        let fb = figure5b(3, &[0.005, 0.01, 0.02, 0.04], &[2, 3, 4]);
        for (_, series) in &fb {
            assert!(
                series.windows(2).all(|w| w[1] >= w[0]),
                "monotone in malice"
            );
        }
        let fc = figure5c(3, &[0.01, 0.02, 0.04, 0.08], &[1, 2, 3]);
        for (_, series) in &fc {
            assert!(
                series.windows(2).all(|w| w[1] <= w[0]),
                "drops with failures"
            );
        }
        // More replicas → better goodput at every failure rate.
        for i in 0..fc[0].1.len() {
            assert!(fc[2].1[i] >= fc[0].1[i]);
        }
    }
}
