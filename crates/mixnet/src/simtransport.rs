//! Circuit setup and onion forwarding as message-passing actors on the
//! deterministic simnet.
//!
//! The [`circuit`](crate::circuit) module executes telescoping as direct
//! state manipulation and *counts* C-rounds; this module executes the
//! same two phases — telescoping circuit setup (§3.4) and onion
//! forwarding (§3.5) — as individual messages over a lossy network:
//!
//! * **Setup.** Each source extends its circuits hop by hop. An `Extend`
//!   for hop `i` is relayed through the already-built prefix; the hop
//!   before the new one learns its `next` pointer as the message passes
//!   through, the new hop installs its route entry, and the final hop
//!   answers with `Extended`. A lost extend (or lost ack) is recovered by
//!   the source's timeout + bounded-exponential-backoff retry; installs
//!   are idempotent, so retransmissions are harmless. Extensions of one
//!   circuit are strictly serialized (hop `i+1` only after hop `i` is
//!   acked), matching the telescoping schedule.
//! * **Forwarding.** Sources build real onions ([`build_onion`]) and send
//!   them down their circuits; each hop peels its layer
//!   ([`peel_layer`]) and forwards by its routing table; the destination
//!   opens the authenticated inner layer ([`open_inner`]) and acks the
//!   source directly (a simulation shortcut — the reverse path is not
//!   what these tests exercise). Retries are end-to-end: a drop at *any*
//!   hop triggers the source's per-message timer. Each message rides `r`
//!   replica circuits; it fails only when every replica exhausts its
//!   retry budget (e.g. a crashed relay).
//!
//! A `Done` tally per source flows to a collector actor which halts the
//! simulation, so a run converges even when some messages are
//! undeliverable.

use std::collections::HashMap;

use mycelium_crypto::penc::{KeyPair, PublicKey};
use mycelium_math::rng::{Rng, SeedableRng, StdRng};
use mycelium_simnet::{
    ActorId, Ctx, FaultPlan, LinkModel, Payload, Process, Retrier, RetryStatus, RoundMetrics,
    Simulation, Tick,
};

use crate::circuit::{NextHop, RouteEntry};
use crate::onion::{build_onion, onion_len, open_inner, peel_layer, select_hop, PathId};

const EXT_STRIDE: u64 = 16;
const FWD_BASE: u64 = 1 << 30;
const DONE_ID: u64 = 1 << 40;

/// Configuration of a simulated mixnet run.
#[derive(Debug, Clone)]
pub struct MixSimConfig {
    /// Devices (each may be source, relay, and destination).
    pub n: usize,
    /// Onion-routing hops `k` (≤ 15).
    pub hops: usize,
    /// Replica circuits per message `r`.
    pub replicas: usize,
    /// Forwarder fraction `f`.
    pub forwarder_fraction: f64,
    /// How many devices act as sources (the first `sources` ids).
    pub sources: usize,
    /// Messages (distinct targets) per source.
    pub targets_per_source: usize,
    /// Fixed payload length in bytes (≥ 8).
    pub message_len: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Fault schedule.
    pub fault: FaultPlan,
    /// Link latency model.
    pub latency: LinkModel,
    /// Retrier base timeout (ticks).
    pub base_timeout: Tick,
    /// Retransmission budget per message.
    pub max_retries: u32,
    /// Virtual-time budget.
    pub max_ticks: Tick,
}

impl Default for MixSimConfig {
    fn default() -> Self {
        Self {
            n: 60,
            hops: 2,
            replicas: 2,
            forwarder_fraction: 0.3,
            sources: 8,
            targets_per_source: 4,
            message_len: 64,
            seed: 0,
            fault: FaultPlan::none(),
            latency: LinkModel::default(),
            base_timeout: 64,
            max_retries: 8,
            max_ticks: 10_000_000,
        }
    }
}

/// What a simulated mixnet run measured.
#[derive(Debug)]
pub struct MixSimReport {
    /// Distinct messages the sources attempted (`sources × targets`).
    pub expected: u64,
    /// Messages that reached their destination (deduplicated).
    pub delivered: u64,
    /// Messages whose every replica exhausted its retries.
    pub failed: u64,
    /// Whether the collector saw every source finish in time.
    pub converged: bool,
    /// Virtual time of the run.
    pub elapsed: Tick,
    /// Network metrics.
    pub metrics: RoundMetrics,
}

/// Wire messages.
#[derive(Clone)]
enum MixMsg {
    /// Source → (prefix hops) → new hop: install a route entry.
    Extend {
        msg_id: u64,
        src: ActorId,
        /// Hops still to visit; the last one is the hop being installed.
        route: Vec<ActorId>,
        /// The previous hop's route-entry path (it learns `next` as the
        /// message passes through).
        prev_path: Option<PathId>,
        install_path: PathId,
        key: [u8; 32],
        level: usize,
        out_path: PathId,
        deliver_to: Option<ActorId>,
    },
    /// New hop → source: extension complete.
    Extended { msg_id: u64 },
    /// An onion in flight, addressed by path id.
    Forward { path: PathId, blob: Vec<u8> },
    /// Final hop → destination: the peeled (inner-layer) blob.
    Deliver { blob: Vec<u8> },
    /// Destination → source: message `mid` arrived intact.
    DeliverAck { mid: u32 },
    /// Source → collector: finished, with local tallies.
    Done {
        msg_id: u64,
        delivered: u64,
        failed: u64,
    },
}

impl Payload for MixMsg {
    fn wire_bytes(&self) -> usize {
        const HDR: usize = 16;
        match self {
            MixMsg::Extend { route, .. } => HDR + 16 * 3 + 32 + 8 + route.len() * 4,
            MixMsg::Forward { blob, .. } => HDR + 16 + blob.len(),
            MixMsg::Deliver { blob } => HDR + blob.len(),
            MixMsg::Extended { .. } | MixMsg::DeliverAck { .. } | MixMsg::Done { .. } => HDR,
        }
    }
}

/// One planned circuit (everything chosen at setup, so retransmitted
/// installs are idempotent).
#[derive(Clone)]
struct SimCircuit {
    target: ActorId,
    hops: Vec<ActorId>,
    keys: Vec<[u8; 32]>,
    path_ids: Vec<PathId>,
}

#[derive(Clone, Copy, PartialEq)]
enum MidState {
    Pending,
    Delivered,
    Failed,
}

struct MixActor {
    id: ActorId,
    collector: ActorId,
    keypair: KeyPair,
    dst_keys: Vec<PublicKey>,
    routes: HashMap<PathId, RouteEntry>,
    // Source state.
    circuits: Vec<SimCircuit>,
    replicas: usize,
    hops_k: usize,
    message_len: usize,
    ext_next: Vec<usize>,
    circuit_dead: Vec<bool>,
    setup_resolved: usize,
    forwarding: bool,
    mids: Vec<MidState>,
    failed_attempts: Vec<usize>,
    done_reported: bool,
    retrier: Retrier<MixMsg>,
    // Destination state.
    seen: std::collections::BTreeSet<(u32, u32)>,
}

impl MixActor {
    fn start_ext(&mut self, ctx: &mut Ctx<MixMsg>, c: usize, i: usize) {
        let circ = &self.circuits[c];
        let msg = MixMsg::Extend {
            msg_id: c as u64 * EXT_STRIDE + i as u64,
            src: self.id,
            route: circ.hops[..=i].to_vec(),
            prev_path: (i > 0).then(|| circ.path_ids[i - 1]),
            install_path: circ.path_ids[i],
            key: circ.keys[i],
            level: i,
            out_path: if i + 1 < self.hops_k {
                circ.path_ids[i + 1]
            } else {
                PathId([0u8; 16])
            },
            deliver_to: (i + 1 == self.hops_k).then_some(circ.target),
        };
        let first = circ.hops[0];
        self.retrier
            .send(ctx, c as u64 * EXT_STRIDE + i as u64, first, msg);
    }

    fn circuit_resolved(&mut self, ctx: &mut Ctx<MixMsg>) {
        self.setup_resolved += 1;
        if self.setup_resolved == self.circuits.len() {
            self.start_forwarding(ctx);
        }
    }

    fn start_forwarding(&mut self, ctx: &mut Ctx<MixMsg>) {
        self.forwarding = true;
        for c in 0..self.circuits.len() {
            let mid = c / self.replicas;
            if self.circuit_dead[c] {
                self.failed_attempts[mid] += 1;
                continue;
            }
            let circ = self.circuits[c].clone();
            // Frame: source id ‖ message id, zero-padded to the fixed
            // length (all onions are the same size on the wire).
            let mut payload = vec![0u8; self.message_len];
            payload[..4].copy_from_slice(&(self.id as u32).to_le_bytes());
            payload[4..8].copy_from_slice(&(mid as u32).to_le_bytes());
            let blob = build_onion(
                &circ.keys,
                &self.dst_keys[circ.target],
                0,
                &payload,
                ctx.rng(),
            );
            debug_assert_eq!(blob.len(), onion_len(self.message_len));
            self.retrier.send(
                ctx,
                FWD_BASE + c as u64,
                circ.hops[0],
                MixMsg::Forward {
                    path: circ.path_ids[0],
                    blob,
                },
            );
        }
        self.check_all_mids(ctx);
    }

    fn check_all_mids(&mut self, ctx: &mut Ctx<MixMsg>) {
        for mid in 0..self.mids.len() {
            if self.mids[mid] == MidState::Pending && self.failed_attempts[mid] == self.replicas {
                self.mids[mid] = MidState::Failed;
            }
        }
        if !self.done_reported && self.mids.iter().all(|m| *m != MidState::Pending) {
            self.done_reported = true;
            ctx.phase_done("source_done");
            let delivered = self
                .mids
                .iter()
                .filter(|m| **m == MidState::Delivered)
                .count() as u64;
            let failed = self.mids.iter().filter(|m| **m == MidState::Failed).count() as u64;
            let collector = self.collector;
            self.retrier.send(
                ctx,
                DONE_ID,
                collector,
                MixMsg::Done {
                    msg_id: DONE_ID,
                    delivered,
                    failed,
                },
            );
        }
    }
}

impl Process<MixMsg> for MixActor {
    fn on_start(&mut self, ctx: &mut Ctx<MixMsg>) {
        if self.circuits.is_empty() {
            // Pure relay/destination; nothing to report.
            return;
        }
        for c in 0..self.circuits.len() {
            self.start_ext(ctx, c, 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<MixMsg>, from: ActorId, msg: MixMsg) {
        match msg {
            MixMsg::Extend {
                msg_id,
                src,
                mut route,
                prev_path,
                install_path,
                key,
                level,
                out_path,
                deliver_to,
            } => {
                debug_assert_eq!(route.first(), Some(&self.id));
                route.remove(0);
                if route.is_empty() {
                    // I am the new hop: install (idempotently) and ack.
                    self.routes.entry(install_path).or_insert(RouteEntry {
                        key,
                        next: match deliver_to {
                            Some(dst) => NextHop::Deliver(dst),
                            None => NextHop::Pending,
                        },
                        out_path,
                        level,
                    });
                    ctx.send(src, MixMsg::Extended { msg_id });
                    return;
                }
                if route.len() == 1 {
                    // The next stop is the new hop: I am its predecessor
                    // and now know where this path forwards.
                    if let Some(p) = prev_path {
                        if let Some(e) = self.routes.get_mut(&p) {
                            e.next = NextHop::Forward(route[0]);
                        }
                    }
                }
                let next = route[0];
                ctx.send(
                    next,
                    MixMsg::Extend {
                        msg_id,
                        src,
                        route,
                        prev_path,
                        install_path,
                        key,
                        level,
                        out_path,
                        deliver_to,
                    },
                );
            }
            MixMsg::Extended { msg_id } => {
                if !self.retrier.ack(msg_id) {
                    return; // Duplicate of an already-acked extension.
                }
                let c = (msg_id / EXT_STRIDE) as usize;
                let i = (msg_id % EXT_STRIDE) as usize;
                self.ext_next[c] = i + 1;
                if i + 1 < self.hops_k {
                    self.start_ext(ctx, c, i + 1);
                } else {
                    ctx.phase_done("extend");
                    self.circuit_resolved(ctx);
                }
            }
            MixMsg::Forward { path, blob } => {
                let _ = from;
                let Some(entry) = self.routes.get(&path) else {
                    return; // Unknown path (circuit never finished): drop.
                };
                let peeled = peel_layer(&entry.key, 0, entry.level, &blob);
                match entry.next {
                    NextHop::Forward(next) => {
                        let out = entry.out_path;
                        ctx.send(
                            next,
                            MixMsg::Forward {
                                path: out,
                                blob: peeled,
                            },
                        );
                    }
                    NextHop::Deliver(dst) => ctx.send(dst, MixMsg::Deliver { blob: peeled }),
                    NextHop::Pending => {}
                }
            }
            MixMsg::Deliver { blob } => {
                // Only an intact, correctly-routed onion passes the inner
                // authenticated layer; dummies and mis-peeled blobs fail.
                let Ok(payload) = open_inner(&self.keypair, &blob) else {
                    return;
                };
                if payload.len() < 8 {
                    return;
                }
                let src = u32::from_le_bytes(payload[..4].try_into().unwrap());
                let mid = u32::from_le_bytes(payload[4..8].try_into().unwrap());
                ctx.send(src as ActorId, MixMsg::DeliverAck { mid });
                if self.seen.insert((src, mid)) {
                    ctx.phase_done("deliver");
                }
            }
            MixMsg::DeliverAck { mid } => {
                let mid = mid as usize;
                for c in mid * self.replicas..(mid + 1) * self.replicas {
                    self.retrier.ack(FWD_BASE + c as u64);
                }
                if self.mids[mid] == MidState::Pending {
                    self.mids[mid] = MidState::Delivered;
                    self.check_all_mids(ctx);
                }
            }
            MixMsg::Done { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<MixMsg>, key: u64) {
        if let RetryStatus::Exhausted { id } = self.retrier.on_timer(ctx, key) {
            if id < FWD_BASE {
                // An extension died (crashed relay): the circuit is lost.
                let c = (id / EXT_STRIDE) as usize;
                if !self.circuit_dead[c] {
                    self.circuit_dead[c] = true;
                    self.circuit_resolved(ctx);
                }
            } else if id < DONE_ID {
                let c = (id - FWD_BASE) as usize;
                let mid = c / self.replicas;
                self.failed_attempts[mid] += 1;
                self.check_all_mids(ctx);
            }
        }
    }
}

#[derive(Default)]
struct Tally {
    sources_done: usize,
    delivered: u64,
    failed: u64,
}

struct CollectorActor {
    expected_sources: usize,
    seen: Vec<bool>,
    tally: std::rc::Rc<std::cell::RefCell<Tally>>,
}

impl Process<MixMsg> for CollectorActor {
    fn on_message(&mut self, ctx: &mut Ctx<MixMsg>, from: ActorId, msg: MixMsg) {
        if let MixMsg::Done {
            msg_id,
            delivered,
            failed,
        } = msg
        {
            ctx.send(from, MixMsg::DeliverAck { mid: msg_id as u32 });
            if self.seen[from] {
                return;
            }
            self.seen[from] = true;
            let mut t = self.tally.borrow_mut();
            t.sources_done += 1;
            t.delivered += delivered;
            t.failed += failed;
            if t.sources_done == self.expected_sources {
                drop(t);
                ctx.halt();
            }
        }
    }
}

/// Runs circuit setup + onion forwarding over the simnet under the given
/// fault plan. Reproducible from `cfg.seed`: same config ⇒ bit-identical
/// report and metrics.
pub fn run_mixnet_simulated(cfg: &MixSimConfig) -> MixSimReport {
    assert!(cfg.message_len >= 8, "frame needs src + mid");
    assert!(cfg.hops >= 1 && cfg.hops < EXT_STRIDE as usize);
    assert!(cfg.sources <= cfg.n);
    let mut setup_rng = StdRng::seed_from_u64(cfg.seed).with_stream(u64::MAX);
    let keypairs: Vec<KeyPair> = (0..cfg.n)
        .map(|_| KeyPair::generate(&mut setup_rng))
        .collect();
    let dst_keys: Vec<PublicKey> = keypairs.iter().map(|k| k.public()).collect();
    let mut beacon = vec![0u8; 32];
    setup_rng.fill(&mut beacon[..]);

    // Plan every circuit up front (hops, keys, path ids) so that installs
    // are idempotent under retransmission.
    let mut plans: Vec<Vec<SimCircuit>> = vec![Vec::new(); cfg.n];
    for (src, plan) in plans.iter_mut().enumerate().take(cfg.sources) {
        for j in 0..cfg.targets_per_source {
            let target = (src + 1 + j * 7) % cfg.n;
            for _ in 0..cfg.replicas {
                let hops: Vec<ActorId> = (1..=cfg.hops)
                    .map(|i| {
                        select_hop(
                            i,
                            cfg.hops,
                            cfg.forwarder_fraction,
                            cfg.n as u64,
                            &beacon,
                            &mut setup_rng,
                        ) as ActorId
                    })
                    .collect();
                let keys: Vec<[u8; 32]> = (0..cfg.hops)
                    .map(|_| {
                        let mut k = [0u8; 32];
                        setup_rng.fill(&mut k);
                        k
                    })
                    .collect();
                let path_ids: Vec<PathId> = (0..cfg.hops)
                    .map(|_| PathId::random(&mut setup_rng))
                    .collect();
                plan.push(SimCircuit {
                    target,
                    hops,
                    keys,
                    path_ids,
                });
            }
        }
    }

    let tally = std::rc::Rc::new(std::cell::RefCell::new(Tally::default()));
    let mut sim: Simulation<MixMsg> = Simulation::new(cfg.seed)
        .with_latency(cfg.latency)
        .with_fault_plan(cfg.fault.clone());
    let active_sources = plans.iter().filter(|p| !p.is_empty()).count();
    for (id, circuits) in plans.into_iter().enumerate() {
        let n_circ = circuits.len();
        let n_mids = n_circ / cfg.replicas;
        sim.add_actor(Box::new(MixActor {
            id,
            collector: cfg.n,
            keypair: keypairs[id].clone(),
            dst_keys: dst_keys.clone(),
            routes: HashMap::new(),
            circuits,
            replicas: cfg.replicas,
            hops_k: cfg.hops,
            message_len: cfg.message_len,
            ext_next: vec![0; n_circ],
            circuit_dead: vec![false; n_circ],
            setup_resolved: 0,
            forwarding: false,
            mids: vec![MidState::Pending; n_mids],
            failed_attempts: vec![0; n_mids],
            done_reported: false,
            retrier: Retrier::new(cfg.base_timeout, cfg.max_retries),
            seen: Default::default(),
        }));
    }
    sim.add_actor(Box::new(CollectorActor {
        expected_sources: active_sources,
        seen: vec![false; cfg.n],
        tally: std::rc::Rc::clone(&tally),
    }));

    let report = sim.run(cfg.max_ticks);
    let t = tally.borrow();
    MixSimReport {
        expected: (cfg.sources * cfg.targets_per_source) as u64,
        delivered: t.delivered,
        failed: t.failed,
        converged: report.converged && t.sources_done == active_sources,
        elapsed: report.elapsed,
        metrics: sim.metrics.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(seed: u64, drop: f64) -> MixSimConfig {
        MixSimConfig {
            seed,
            fault: FaultPlan::none().with_drop_prob(drop),
            ..MixSimConfig::default()
        }
    }

    #[test]
    fn lossless_network_delivers_everything() {
        let r = run_mixnet_simulated(&base_cfg(7, 0.0));
        assert!(r.converged);
        assert_eq!(r.delivered, r.expected);
        assert_eq!(r.failed, 0);
        assert_eq!(r.metrics.total_retries(), 0);
    }

    #[test]
    fn five_percent_drop_recovered_by_retries() {
        let r = run_mixnet_simulated(&base_cfg(8, 0.05));
        assert!(r.converged);
        assert_eq!(r.delivered, r.expected, "retries recover every message");
        assert_eq!(r.failed, 0);
        assert!(r.metrics.total_retries() > 0, "some retries must fire");
    }

    #[test]
    fn crashed_relay_fails_only_its_circuits() {
        // Crash one forwarder at tick 0; replicas through other relays
        // still deliver, and the run converges with a typed tally rather
        // than hanging.
        let mut cfg = base_cfg(9, 0.0);
        let victim = {
            // Find a hop used by some circuit: re-derive the plan's first
            // hop deterministically by running a lossless sim and picking
            // any relay — simplest robust choice: crash a forwarder-class
            // device found via the beacon is overkill here, so crash a
            // middle device and only assert convergence + no lost-forever
            // messages beyond the failed count.
            cfg.n / 2
        };
        cfg.fault = FaultPlan::none().with_crash(victim, 0);
        cfg.max_retries = 4;
        let r = run_mixnet_simulated(&cfg);
        assert!(r.converged, "collector still halts the run");
        assert_eq!(r.delivered + r.failed, r.expected, "every mid resolves");
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = run_mixnet_simulated(&base_cfg(42, 0.03));
        let b = run_mixnet_simulated(&base_cfg(42, 0.03));
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.metrics.to_json(0), b.metrics.to_json(0));
    }
}
