//! The collectively-chosen random beacon (§3.4).
//!
//! Hop selection hashes candidate indices with a random bitstring `B`
//! "chosen collectively as, e.g., in Honeycrisp". This module implements
//! the standard commit-then-reveal coin flip over the bulletin board:
//!
//! 1. each participating device posts `H(device ‖ contribution ‖ salt)`,
//! 2. after all commitments are on the board, devices reveal
//!    `(contribution, salt)`,
//! 3. the beacon is the hash of all *verified* contributions.
//!
//! As long as one contributor is honest, the output is unpredictable to
//! everyone — including the aggregator — *before* the commitment phase
//! closes, which is exactly when `M1`'s pseudonym positions are already
//! fixed.

use mycelium_crypto::sha256::{sha256_concat, Digest};

/// One device's commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeaconCommitment {
    /// Committing device.
    pub device: u64,
    /// `H(device ‖ contribution ‖ salt)`.
    pub digest: Digest,
}

/// One device's reveal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeaconReveal {
    /// Revealing device.
    pub device: u64,
    /// The random contribution.
    pub contribution: [u8; 32],
    /// The commitment salt.
    pub salt: [u8; 32],
}

/// Commit-reveal beacon failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeaconError {
    /// A reveal does not match its commitment (equivocation attempt).
    BadReveal {
        /// Offending device.
        device: u64,
    },
    /// A reveal arrived with no matching commitment.
    Uncommitted {
        /// Offending device.
        device: u64,
    },
    /// No valid contributions at all.
    Empty,
}

impl std::fmt::Display for BeaconError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeaconError::BadReveal { device } => {
                write!(f, "device {device}'s reveal contradicts its commitment")
            }
            BeaconError::Uncommitted { device } => {
                write!(f, "device {device} revealed without committing")
            }
            BeaconError::Empty => write!(f, "no valid beacon contributions"),
        }
    }
}

impl std::error::Error for BeaconError {}

/// Computes a device's commitment digest.
pub fn commit(device: u64, contribution: &[u8; 32], salt: &[u8; 32]) -> BeaconCommitment {
    BeaconCommitment {
        device,
        digest: sha256_concat(&[b"beacon-commit", &device.to_le_bytes(), contribution, salt]),
    }
}

/// Combines verified reveals into the beacon.
///
/// Devices that committed but never revealed are simply *excluded* (a
/// withholding attacker can bias at most one bit of its own choice by
/// aborting, the standard commit-reveal caveat; Honeycrisp's full
/// construction closes this too — noted in DESIGN.md). Reveals that
/// contradict their commitments are an error identifying the equivocator.
pub fn combine(
    commitments: &[BeaconCommitment],
    reveals: &[BeaconReveal],
) -> Result<Vec<u8>, BeaconError> {
    let mut contributions: Vec<(u64, [u8; 32])> = Vec::new();
    for r in reveals {
        let c = commitments
            .iter()
            .find(|c| c.device == r.device)
            .ok_or(BeaconError::Uncommitted { device: r.device })?;
        let expect = commit(r.device, &r.contribution, &r.salt);
        if expect.digest != c.digest {
            return Err(BeaconError::BadReveal { device: r.device });
        }
        contributions.push((r.device, r.contribution));
    }
    if contributions.is_empty() {
        return Err(BeaconError::Empty);
    }
    contributions.sort_by_key(|(d, _)| *d);
    let mut parts: Vec<&[u8]> = vec![b"beacon-output"];
    for (_, c) in &contributions {
        parts.push(c);
    }
    Ok(sha256_concat(&parts).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reveal(device: u64, byte: u8) -> (BeaconCommitment, BeaconReveal) {
        let contribution = [byte; 32];
        let salt = [byte ^ 0xFF; 32];
        (
            commit(device, &contribution, &salt),
            BeaconReveal {
                device,
                contribution,
                salt,
            },
        )
    }

    #[test]
    fn honest_flow_produces_stable_beacon() {
        let (c1, r1) = reveal(1, 0xAA);
        let (c2, r2) = reveal(2, 0xBB);
        let b1 = combine(&[c1.clone(), c2.clone()], &[r1.clone(), r2.clone()]).unwrap();
        // Order of reveals does not matter (sorted by device).
        let b2 = combine(&[c2, c1], &[r2, r1]).unwrap();
        assert_eq!(b1, b2);
        assert_eq!(b1.len(), 32);
    }

    #[test]
    fn one_honest_contributor_changes_everything() {
        let (c1, r1) = reveal(1, 0xAA);
        let (c2, r2) = reveal(2, 0xBB);
        let (c2b, r2b) = reveal(2, 0xBC);
        let a = combine(&[c1.clone(), c2], &[r1.clone(), r2]).unwrap();
        let b = combine(&[c1, c2b], &[r1, r2b]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn equivocation_detected() {
        let (c1, mut r1) = reveal(1, 0x11);
        r1.contribution[0] ^= 1;
        assert_eq!(
            combine(&[c1], &[r1]),
            Err(BeaconError::BadReveal { device: 1 })
        );
    }

    #[test]
    fn uncommitted_reveal_rejected() {
        let (_, r1) = reveal(1, 0x11);
        assert_eq!(
            combine(&[], &[r1]),
            Err(BeaconError::Uncommitted { device: 1 })
        );
    }

    #[test]
    fn withholding_devices_are_excluded() {
        let (c1, r1) = reveal(1, 0x11);
        let (c2, _) = reveal(2, 0x22); // Commits, never reveals.
        let b = combine(&[c1.clone(), c2], std::slice::from_ref(&r1)).unwrap();
        assert_eq!(b, combine(&[c1], &[r1]).unwrap());
    }

    #[test]
    fn empty_reveals_error() {
        assert_eq!(combine(&[], &[]), Err(BeaconError::Empty));
    }
}
