//! Message forwarding over established circuits (§3.5).
//!
//! One communication round of the vertex program costs `k + 1` C-rounds:
//! sources deposit onion-encrypted messages into their first hops'
//! mailboxes; in each subsequent C-round, every hop downloads its mailbox,
//! verifies the aggregator's commitment, peels one layer, mixes, and
//! re-deposits under the next path id. A hop that is missing an expected
//! message (sender offline, upstream hop failed, or the message was
//! maliciously dropped) uploads a **dummy** — uniformly random bytes of the
//! same length — so the aggregator-visible communication pattern never
//! changes. Destinations detect dummies (and any corruption) via the
//! authenticated inner layer.

use std::collections::HashMap;

use mycelium_math::rng::Rng;

use crate::bulletin::Entry;
use crate::circuit::{Network, NextHop};
use crate::mailbox::{MailboxRound, RoundCommitment};
use crate::onion::{build_onion, open_inner, peel_layer, random_dummy, PathId};

/// A message to send in this vertex-program round.
#[derive(Debug, Clone)]
pub struct OutgoingMessage {
    /// Sending device (pseudonym number).
    pub src: usize,
    /// Target pseudonym number (must have circuits established).
    pub target: usize,
    /// Message id (embedded, used for replica deduplication).
    pub id: u64,
    /// Payload bytes (padded to the configured message length).
    pub payload: Vec<u8>,
}

/// The outcome of one forwarding round.
#[derive(Debug, Clone)]
pub struct DeliveryReport {
    /// `delivered[id]` = number of replica copies that arrived intact.
    pub delivered: HashMap<u64, usize>,
    /// Messages attempted.
    pub attempted: usize,
    /// Dummies injected by hops to mask missing messages.
    pub dummies_injected: usize,
    /// Dummy/garbage blobs destinations rejected via the inner MAC.
    pub rejected_at_destination: usize,
    /// C-rounds consumed (`k + 1`).
    pub crounds: u64,
}

impl DeliveryReport {
    /// Fraction of distinct messages that arrived at least once — the
    /// "goodput" of Figure 5(c).
    pub fn goodput(&self) -> f64 {
        if self.attempted == 0 {
            return 1.0;
        }
        let ok = self.delivered.values().filter(|&&c| c > 0).count();
        ok as f64 / self.attempted as f64
    }
}

/// An in-flight blob between hops.
#[derive(Debug, Clone)]
struct InFlight {
    path: PathId,
    blob: Vec<u8>,
}

fn encode(msg: &InFlight) -> Vec<u8> {
    let mut v = Vec::with_capacity(16 + msg.blob.len());
    v.extend_from_slice(&msg.path.0);
    v.extend_from_slice(&msg.blob);
    v
}

impl Network {
    /// Executes one full forwarding round for a batch of messages.
    ///
    /// Each message is sent over all `r` replica circuits its source holds
    /// toward the target. Returns the delivery report; the C-round counter
    /// advances by `k + 1`.
    pub fn forward_messages<R: Rng + ?Sized>(
        &mut self,
        messages: &[OutgoingMessage],
        rng: &mut R,
    ) -> DeliveryReport {
        let k = self.config.hops;
        let base = self.cround;
        let n = self.maps.pseudonym_count();
        let padded_len = self.config.message_len;
        // C-round base+1: sources deposit into first-hop mailboxes.
        let mut current: Vec<Vec<InFlight>> = vec![Vec::new(); n];
        let mut mailboxes = MailboxRound::new(n);
        for m in messages {
            if !self.devices[m.src].online {
                continue;
            }
            let mut payload = Vec::with_capacity(padded_len);
            payload.extend_from_slice(&m.id.to_le_bytes());
            payload.extend_from_slice(&m.payload);
            assert!(
                payload.len() <= padded_len,
                "payload exceeds the configured message length"
            );
            payload.resize(padded_len, 0);
            for c in self.circuits[m.src].iter().filter(|c| c.target == m.target) {
                let onion = build_onion(&c.hop_keys, &c.dst_key, base, &payload, rng);
                let inflight = InFlight {
                    path: c.entry_path,
                    blob: onion,
                };
                mailboxes.deposit(c.hops[0], encode(&inflight));
                current[c.hops[0]].push(inflight);
            }
        }
        let commit = mailboxes.commit();
        self.bulletin.post(Entry::CRoundRoot {
            round: base + 1,
            root: commit.root(),
        });
        let mut dummies_injected = 0usize;
        // C-rounds base+2 .. base+k+1: hops peel, mix, forward.
        for level in 0..k {
            let mut next: Vec<Vec<InFlight>> = vec![Vec::new(); n];
            let mut next_mailboxes = MailboxRound::new(n);
            for (dev_idx, slot) in current.iter_mut().enumerate() {
                // Index incoming messages by path id.
                let incoming: HashMap<PathId, Vec<u8>> =
                    slot.drain(..).map(|m| (m.path, m.blob)).collect();
                let device = &self.devices[dev_idx];
                let online = device.online;
                let drops = device.malicious_drop;
                // Collect this level's routes (sorted for determinism).
                let mut routes: Vec<(PathId, crate::circuit::RouteEntry)> = device
                    .routes
                    .iter()
                    .filter(|(_, e)| e.level == level)
                    .map(|(p, e)| (*p, e.clone()))
                    .collect();
                routes.sort_by_key(|(p, _)| p.0);
                if !online {
                    // An offline hop forwards nothing; downstream hops will
                    // cover with dummies.
                    continue;
                }
                for (in_path, entry) in routes {
                    let out_blob = match incoming.get(&in_path) {
                        Some(blob) if !drops => peel_layer(&entry.key, base, level, blob),
                        _ => {
                            // Missing (or maliciously dropped): substitute
                            // a random dummy of the right size (§3.5).
                            dummies_injected += 1;
                            let expect = crate::onion::onion_len(padded_len);
                            random_dummy(expect, rng)
                        }
                    };
                    match entry.next {
                        NextHop::Forward(next_hop) => {
                            let m = InFlight {
                                path: entry.out_path,
                                blob: out_blob,
                            };
                            next_mailboxes.deposit(next_hop, encode(&m));
                            next[next_hop].push(m);
                        }
                        NextHop::Deliver(dst) => {
                            let m = InFlight {
                                path: entry.out_path,
                                blob: out_blob,
                            };
                            next_mailboxes.deposit(dst, encode(&m));
                            next[dst].push(m);
                        }
                        NextHop::Pending => {}
                    }
                }
            }
            let commit = next_mailboxes.commit();
            self.bulletin.post(Entry::CRoundRoot {
                round: base + 2 + level as u64,
                root: commit.root(),
            });
            let _: &RoundCommitment = &commit;
            current = next;
        }
        // Destinations open their mailboxes.
        let mut delivered: HashMap<u64, usize> = HashMap::new();
        for m in messages {
            delivered.insert(m.id, 0);
        }
        let mut rejected = 0usize;
        for (dst, slot) in current.iter_mut().enumerate() {
            if slot.is_empty() || !self.devices[dst].online {
                continue;
            }
            let keypair = self.devices[dst].keypair.clone();
            for m in slot.drain(..) {
                match open_inner(&keypair, &m.blob) {
                    Ok(payload) if payload.len() >= 8 => {
                        let id =
                            u64::from_le_bytes(payload[..8].try_into().expect("length checked"));
                        if let Some(c) = delivered.get_mut(&id) {
                            *c += 1;
                        } else {
                            rejected += 1;
                        }
                    }
                    _ => rejected += 1,
                }
            }
        }
        self.cround = base + k as u64 + 1;
        DeliveryReport {
            delivered,
            attempted: messages.len(),
            dummies_injected,
            rejected_at_destination: rejected,
            crounds: k as u64 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::MixnetConfig;
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn setup(n: usize, k: usize, r: usize) -> (Network, StdRng) {
        let mut rng = StdRng::seed_from_u64(71);
        let cfg = MixnetConfig {
            hops: k,
            replicas: r,
            forwarder_fraction: 0.4,
            degree: 4,
            message_len: 64,
        };
        (Network::new(n, cfg, &mut rng), rng)
    }

    #[test]
    fn end_to_end_delivery() {
        let (mut net, mut rng) = setup(200, 3, 2);
        net.telescope(&[(0, vec![50]), (1, vec![51])], &mut rng)
            .unwrap();
        let msgs = vec![
            OutgoingMessage {
                src: 0,
                target: 50,
                id: 100,
                payload: b"query q1".to_vec(),
            },
            OutgoingMessage {
                src: 1,
                target: 51,
                id: 101,
                payload: b"query q2".to_vec(),
            },
        ];
        let report = net.forward_messages(&msgs, &mut rng);
        assert_eq!(report.crounds, 4);
        assert_eq!(report.delivered[&100], 2, "both replicas arrive");
        assert_eq!(report.delivered[&101], 2);
        assert_eq!(report.goodput(), 1.0);
        assert_eq!(report.dummies_injected, 0);
    }

    #[test]
    fn offline_source_sends_nothing() {
        let (mut net, mut rng) = setup(150, 2, 1);
        net.telescope(&[(0, vec![40])], &mut rng).unwrap();
        net.set_online(0, false);
        let msgs = vec![OutgoingMessage {
            src: 0,
            target: 40,
            id: 7,
            payload: vec![],
        }];
        let report = net.forward_messages(&msgs, &mut rng);
        assert_eq!(report.delivered[&7], 0);
        // The first hop covers for the missing message with a dummy.
        assert!(report.dummies_injected >= 1);
        assert!(report.rejected_at_destination >= 1);
    }

    #[test]
    fn offline_hop_triggers_downstream_dummies() {
        let (mut net, mut rng) = setup(200, 3, 1);
        net.telescope(&[(0, vec![60])], &mut rng).unwrap();
        let first_hop = net.circuits[0][0].hops[0];
        net.set_online(first_hop, false);
        let report = net.forward_messages(
            &[OutgoingMessage {
                src: 0,
                target: 60,
                id: 9,
                payload: b"x".to_vec(),
            }],
            &mut rng,
        );
        assert_eq!(report.delivered[&9], 0, "single replica lost");
        // Hop 2 (and hop 3) substitute dummies.
        assert!(report.dummies_injected >= 1);
        assert!(report.rejected_at_destination >= 1);
    }

    #[test]
    fn replicas_survive_single_path_failure() {
        let (mut net, mut rng) = setup(300, 2, 3);
        net.telescope(&[(5, vec![80])], &mut rng).unwrap();
        // Kill the first hop of exactly one replica path.
        let victim = net.circuits[5][0].hops[0];
        net.set_online(victim, false);
        let report = net.forward_messages(
            &[OutgoingMessage {
                src: 5,
                target: 80,
                id: 11,
                payload: b"resilient".to_vec(),
            }],
            &mut rng,
        );
        // At least one replica must get through (unless the same device is
        // a hop on every path, which the seed avoids).
        assert!(report.delivered[&11] >= 1);
        assert_eq!(report.goodput(), 1.0);
    }

    #[test]
    fn malicious_hop_drops_but_inner_mac_catches_dummies() {
        let (mut net, mut rng) = setup(200, 2, 1);
        net.telescope(&[(0, vec![70])], &mut rng).unwrap();
        let hop2 = net.circuits[0][0].hops[1];
        net.devices[hop2].malicious_drop = true;
        let report = net.forward_messages(
            &[OutgoingMessage {
                src: 0,
                target: 70,
                id: 13,
                payload: b"drop me".to_vec(),
            }],
            &mut rng,
        );
        assert_eq!(report.delivered[&13], 0);
        assert_eq!(report.rejected_at_destination, 1);
        // The pattern is preserved: the dropped message was replaced.
        assert_eq!(report.dummies_injected, 1);
    }

    #[test]
    fn traffic_pattern_is_invariant_under_drops() {
        // The aggregator's view — how many blobs each device uploads per
        // C-round — must be IDENTICAL whether or not a message was dropped:
        // that is exactly what dummy cover traffic guarantees (§3.5).
        let count_uploads = |net: &mut Network, rng: &mut StdRng| -> Vec<usize> {
            let report = net.forward_messages(
                &[OutgoingMessage {
                    src: 0,
                    target: 90,
                    id: 1,
                    payload: b"observe me".to_vec(),
                }],
                rng,
            );
            // Uploads per round = real forwards + dummies; with one message
            // per level the totals per round are 1 regardless of content.
            vec![report.dummies_injected + report.delivered[&1]]
        };
        // Run 1: healthy network.
        let (mut net_a, mut rng_a) = setup(200, 3, 1);
        net_a.telescope(&[(0, vec![90])], &mut rng_a).unwrap();
        let healthy = count_uploads(&mut net_a, &mut rng_a);
        // Run 2: same topology, middle hop maliciously drops.
        let (mut net_b, mut rng_b) = setup(200, 3, 1);
        net_b.telescope(&[(0, vec![90])], &mut rng_b).unwrap();
        let hop = net_b.circuits[0][0].hops[1];
        net_b.devices[hop].malicious_drop = true;
        let dropped = count_uploads(&mut net_b, &mut rng_b);
        // Deliveries+dummies is conserved: a drop converts a delivery into
        // a dummy, never into silence.
        assert_eq!(healthy.iter().sum::<usize>(), dropped.iter().sum::<usize>());
    }

    #[test]
    fn cround_roots_posted_every_round() {
        let (mut net, mut rng) = setup(150, 2, 1);
        net.telescope(&[(0, vec![30])], &mut rng).unwrap();
        let before = net.cround;
        net.forward_messages(
            &[OutgoingMessage {
                src: 0,
                target: 30,
                id: 1,
                payload: vec![],
            }],
            &mut rng,
        );
        for round in before + 1..=before + 3 {
            assert!(
                net.bulletin.cround_root(round).is_some(),
                "round {round} committed"
            );
        }
    }
}
