//! The public bulletin board.
//!
//! Mycelium assumes "a public bulletin board (blockchain) that prevents the
//! aggregator from equivocating to the devices" (§3.1, assumption 5). The
//! board is append-only; entries are never modified, and every reader sees
//! the same prefix. Devices post Merkle roots, challenges against the
//! aggregator, and the collective random beacon here.

use mycelium_crypto::sha256::Digest;

/// Kinds of bulletin-board entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// Root of the verifiable map `M1` for an epoch.
    M1Root(Digest),
    /// Root of the verifiable map `M2` for an epoch.
    M2Root(Digest),
    /// Root of a C-round MHT (commitment over all mailbox MHTs).
    CRoundRoot {
        /// C-round number.
        round: u64,
        /// Root digest.
        root: Digest,
    },
    /// The collective random beacon `B` used for hop selection (§3.4).
    Beacon(Vec<u8>),
    /// A device's complaint (e.g. a missing inclusion proof, §3.3/§3.4).
    Complaint {
        /// Complaining device.
        device: u64,
        /// C-round the complaint refers to.
        round: u64,
        /// Free-form reason.
        reason: String,
    },
    /// The aggregator's response to a complaint (an inclusion proof, etc.).
    ComplaintResponse {
        /// Index of the complaint entry being answered.
        complaint_index: usize,
    },
}

/// An append-only public log.
#[derive(Debug, Clone, Default)]
pub struct BulletinBoard {
    entries: Vec<Entry>,
}

impl BulletinBoard {
    /// Creates an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry; returns its index.
    pub fn post(&mut self, entry: Entry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// Reads an entry.
    pub fn get(&self, index: usize) -> Option<&Entry> {
        self.entries.get(index)
    }

    /// All entries (the public log).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Unanswered complaints for a given round — if any exist, honest
    /// devices refuse to proceed and the protocol phase restarts (§3.4).
    pub fn open_complaints(&self, round: u64) -> Vec<usize> {
        let answered: Vec<usize> = self
            .entries
            .iter()
            .filter_map(|e| match e {
                Entry::ComplaintResponse { complaint_index } => Some(*complaint_index),
                _ => None,
            })
            .collect();
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Complaint { round: r, .. } if *r == round && !answered.contains(&i) => {
                    Some(i)
                }
                _ => None,
            })
            .collect()
    }

    /// The most recent beacon.
    pub fn latest_beacon(&self) -> Option<&[u8]> {
        self.entries.iter().rev().find_map(|e| match e {
            Entry::Beacon(b) => Some(b.as_slice()),
            _ => None,
        })
    }

    /// The committed C-round root for `round`, if posted.
    pub fn cround_root(&self, round: u64) -> Option<Digest> {
        self.entries.iter().rev().find_map(|e| match e {
            Entry::CRoundRoot { round: r, root } if *r == round => Some(*root),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_only_and_indexed() {
        let mut b = BulletinBoard::new();
        let i0 = b.post(Entry::Beacon(vec![1, 2, 3]));
        let i1 = b.post(Entry::M1Root([7u8; 32]));
        assert_eq!(i0, 0);
        assert_eq!(i1, 1);
        assert_eq!(b.entries().len(), 2);
        assert_eq!(b.get(0), Some(&Entry::Beacon(vec![1, 2, 3])));
        assert!(b.get(5).is_none());
    }

    #[test]
    fn complaints_and_responses() {
        let mut b = BulletinBoard::new();
        let c = b.post(Entry::Complaint {
            device: 42,
            round: 7,
            reason: "missing inclusion proof".into(),
        });
        assert_eq!(b.open_complaints(7), vec![c]);
        assert!(b.open_complaints(8).is_empty());
        b.post(Entry::ComplaintResponse { complaint_index: c });
        assert!(b.open_complaints(7).is_empty());
    }

    #[test]
    fn latest_beacon_wins() {
        let mut b = BulletinBoard::new();
        b.post(Entry::Beacon(vec![1]));
        b.post(Entry::M1Root([0u8; 32]));
        b.post(Entry::Beacon(vec![2]));
        assert_eq!(b.latest_beacon(), Some(&[2u8][..]));
    }

    #[test]
    fn cround_roots() {
        let mut b = BulletinBoard::new();
        b.post(Entry::CRoundRoot {
            round: 1,
            root: [1u8; 32],
        });
        b.post(Entry::CRoundRoot {
            round: 2,
            root: [2u8; 32],
        });
        assert_eq!(b.cround_root(1), Some([1u8; 32]));
        assert_eq!(b.cround_root(2), Some([2u8; 32]));
        assert_eq!(b.cround_root(3), None);
    }
}
