//! The verifiable maps `M1` and `M2` (§3.3).
//!
//! When a query epoch begins, the aggregator compiles every device's recent
//! pseudonyms and builds two Merkle trees:
//!
//! * `M1` maps each *pseudonym number* `n ∈ [0, N_D·P)` to a leaf
//!   `(h_n, pk_n, d_n)`: the pseudonym, its public key, and the owning
//!   device's number. Devices look up hops in `M1` by index, verifying the
//!   inclusion proof against the committed root — the proof path must match
//!   the binary representation of `n`, so the aggregator cannot answer with
//!   a different leaf.
//! * `M2` maps each *device number* to the hashes of that device's
//!   pseudonyms and public keys, and is used to audit `M1`: a device that
//!   registers far more than `P` pseudonyms cannot fit its leaf, and a
//!   Sybil aggregator runs out of `N_D` leaves.
//!
//! Devices perform two checks (§3.3): (1) their own pseudonyms appear in
//! `M1` with valid proofs; (2) random spot-checks that `M1` entries are
//! consistent with the owning device's `M2` leaf.

use mycelium_crypto::merkle::{InclusionProof, MerkleTree};
use mycelium_crypto::penc::PublicKey;
use mycelium_crypto::sha256::{sha256, sha256_concat, Digest};

/// A device's registration: its pseudonym public keys.
#[derive(Debug, Clone)]
pub struct DeviceRegistration {
    /// Device number (index in the registration list).
    pub device: u64,
    /// Public keys, one per pseudonym (`h = H(pk)`).
    pub keys: Vec<PublicKey>,
}

/// One `M1` leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct M1Leaf {
    /// The pseudonym (`H(pk)`).
    pub pseudonym: Digest,
    /// The public key.
    pub key: PublicKey,
    /// Owning device number.
    pub device: u64,
}

impl M1Leaf {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(32 + 32 + 8);
        v.extend_from_slice(&self.pseudonym);
        v.extend_from_slice(&self.key.0);
        v.extend_from_slice(&self.device.to_le_bytes());
        v
    }
}

/// The pair of verifiable maps for one epoch.
#[derive(Debug, Clone)]
pub struct VerifiableMaps {
    /// `M1` leaves in pseudonym-number order.
    pub m1_leaves: Vec<M1Leaf>,
    m1: MerkleTree,
    /// `M2` leaves in device-number order (encoded pseudonym-hash lists).
    pub m2_leaves: Vec<Vec<u8>>,
    m2: MerkleTree,
    /// The per-device pseudonym limit `P`.
    pub pseudonym_limit: usize,
}

/// Verification failures surfaced by device audits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// A pseudonym of the auditing device is missing from `M1`.
    MissingPseudonym,
    /// An inclusion proof failed.
    BadProof,
    /// An `M1` entry's key is inconsistent with the owner's `M2` leaf.
    Inconsistent {
        /// The pseudonym number whose spot-check failed.
        index: usize,
    },
    /// A device registered more than `P` pseudonyms.
    TooManyPseudonyms {
        /// The offending device.
        device: u64,
    },
}

impl VerifiableMaps {
    /// Builds the maps from device registrations (the honest aggregator's
    /// behaviour). Pseudonym numbers are assigned in registration order.
    ///
    /// Returns an error if any device exceeds the pseudonym limit `p`.
    pub fn build(registrations: &[DeviceRegistration], p: usize) -> Result<Self, MapError> {
        let mut m1_leaves = Vec::new();
        let mut m2_leaves = Vec::new();
        for reg in registrations {
            if reg.keys.len() > p {
                return Err(MapError::TooManyPseudonyms { device: reg.device });
            }
            let mut leaf = Vec::new();
            for k in &reg.keys {
                m1_leaves.push(M1Leaf {
                    pseudonym: k.pseudonym(),
                    key: *k,
                    device: reg.device,
                });
                leaf.extend_from_slice(&sha256(&k.pseudonym()));
            }
            for k in &reg.keys {
                leaf.extend_from_slice(&sha256(&k.0));
            }
            m2_leaves.push(leaf);
        }
        let m1 = MerkleTree::build(&m1_leaves.iter().map(|l| l.encode()).collect::<Vec<_>>());
        let m2 = MerkleTree::build(&m2_leaves);
        Ok(Self {
            m1_leaves,
            m1,
            m2_leaves,
            m2,
            pseudonym_limit: p,
        })
    }

    /// Total number of pseudonyms (`M1` leaves).
    pub fn pseudonym_count(&self) -> usize {
        self.m1_leaves.len()
    }

    /// The `M1` root (posted to the bulletin board).
    pub fn m1_root(&self) -> Digest {
        self.m1.root()
    }

    /// The `M2` root (posted to the bulletin board).
    pub fn m2_root(&self) -> Digest {
        self.m2.root()
    }

    /// Looks up pseudonym number `n`: the leaf plus its inclusion proof.
    pub fn lookup(&self, n: usize) -> Option<(M1Leaf, InclusionProof)> {
        let leaf = self.m1_leaves.get(n)?.clone();
        let proof = self.m1.prove(n)?;
        Some((leaf, proof))
    }

    /// Device-side verification of a lookup response against the committed
    /// root: proof validity, index binding, and `h = H(pk)`.
    pub fn verify_lookup(
        root: &Digest,
        n: usize,
        leaf: &M1Leaf,
        proof: &InclusionProof,
    ) -> Result<(), MapError> {
        if leaf.key.pseudonym() != leaf.pseudonym {
            return Err(MapError::BadProof);
        }
        if !proof.verify(root, n, &leaf.encode()) {
            return Err(MapError::BadProof);
        }
        Ok(())
    }

    /// Check 1 (§3.3): the auditing device confirms all of its own
    /// pseudonyms appear in `M1` under valid proofs.
    pub fn audit_own_pseudonyms(&self, root: &Digest, keys: &[PublicKey]) -> Result<(), MapError> {
        for k in keys {
            let h = k.pseudonym();
            let pos = self
                .m1_leaves
                .iter()
                .position(|l| l.pseudonym == h)
                .ok_or(MapError::MissingPseudonym)?;
            let (leaf, proof) = self.lookup(pos).ok_or(MapError::MissingPseudonym)?;
            Self::verify_lookup(root, pos, &leaf, &proof)?;
        }
        Ok(())
    }

    /// Check 2 (§3.3): spot-check that `M1` entry `n` is consistent with
    /// the owner's `M2` leaf — one of the `H(pk)` hashes in the `d_n`-th
    /// `M2` leaf must match the retrieved key.
    pub fn audit_cross_reference(&self, m2_root: &Digest, n: usize) -> Result<(), MapError> {
        let (leaf, _) = self.lookup(n).ok_or(MapError::Inconsistent { index: n })?;
        let m2_leaf = self
            .m2_leaves
            .get(leaf.device as usize)
            .ok_or(MapError::Inconsistent { index: n })?;
        let proof = self
            .m2
            .prove(leaf.device as usize)
            .ok_or(MapError::Inconsistent { index: n })?;
        if !proof.verify(m2_root, leaf.device as usize, m2_leaf) {
            return Err(MapError::BadProof);
        }
        let want = sha256(&leaf.key.0);
        let found = m2_leaf.chunks(32).any(|chunk| chunk == want.as_slice());
        if !found {
            return Err(MapError::Inconsistent { index: n });
        }
        Ok(())
    }
}

/// Computes the epoch commitment hash (both roots), the value devices pin.
pub fn epoch_commitment(m1_root: &Digest, m2_root: &Digest) -> Digest {
    sha256_concat(&[b"mycelium-epoch", m1_root, m2_root])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_crypto::penc::KeyPair;
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn registrations(devices: usize, pseudonyms: usize) -> Vec<DeviceRegistration> {
        let mut rng = StdRng::seed_from_u64(55);
        (0..devices)
            .map(|d| DeviceRegistration {
                device: d as u64,
                keys: (0..pseudonyms)
                    .map(|_| KeyPair::generate(&mut rng).public())
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn build_and_lookup() {
        let regs = registrations(10, 3);
        let maps = VerifiableMaps::build(&regs, 3).unwrap();
        assert_eq!(maps.pseudonym_count(), 30);
        let root = maps.m1_root();
        for n in 0..30 {
            let (leaf, proof) = maps.lookup(n).unwrap();
            VerifiableMaps::verify_lookup(&root, n, &leaf, &proof).unwrap();
            assert_eq!(leaf.device as usize, n / 3);
        }
        assert!(maps.lookup(30).is_none());
    }

    #[test]
    fn wrong_index_lookup_detected() {
        // A malicious aggregator answering index n with leaf m fails the
        // §3.3 path check.
        let regs = registrations(8, 2);
        let maps = VerifiableMaps::build(&regs, 2).unwrap();
        let root = maps.m1_root();
        let (leaf, proof) = maps.lookup(5).unwrap();
        assert!(VerifiableMaps::verify_lookup(&root, 3, &leaf, &proof).is_err());
    }

    #[test]
    fn mismatched_key_detected() {
        let regs = registrations(4, 2);
        let maps = VerifiableMaps::build(&regs, 2).unwrap();
        let root = maps.m1_root();
        let (mut leaf, proof) = maps.lookup(1).unwrap();
        // Swap in another leaf's key: h != H(pk).
        leaf.key = maps.m1_leaves[2].key;
        assert_eq!(
            VerifiableMaps::verify_lookup(&root, 1, &leaf, &proof),
            Err(MapError::BadProof)
        );
    }

    #[test]
    fn own_pseudonym_audit() {
        let regs = registrations(6, 2);
        let maps = VerifiableMaps::build(&regs, 2).unwrap();
        let root = maps.m1_root();
        maps.audit_own_pseudonyms(&root, &regs[3].keys).unwrap();
        // An omitted device notices.
        let mut rng = StdRng::seed_from_u64(99);
        let outsider = KeyPair::generate(&mut rng).public();
        assert_eq!(
            maps.audit_own_pseudonyms(&root, &[outsider]),
            Err(MapError::MissingPseudonym)
        );
    }

    #[test]
    fn cross_reference_audit() {
        let regs = registrations(5, 3);
        let maps = VerifiableMaps::build(&regs, 3).unwrap();
        let m2_root = maps.m2_root();
        for n in 0..maps.pseudonym_count() {
            maps.audit_cross_reference(&m2_root, n).unwrap();
        }
    }

    #[test]
    fn cross_reference_catches_forged_owner() {
        // The aggregator claims a pseudonym belongs to a device that never
        // registered it.
        let regs = registrations(5, 2);
        let mut maps = VerifiableMaps::build(&regs, 2).unwrap();
        maps.m1_leaves[4].device = 0; // Really belongs to device 2.
        let m2_root = maps.m2_root();
        assert!(matches!(
            maps.audit_cross_reference(&m2_root, 4),
            Err(MapError::Inconsistent { index: 4 })
        ));
    }

    #[test]
    fn pseudonym_limit_enforced() {
        let regs = registrations(2, 5);
        assert!(matches!(
            VerifiableMaps::build(&regs, 4),
            Err(MapError::TooManyPseudonyms { .. })
        ));
    }

    #[test]
    fn epoch_commitment_is_binding() {
        let regs = registrations(3, 1);
        let maps = VerifiableMaps::build(&regs, 1).unwrap();
        let c1 = epoch_commitment(&maps.m1_root(), &maps.m2_root());
        let regs2 = registrations(4, 1);
        let maps2 = VerifiableMaps::build(&regs2, 1).unwrap();
        let c2 = epoch_commitment(&maps2.m1_root(), &maps2.m2_root());
        assert_ne!(c1, c2);
    }
}
