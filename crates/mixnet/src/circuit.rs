//! Telescoping circuit setup (§3.4).
//!
//! Every source establishes `r` independent `k`-hop paths to each of its
//! `d` targets. Hops are drawn from the beacon-selected forwarder classes;
//! keys are established Tor-style, extending one hop at a time through the
//! already-built prefix so the aggregator never sees which pseudonym a
//! source intends to route through (except hop 1, whose lookup it can
//! observe anyway). Extension to hop `i` costs `2i` C-rounds (the request
//! telescopes out `i` hops and the reply telescopes back); after the last
//! extension, final hops wait `k` C-rounds for ACK complaints before
//! fetching destination keys — `Σ 2i + k = k² + 2k` C-rounds in total,
//! which the simulation *counts* rather than assumes (Figure 5(d)).
//!
//! The simulation runs the real cryptography: `M1` lookups are verified
//! against the committed root, extend requests are `PEnc`/`AE` protected,
//! and hop routing tables store exactly what a real device would persist
//! (path-id → key, next hop, outgoing path-id).

use std::collections::HashMap;

use mycelium_crypto::penc::{KeyPair, PublicKey};
use mycelium_math::rng::Rng;

use crate::bulletin::{BulletinBoard, Entry};
use crate::maps::{DeviceRegistration, VerifiableMaps};
use crate::onion::{select_hop, PathId};

/// Mixnet parameters (Figure 4 defaults).
#[derive(Debug, Clone)]
pub struct MixnetConfig {
    /// Onion-routing hops `k`.
    pub hops: usize,
    /// Replicas of each message `r`.
    pub replicas: usize,
    /// Forwarder fraction `f`.
    pub forwarder_fraction: f64,
    /// Degree bound `d` (messages per device per round).
    pub degree: usize,
    /// Fixed payload size in bytes (all messages are padded to this).
    pub message_len: usize,
}

impl Default for MixnetConfig {
    fn default() -> Self {
        Self {
            hops: 3,
            replicas: 2,
            forwarder_fraction: 0.1,
            degree: 10,
            message_len: 256,
        }
    }
}

/// Where a route forwards to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// Forward to another mix (pseudonym number).
    Forward(usize),
    /// Final hop: deliver the peeled blob to the destination's mailbox.
    Deliver(usize),
    /// Not yet extended (set during telescoping).
    Pending,
}

/// A hop's routing-table entry.
#[derive(Debug, Clone)]
pub struct RouteEntry {
    /// Symmetric key shared with the (anonymous) source.
    pub key: [u8; 32],
    /// Next destination.
    pub next: NextHop,
    /// Path id used on the outgoing edge.
    pub out_path: PathId,
    /// Position of this hop along the path (0-based): traffic for this
    /// route arrives in forwarding round `base + level + 1`.
    pub level: usize,
}

/// One device's mixnet state.
#[derive(Debug)]
pub struct DeviceState {
    /// The device's (single, for the simulation) pseudonym key pair.
    pub keypair: KeyPair,
    /// Whether the device is currently online.
    pub online: bool,
    /// Failure-injection flag: a malicious forwarder that drops every real
    /// message passing through it (while covering with dummies).
    pub malicious_drop: bool,
    /// Routing table: incoming path id → route.
    pub routes: HashMap<PathId, RouteEntry>,
}

/// A fully-established circuit, from the source's perspective.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Destination pseudonym number.
    pub target: usize,
    /// Hop pseudonym numbers, in path order.
    pub hops: Vec<usize>,
    /// Symmetric keys shared with each hop.
    pub hop_keys: Vec<[u8; 32]>,
    /// Path id on the first edge (source → hop 1).
    pub entry_path: PathId,
    /// The destination's public key (fetched by the last hop).
    pub dst_key: PublicKey,
}

/// Setup failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// A lookup proof failed verification (malicious aggregator).
    BadLookup,
    /// Unanswered complaints: path setup must restart without the
    /// offending devices (§3.4).
    Restart {
        /// Number of open complaints.
        complaints: usize,
    },
}

/// The simulated mix network: devices + aggregator state.
#[derive(Debug)]
pub struct Network {
    /// Parameters.
    pub config: MixnetConfig,
    /// The epoch's verifiable maps.
    pub maps: VerifiableMaps,
    /// The public bulletin board.
    pub bulletin: BulletinBoard,
    /// Device states, indexed by pseudonym number (one pseudonym each).
    pub devices: Vec<DeviceState>,
    /// Current C-round.
    pub cround: u64,
    /// Established circuits: `circuits[src]` lists the source's paths.
    pub circuits: Vec<Vec<Circuit>>,
    /// The beacon in force.
    pub beacon: Vec<u8>,
}

impl Network {
    /// Initializes a network of `n` devices: key generation, registration,
    /// map construction, root + beacon publication.
    pub fn new<R: Rng + ?Sized>(n: usize, config: MixnetConfig, rng: &mut R) -> Self {
        let devices: Vec<DeviceState> = (0..n)
            .map(|_| DeviceState {
                keypair: KeyPair::generate(rng),
                online: true,
                malicious_drop: false,
                routes: HashMap::new(),
            })
            .collect();
        let regs: Vec<DeviceRegistration> = devices
            .iter()
            .enumerate()
            .map(|(d, dev)| DeviceRegistration {
                device: d as u64,
                keys: vec![dev.keypair.public()],
            })
            .collect();
        let maps = VerifiableMaps::build(&regs, 1).expect("one pseudonym per device");
        let mut bulletin = BulletinBoard::new();
        bulletin.post(Entry::M1Root(maps.m1_root()));
        bulletin.post(Entry::M2Root(maps.m2_root()));
        let mut beacon = vec![0u8; 32];
        rng.fill(&mut beacon[..]);
        bulletin.post(Entry::Beacon(beacon.clone()));
        Self {
            config,
            maps,
            bulletin,
            devices: (0..n)
                .map(|i| DeviceState {
                    keypair: devices[i].keypair.clone(),
                    online: true,
                    malicious_drop: false,
                    routes: HashMap::new(),
                })
                .collect(),
            cround: 0,
            circuits: vec![Vec::new(); n],
            beacon,
        }
    }

    /// Marks a device online or offline.
    pub fn set_online(&mut self, device: usize, online: bool) {
        self.devices[device].online = online;
    }

    /// Plans and telescopes `r` circuits from `src` to each target, with
    /// full verification. Returns the number of C-rounds consumed.
    ///
    /// The per-hop protocol steps are executed with real key material; the
    /// C-round counter advances by `2i` per extension and `k` for the ACK
    /// wait, exactly as the message schedule of §3.4 dictates.
    pub fn telescope<R: Rng + ?Sized>(
        &mut self,
        sources_and_targets: &[(usize, Vec<usize>)],
        rng: &mut R,
    ) -> Result<u64, SetupError> {
        let k = self.config.hops;
        let start = self.cround;
        let m1_root = self.maps.m1_root();
        // Plan: per source, per target, per replica, choose hops.
        struct Plan {
            src: usize,
            target: usize,
            hops: Vec<usize>,
            keys: Vec<[u8; 32]>,
            path_ids: Vec<PathId>,
        }
        let mut plans: Vec<Plan> = Vec::new();
        for (src, targets) in sources_and_targets {
            for &target in targets {
                for _ in 0..self.config.replicas {
                    let hops: Vec<usize> = (1..=k)
                        .map(|i| {
                            select_hop(
                                i,
                                k,
                                self.config.forwarder_fraction,
                                self.maps.pseudonym_count() as u64,
                                &self.beacon,
                                rng,
                            ) as usize
                        })
                        .collect();
                    plans.push(Plan {
                        src: *src,
                        target,
                        hops,
                        keys: Vec::new(),
                        path_ids: Vec::new(),
                    });
                }
            }
        }
        // Extension i: all plans extend to their i-th hop. Costs 2i rounds.
        for i in 0..k {
            for plan in plans.iter_mut() {
                let hop = plan.hops[i];
                // The source (for i = 0) or the previous hop (i > 0) looks
                // up the hop's leaf; the requester verifies the proof.
                let (leaf, proof) = self.maps.lookup(hop).ok_or(SetupError::BadLookup)?;
                VerifiableMaps::verify_lookup(&m1_root, hop, &leaf, &proof)
                    .map_err(|_| SetupError::BadLookup)?;
                // Fresh symmetric key, transported under PEnc + the AE
                // prefix of the established circuit (the transcript is
                // exercised end-to-end by the forwarding tests; here we
                // install the state both endpoints would hold).
                let mut key = [0u8; 32];
                rng.fill(&mut key);
                let in_path = PathId::random(rng);
                // The previous hop learns the mapping from its out-path to
                // the new hop.
                if i == 0 {
                    plan.path_ids.push(in_path);
                } else {
                    let prev = plan.hops[i - 1];
                    let prev_entry_path = plan.path_ids[i - 1];
                    let e = self.devices[prev]
                        .routes
                        .get_mut(&prev_entry_path)
                        .expect("previous hop was extended");
                    e.next = NextHop::Forward(hop);
                    e.out_path = in_path;
                    plan.path_ids.push(in_path);
                }
                self.devices[hop].routes.insert(
                    in_path,
                    RouteEntry {
                        key,
                        next: NextHop::Pending,
                        out_path: PathId::random(rng),
                        level: i,
                    },
                );
                plan.keys.push(key);
            }
            self.cround += 2 * (i as u64 + 1);
        }
        // ACK wait: k C-rounds; then last hops fetch destination keys.
        self.cround += k as u64;
        let open = self.bulletin.open_complaints(self.cround);
        if !open.is_empty() {
            return Err(SetupError::Restart {
                complaints: open.len(),
            });
        }
        for plan in plans.iter() {
            let last = plan.hops[k - 1];
            let (leaf, proof) = self.maps.lookup(plan.target).ok_or(SetupError::BadLookup)?;
            VerifiableMaps::verify_lookup(&m1_root, plan.target, &leaf, &proof)
                .map_err(|_| SetupError::BadLookup)?;
            let entry_path = plan.path_ids[k - 1];
            let e = self.devices[last]
                .routes
                .get_mut(&entry_path)
                .expect("last hop was extended");
            e.next = NextHop::Deliver(plan.target);
            self.circuits[plan.src].push(Circuit {
                target: plan.target,
                hops: plan.hops.clone(),
                hop_keys: plan.keys.clone(),
                entry_path: plan.path_ids[0],
                dst_key: leaf.key,
            });
        }
        Ok(self.cround - start)
    }

    /// The expected telescoping duration in C-rounds: `k² + 2k` (§3.4).
    pub fn telescoping_rounds(k: usize) -> u64 {
        (k * k + 2 * k) as u64
    }

    /// The forwarding duration for a query + response in C-rounds:
    /// `2k + 2` (§6.3).
    pub fn forwarding_rounds(k: usize) -> u64 {
        (2 * k + 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn network(n: usize, k: usize, r: usize) -> (Network, StdRng) {
        let mut rng = StdRng::seed_from_u64(61);
        let cfg = MixnetConfig {
            hops: k,
            replicas: r,
            forwarder_fraction: 0.3,
            degree: 4,
            message_len: 64,
        };
        (Network::new(n, cfg, &mut rng), rng)
    }

    #[test]
    fn telescoping_round_count_matches_paper_formula() {
        for k in [2usize, 3, 4] {
            let (mut net, mut rng) = network(200, k, 1);
            let used = net.telescope(&[(0, vec![5])], &mut rng).unwrap();
            assert_eq!(used, Network::telescoping_rounds(k), "k={k}");
        }
    }

    #[test]
    fn circuits_have_full_state() {
        let (mut net, mut rng) = network(300, 3, 2);
        net.telescope(&[(1, vec![7, 9])], &mut rng).unwrap();
        let circuits = &net.circuits[1];
        assert_eq!(circuits.len(), 2 * 2, "r=2 paths per target");
        for c in circuits {
            assert_eq!(c.hops.len(), 3);
            assert_eq!(c.hop_keys.len(), 3);
            // Hops are drawn from the correct forwarder classes.
            for (i, &h) in c.hops.iter().enumerate() {
                assert_eq!(
                    crate::onion::forwarder_class(h as u64, &net.beacon, 0.3, 3),
                    Some(i),
                    "hop {i}"
                );
            }
            assert_eq!(c.dst_key, net.devices[c.target].keypair.public());
        }
    }

    #[test]
    fn hop_routing_tables_chain() {
        let (mut net, mut rng) = network(300, 3, 1);
        net.telescope(&[(0, vec![10])], &mut rng).unwrap();
        let c = &net.circuits[0][0];
        // Follow the chain from the entry path.
        let mut path = c.entry_path;
        for (i, &h) in c.hops.iter().enumerate() {
            let entry = net.devices[h].routes.get(&path).expect("route exists");
            assert_eq!(entry.key, c.hop_keys[i]);
            match entry.next {
                NextHop::Forward(next) => {
                    assert_eq!(next, c.hops[i + 1]);
                    path = entry.out_path;
                }
                NextHop::Deliver(dst) => {
                    assert_eq!(i, c.hops.len() - 1);
                    assert_eq!(dst, c.target);
                }
                NextHop::Pending => panic!("hop {i} not extended"),
            }
        }
    }

    #[test]
    fn open_complaint_forces_restart() {
        let (mut net, mut rng) = network(200, 2, 1);
        // A device complains pre-emptively about the ACK round.
        let ack_round = 2 + 4 + 2; // Extensions (2+4) plus ACK wait (k=2).
        net.bulletin.post(Entry::Complaint {
            device: 3,
            round: ack_round,
            reason: "no inclusion proof".into(),
        });
        assert!(matches!(
            net.telescope(&[(0, vec![5])], &mut rng),
            Err(SetupError::Restart { complaints: 1 })
        ));
    }

    #[test]
    fn round_formulas() {
        assert_eq!(Network::telescoping_rounds(3), 15);
        assert_eq!(Network::forwarding_rounds(3), 8);
        assert_eq!(Network::telescoping_rounds(2), 8);
    }
}
