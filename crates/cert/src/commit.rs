//! The canonical contribution-commitment plane.
//!
//! Every executor — the multi-process net round at any shard count and the
//! single-process simulated round — commits to the *same* canonical
//! structure, so certificates for the same round are byte-identical no
//! matter how the intake plane was physically partitioned:
//!
//! ```text
//!   contribution root
//!     └── Merkle over CERT_SEGMENTS segment roots
//!           └── segment s: Merkle over the per-origin leaves with
//!               origin ∈ [floor(s·n/S), floor((s+1)·n/S))
//!                 └── leaf(origin) = H(tag ‖ origin ‖ slots ‖
//!                                      per-slot device ‖ status ‖ digest?)
//! ```
//!
//! A leaf records, per expected contribution slot, whether the slot's
//! ciphertext was accepted (with its digest), rejected by ZKP audit, or
//! never arrived. Rejected and missing slots carry **no** ciphertext
//! digest: deadline substitution replaces them with fresh `Enc(0)`
//! ciphertexts whose bytes are executor-local, and committing to those
//! would break cross-executor identity without adding integrity (the
//! aggregate digest already binds the sealed sum).

use mycelium_crypto::merkle::MerkleTree;
use mycelium_crypto::sha256::{sha256_concat, Digest};

/// Number of canonical commitment segments, independent of the physical
/// shard count.
pub const CERT_SEGMENTS: usize = 8;

const LEAF_TAG: &[u8] = b"myc-cert-leaf";

/// Outcome of one expected contribution slot at intake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotStatus {
    /// ZKP-verified and folded into the sum; carries the ciphertext digest
    /// recorded at accept time.
    Accepted(Digest),
    /// Arrived but failed the ZKP audit; the device is in the reject set.
    Rejected,
    /// Never arrived before the deadline; substituted with `Enc(0)`.
    Missing,
}

impl SlotStatus {
    fn code(&self) -> u8 {
        match self {
            Self::Accepted(_) => 0,
            Self::Rejected => 1,
            Self::Missing => 2,
        }
    }
}

/// The canonical commitment leaf for one origin.
///
/// `slots` lists `(device, status)` in duty order — the same order both
/// executors assign contribution slots in.
pub fn origin_leaf(origin: u32, slots: &[(u32, SlotStatus)]) -> Digest {
    let mut buf = Vec::with_capacity(8 + slots.len() * 38);
    buf.extend_from_slice(&origin.to_le_bytes());
    buf.extend_from_slice(&(slots.len() as u32).to_le_bytes());
    for (device, status) in slots {
        buf.extend_from_slice(&device.to_le_bytes());
        buf.push(status.code());
        if let SlotStatus::Accepted(d) = status {
            buf.extend_from_slice(d);
        }
    }
    sha256_concat(&[LEAF_TAG, &buf])
}

/// One origin's frozen commitment: the leaf plus its slot-outcome counts.
///
/// This is what an intake shard ships to the coordinator at sealing time;
/// the coordinator assembles the canonical tree from the full set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginCommit {
    /// The origin vertex.
    pub origin: u32,
    /// The canonical [`origin_leaf`] over the frozen slot statuses.
    pub leaf: Digest,
    /// Slots accepted (ZKP-verified) for this origin.
    pub accepted: u32,
    /// Slots rejected by ZKP audit for this origin.
    pub rejected: u32,
}

/// Freezes one origin's slot statuses into its [`OriginCommit`].
pub fn commit_origin(origin: u32, slots: &[(u32, SlotStatus)]) -> OriginCommit {
    let accepted = slots
        .iter()
        .filter(|(_, s)| matches!(s, SlotStatus::Accepted(_)))
        .count() as u32;
    let rejected = slots
        .iter()
        .filter(|(_, s)| matches!(s, SlotStatus::Rejected))
        .count() as u32;
    OriginCommit {
        origin,
        leaf: origin_leaf(origin, slots),
        accepted,
        rejected,
    }
}

/// Per-segment commitment summary carried in the certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Merkle root over this segment's origin leaves.
    pub root: Digest,
    /// Number of origins in the segment.
    pub origins: u32,
    /// Accepted contributions across the segment.
    pub accepted: u32,
    /// Rejected contributions across the segment.
    pub rejected: u32,
}

/// The origin range `[floor(s·n/S), floor((s+1)·n/S))` of segment `s`.
pub fn segment_range(segment: usize, origins: usize) -> std::ops::Range<usize> {
    let lo = segment * origins / CERT_SEGMENTS;
    let hi = (segment + 1) * origins / CERT_SEGMENTS;
    lo..hi
}

/// The canonical segment of an origin.
pub fn segment_of(origin: usize, origins: usize) -> usize {
    (0..CERT_SEGMENTS)
        .find(|&s| segment_range(s, origins).contains(&origin))
        .expect("every origin falls in a segment")
}

/// Merkle root over one contiguous slice of origin leaves.
///
/// An empty segment commits to the canonical empty tree, so segment roots
/// are always well defined.
pub fn segment_root(leaves: &[Digest]) -> Digest {
    MerkleTree::from_leaf_hashes(leaves.to_vec()).root()
}

/// Folds per-origin leaves and counts into the canonical segment summaries
/// plus the round-level contribution root.
///
/// `counts[origin] = (accepted, rejected)` for that origin's slots.
pub fn build_segments(leaves: &[Digest], counts: &[(u32, u32)]) -> (Vec<SegmentSummary>, Digest) {
    assert_eq!(leaves.len(), counts.len(), "one count pair per origin leaf");
    let mut segments = Vec::with_capacity(CERT_SEGMENTS);
    for s in 0..CERT_SEGMENTS {
        let range = segment_range(s, leaves.len());
        let (mut accepted, mut rejected) = (0u32, 0u32);
        for &(a, r) in &counts[range.clone()] {
            accepted += a;
            rejected += r;
        }
        segments.push(SegmentSummary {
            root: segment_root(&leaves[range.clone()]),
            origins: range.len() as u32,
            accepted,
            rejected,
        });
    }
    let root = MerkleTree::from_leaf_hashes(segments.iter().map(|s| s.root).collect()).root();
    (segments, root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_ranges_partition_the_origins() {
        for n in [0usize, 1, 7, 8, 9, 24, 100, 257] {
            let mut covered = 0;
            for s in 0..CERT_SEGMENTS {
                let r = segment_range(s, n);
                assert_eq!(r.start, covered, "n={n} s={s}");
                covered = r.end;
            }
            assert_eq!(covered, n, "n={n}");
            for v in 0..n {
                let s = segment_of(v, n);
                assert!(segment_range(s, n).contains(&v));
            }
        }
    }

    #[test]
    fn leaves_bind_every_slot_field() {
        let d = [9u8; 32];
        let base = origin_leaf(3, &[(1, SlotStatus::Accepted(d)), (2, SlotStatus::Missing)]);
        assert_ne!(
            base,
            origin_leaf(4, &[(1, SlotStatus::Accepted(d)), (2, SlotStatus::Missing)])
        );
        assert_ne!(
            base,
            origin_leaf(3, &[(5, SlotStatus::Accepted(d)), (2, SlotStatus::Missing)])
        );
        assert_ne!(
            base,
            origin_leaf(3, &[(1, SlotStatus::Rejected), (2, SlotStatus::Missing)])
        );
        assert_ne!(
            base,
            origin_leaf(
                3,
                &[
                    (1, SlotStatus::Accepted([8u8; 32])),
                    (2, SlotStatus::Missing)
                ]
            )
        );
        // Order matters: slots are committed in duty order.
        assert_ne!(
            base,
            origin_leaf(3, &[(2, SlotStatus::Missing), (1, SlotStatus::Accepted(d))])
        );
    }

    #[test]
    fn build_segments_is_deterministic_and_complete() {
        let leaves: Vec<Digest> = (0..24u32)
            .map(|i| origin_leaf(i, &[(i, SlotStatus::Rejected)]))
            .collect();
        let counts = vec![(1u32, 1u32); 24];
        let (segs, root) = build_segments(&leaves, &counts);
        assert_eq!(segs.len(), CERT_SEGMENTS);
        assert_eq!(segs.iter().map(|s| s.origins).sum::<u32>(), 24);
        let (segs2, root2) = build_segments(&leaves, &counts);
        assert_eq!(root, root2);
        assert_eq!(segs, segs2);
        // Any leaf change moves exactly its segment root and the top root.
        let mut tampered = leaves.clone();
        tampered[13][0] ^= 1;
        let (segs3, root3) = build_segments(&tampered, &counts);
        assert_ne!(root, root3);
        let moved: Vec<usize> = (0..CERT_SEGMENTS)
            .filter(|&s| segs[s].root != segs3[s].root)
            .collect();
        assert_eq!(moved, vec![segment_of(13, 24)]);
    }
}
