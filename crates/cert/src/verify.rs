//! The offline certificate checker.
//!
//! [`verify_bytes`] needs nothing but the certificate itself: Merkle roots
//! are recomputed from the carried leaves, binding digests are recomputed
//! by re-encoding the decoded body, and committee public keys are
//! re-derived from the certificate's own spec seed. It never touches the
//! network, round state, or the filesystem, and never panics — every
//! outcome is a typed [`Verdict`].

use std::fmt;

use mycelium_crypto::merkle::MerkleTree;

use crate::certificate::{verify_transcript_sig, RoundCertificate};
use crate::commit::{segment_range, segment_root, CERT_SEGMENTS};
use crate::wire::CertError;

/// Typed outcome of certificate verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every check passed.
    Valid {
        /// How many committee signatures verified.
        signatures: usize,
    },
    /// The bytes do not decode to a certificate.
    BadEncoding(CertError),
    /// A Merkle commitment does not match the carried leaves.
    WrongRoot(String),
    /// A binding digest (spec or transcript) does not match the body.
    WrongBinding(String),
    /// A committee signature is absent, malformed, or fails to verify.
    WrongSignature(String),
    /// Fewer than `t + 1` valid signatures.
    InsufficientSignatures {
        /// Signatures present and valid.
        have: usize,
        /// Signatures required.
        need: usize,
    },
}

impl Verdict {
    /// True only for [`Verdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Self::Valid { .. })
    }

    /// Stable lowercase kind tag (used by `myc_verify` and CI).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Valid { .. } => "valid",
            Self::BadEncoding(_) => "bad-encoding",
            Self::WrongRoot(_) => "wrong-root",
            Self::WrongBinding(_) => "wrong-binding",
            Self::WrongSignature(_) => "wrong-signature",
            Self::InsufficientSignatures { .. } => "insufficient-signatures",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Valid { signatures } => {
                write!(f, "valid ({signatures} committee signatures)")
            }
            Self::BadEncoding(e) => write!(f, "bad-encoding: {e}"),
            Self::WrongRoot(what) => write!(f, "wrong-root: {what}"),
            Self::WrongBinding(what) => write!(f, "wrong-binding: {what}"),
            Self::WrongSignature(what) => write!(f, "wrong-signature: {what}"),
            Self::InsufficientSignatures { have, need } => {
                write!(f, "insufficient-signatures: {have} of {need} required")
            }
        }
    }
}

/// Decodes and verifies certificate bytes.
pub fn verify_bytes(bytes: &[u8]) -> Verdict {
    match RoundCertificate::decode(bytes) {
        Ok(cert) => verify(&cert),
        Err(e) => Verdict::BadEncoding(e),
    }
}

/// Verifies a decoded certificate.
pub fn verify(cert: &RoundCertificate) -> Verdict {
    // 1. Merkle consistency: recompute every segment root from the carried
    //    leaves and fold them into the contribution root.
    if cert.segments.len() != CERT_SEGMENTS {
        return Verdict::WrongRoot(format!(
            "expected {CERT_SEGMENTS} segments, certificate carries {}",
            cert.segments.len()
        ));
    }
    if cert.leaves.len() != cert.spec.devices as usize {
        return Verdict::WrongRoot(format!(
            "{} leaves for {} devices",
            cert.leaves.len(),
            cert.spec.devices
        ));
    }
    for (s, seg) in cert.segments.iter().enumerate() {
        let range = segment_range(s, cert.leaves.len());
        if seg.origins as usize != range.len() {
            return Verdict::WrongRoot(format!(
                "segment {s} claims {} origins, canonical range has {}",
                seg.origins,
                range.len()
            ));
        }
        if segment_root(&cert.leaves[range]) != seg.root {
            return Verdict::WrongRoot(format!("segment {s} root mismatch"));
        }
    }
    let folded =
        MerkleTree::from_leaf_hashes(cert.segments.iter().map(|s| s.root).collect()).root();
    if folded != cert.contrib_root {
        return Verdict::WrongRoot("contribution root mismatch".into());
    }

    // 2. Binding digests: the spec digest and the transcript must both be
    //    recomputable from the decoded body.
    if cert.spec.digest() != cert.spec_digest {
        return Verdict::WrongBinding("spec digest mismatch".into());
    }
    if cert.compute_transcript() != cert.transcript {
        return Verdict::WrongBinding("transcript digest mismatch".into());
    }
    // Structural protocol facts the transcript alone cannot express.
    if cert.threshold >= cert.committee {
        return Verdict::WrongBinding(format!(
            "threshold {} not below committee size {}",
            cert.threshold, cert.committee
        ));
    }
    if cert.participants.len() != cert.threshold as usize + 1 {
        return Verdict::WrongBinding(format!(
            "{} participants for threshold {}",
            cert.participants.len(),
            cert.threshold
        ));
    }
    let mut prev_part = 0u32;
    for &p in &cert.participants {
        if p == 0 || p > cert.committee || p <= prev_part {
            return Verdict::WrongBinding(format!("participant {p} out of order or range"));
        }
        prev_part = p;
    }
    let mut prev_rej = None;
    for &d in &cert.rejected {
        if prev_rej.is_some_and(|p| d <= p) {
            return Verdict::WrongBinding("reject set not strictly ascending".into());
        }
        prev_rej = Some(d);
    }
    // The charged epsilon is covered by the transcript byte-for-byte; on
    // top of that it must be a plausible privacy charge at all.
    let eps = cert.charged_epsilon();
    if !eps.is_finite() || eps <= 0.0 {
        return Verdict::WrongBinding(format!("charged epsilon {eps} not positive and finite"));
    }
    // Every rejected device has at least one rejected slot, but may have
    // several (one per duty it forged a proof for), so this is a one-sided
    // bound rather than an equality.
    let claimed_rejected: u32 = cert.segments.iter().map(|s| s.rejected).sum();
    if (claimed_rejected as usize) < cert.rejected.len() {
        return Verdict::WrongBinding(format!(
            "segments claim {claimed_rejected} rejected slots for {} rejected devices",
            cert.rejected.len()
        ));
    }

    // 3. Committee signatures over the transcript, public keys re-derived
    //    from the spec seed.
    let mut prev_member = 0u64;
    for s in &cert.signatures {
        if s.member == 0 || s.member > cert.committee as u64 {
            return Verdict::WrongSignature(format!("member {} out of range", s.member));
        }
        if s.member <= prev_member {
            return Verdict::WrongSignature(format!(
                "member {} repeated or out of order",
                s.member
            ));
        }
        prev_member = s.member;
        if !verify_transcript_sig(cert.spec.seed, s.member, &cert.transcript, &s.sig) {
            return Verdict::WrongSignature(format!("member {} signature invalid", s.member));
        }
    }

    // 4. Threshold: strictly more than t signers, i.e. >= t + 1.
    let need = cert.threshold as usize + 1;
    if cert.signatures.len() < need {
        return Verdict::InsufficientSignatures {
            have: cert.signatures.len(),
            need,
        };
    }
    Verdict::Valid {
        signatures: cert.signatures.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{sign_transcript, CommitteeSig};
    use crate::test_support::sample_certificate;

    #[test]
    fn sample_certificate_is_valid() {
        let cert = sample_certificate();
        assert_eq!(verify(&cert), Verdict::Valid { signatures: 3 });
        assert_eq!(
            verify_bytes(&cert.encode()),
            Verdict::Valid { signatures: 3 }
        );
    }

    #[test]
    fn garbage_is_bad_encoding() {
        assert!(matches!(verify_bytes(b"junk"), Verdict::BadEncoding(_)));
        assert!(matches!(verify_bytes(&[]), Verdict::BadEncoding(_)));
    }

    #[test]
    fn leaf_tamper_is_wrong_root() {
        let mut cert = sample_certificate();
        cert.leaves[5][0] ^= 1;
        assert!(matches!(verify(&cert), Verdict::WrongRoot(_)));
    }

    #[test]
    fn histogram_tamper_is_wrong_binding() {
        let mut cert = sample_certificate();
        cert.released[0].histogram[0] += 1;
        assert!(matches!(verify(&cert), Verdict::WrongBinding(_)));
    }

    #[test]
    fn implausible_charged_epsilon_is_wrong_binding() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut cert = sample_certificate();
            cert.set_charged_epsilon(bad);
            cert.transcript = cert.compute_transcript();
            for s in &mut cert.signatures {
                s.sig = sign_transcript(cert.spec.seed, s.member, &cert.transcript);
            }
            assert!(
                matches!(verify(&cert), Verdict::WrongBinding(_)),
                "epsilon {bad} must be rejected even when correctly signed"
            );
        }
    }

    #[test]
    fn charged_epsilon_tamper_is_wrong_binding() {
        let mut cert = sample_certificate();
        cert.set_charged_epsilon(0.5);
        assert!(matches!(verify(&cert), Verdict::WrongBinding(_)));
    }

    #[test]
    fn foreign_signature_is_wrong_signature() {
        let mut cert = sample_certificate();
        // Signed by the right member under the wrong seed.
        cert.signatures[0].sig = sign_transcript(999, 1, &cert.transcript);
        assert!(matches!(verify(&cert), Verdict::WrongSignature(_)));
    }

    #[test]
    fn dropping_below_threshold_is_insufficient() {
        let mut cert = sample_certificate();
        cert.signatures.truncate(2);
        assert_eq!(
            verify(&cert),
            Verdict::InsufficientSignatures { have: 2, need: 3 }
        );
    }

    #[test]
    fn duplicate_member_is_wrong_signature() {
        let mut cert = sample_certificate();
        let dup = cert.signatures[0].clone();
        cert.signatures.insert(1, CommitteeSig { ..dup });
        assert!(matches!(verify(&cert), Verdict::WrongSignature(_)));
    }
}
