//! The `ROUND_cert.json` artifact format.
//!
//! The binary encoding is authoritative — it is what the transcript digest
//! and the tamper tests are defined over. The JSON artifact wraps it as a
//! hex string (`cert_hex`) next to a human-readable summary, so CI logs
//! and people can skim a round's outcome while `myc_verify` re-extracts
//! the exact bytes. Extraction is a plain string scan: the verifier must
//! not depend on a JSON parser (or anything else) trusting the artifact.

use crate::certificate::{cert_fingerprint, RoundCertificate};

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Strict lowercase/uppercase hex decoding; `None` on any malformed input.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the artifact: summary fields plus the authoritative `cert_hex`.
pub fn render_json(cert: &RoundCertificate, bytes: &[u8]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", cert.spec.seed));
    out.push_str(&format!("  \"devices\": {},\n", cert.spec.devices));
    out.push_str(&format!("  \"query\": \"{}\",\n", escape(&cert.spec.query)));
    out.push_str(&format!("  \"with_proofs\": {},\n", cert.spec.with_proofs));
    out.push_str(&format!("  \"committee\": {},\n", cert.committee));
    out.push_str(&format!("  \"threshold\": {},\n", cert.threshold));
    out.push_str(&format!("  \"share_round\": {},\n", cert.share_round));
    out.push_str(&format!("  \"signatures\": {},\n", cert.signatures.len()));
    out.push_str(&format!(
        "  \"charged_epsilon\": {},\n",
        cert.charged_epsilon()
    ));
    out.push_str(&format!(
        "  \"rejected\": [{}],\n",
        cert.rejected
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"contrib_root\": \"{}\",\n",
        to_hex(&cert.contrib_root)
    ));
    out.push_str(&format!(
        "  \"aggregate_digest\": \"{}\",\n",
        to_hex(&cert.aggregate_digest)
    ));
    out.push_str(&format!(
        "  \"noise_commitment\": \"{}\",\n",
        to_hex(&cert.noise_commitment)
    ));
    out.push_str(&format!(
        "  \"transcript\": \"{}\",\n",
        to_hex(&cert.transcript)
    ));
    out.push_str("  \"released\": {\n");
    for (i, g) in cert.released.iter().enumerate() {
        let comma = if i + 1 == cert.released.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    \"{}\": [{}]{}\n",
            escape(&g.label),
            g.histogram
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            comma
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"cert_sha256\": \"{}\",\n",
        to_hex(&cert_fingerprint(bytes))
    ));
    out.push_str(&format!("  \"cert_hex\": \"{}\"\n", to_hex(bytes)));
    out.push_str("}\n");
    out
}

/// Pulls the certificate bytes back out of an artifact by string scan.
pub fn extract_cert_hex(text: &str) -> Option<Vec<u8>> {
    let key = "\"cert_hex\"";
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let open = rest.find('"')? + 1;
    let rest = &rest[open..];
    let close = rest.find('"')?;
    from_hex(&rest[..close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_certificate;

    #[test]
    fn hex_roundtrip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("0").is_none());
        assert!(from_hex("zz").is_none());
    }

    #[test]
    fn artifact_roundtrips_the_exact_bytes() {
        let cert = sample_certificate();
        let bytes = cert.encode();
        let json = render_json(&cert, &bytes);
        assert_eq!(extract_cert_hex(&json).unwrap(), bytes);
    }

    #[test]
    fn extraction_survives_missing_or_mangled_keys() {
        assert!(extract_cert_hex("{}").is_none());
        assert!(extract_cert_hex("\"cert_hex\": \"zz\"").is_none());
    }
}
