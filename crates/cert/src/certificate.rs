//! The serializable `RoundCertificate` and its binding digests.

use mycelium_crypto::sha256::{sha256_concat, Digest};
use mycelium_crypto::{eddsa, sha256};

use crate::commit::SegmentSummary;
use crate::wire::{CertError, Reader, Writer};

/// Leading magic of a serialized certificate.
pub const CERT_MAGIC: &[u8; 8] = b"MYCCERT1";
/// Current format version.
pub const CERT_VERSION: u32 = 1;

const SPEC_TAG: &[u8] = b"myc-cert-spec";
const TRANSCRIPT_TAG: &[u8] = b"myc-cert-transcript";
const KEY_TAG: &[u8] = b"myc-cert-key";
const NOISE_TAG: &[u8] = b"myc-noise-commit";

const MAX_QUERY: u64 = 1 << 16;
const MAX_COMMITTEE: u64 = 1 << 16;
const MAX_ORIGINS: u64 = 1 << 24;
const MAX_SEGMENTS: u64 = 64;
const MAX_GROUPS: u64 = 1 << 12;
const MAX_HIST: u64 = 1 << 20;

/// The round parameters a certificate is bound to.
///
/// Deliberately excludes the physical shard count: the commitment plane is
/// canonical, so rounds that differ only in intake partitioning produce the
/// same certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertSpec {
    /// Round seed; everything deterministic hangs off it.
    pub seed: u64,
    /// Number of devices (= origins) in the round.
    pub devices: u32,
    /// Query name, e.g. `Q4`.
    pub query: String,
    /// Whether contributions carried ZK proofs.
    pub with_proofs: bool,
}

impl CertSpec {
    /// The spec binding digest.
    pub fn digest(&self) -> Digest {
        sha256_concat(&[
            SPEC_TAG,
            &self.seed.to_le_bytes(),
            &self.devices.to_le_bytes(),
            &(self.query.len() as u32).to_le_bytes(),
            self.query.as_bytes(),
            &[self.with_proofs as u8],
        ])
    }
}

/// One decoded-and-released histogram group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleasedGroup {
    /// Group label from the query plan.
    pub label: String,
    /// Noised counts.
    pub histogram: Vec<i64>,
}

/// A committee signature over the transcript digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitteeSig {
    /// Committee member index (1-based).
    pub member: u64,
    /// Ed25519 signature over the transcript digest.
    pub sig: [u8; 64],
}

/// A self-contained, offline-checkable record of one query round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundCertificate {
    /// Round parameters.
    pub spec: CertSpec,
    /// `spec.digest()`, stored explicitly so tampering either field is
    /// detectable independently.
    pub spec_digest: Digest,
    /// Committee size `c`.
    pub committee: u32,
    /// Decryption threshold `t`; validity needs at least `t + 1` signatures.
    pub threshold: u32,
    /// Committee (re)selection round that produced the decryption.
    pub share_round: u32,
    /// The `t + 1` members whose shares decrypted the aggregate.
    pub participants: Vec<u32>,
    /// Per-origin commitment leaves, in origin order.
    pub leaves: Vec<Digest>,
    /// Canonical segment summaries (see [`crate::commit`]).
    pub segments: Vec<SegmentSummary>,
    /// Merkle root over the segment roots.
    pub contrib_root: Digest,
    /// Devices whose contributions failed the ZKP audit, ascending.
    pub rejected: Vec<u32>,
    /// Digest of the sealed encrypted aggregate.
    pub aggregate_digest: Digest,
    /// Commitment to the joint DP-noise seed (opaque; see module docs).
    pub noise_commitment: Digest,
    /// IEEE-754 bit pattern of the epsilon the budget ledger charged for
    /// this round (stored as bits so the struct stays `Eq` and the
    /// encoding is canonical; see [`RoundCertificate::charged_epsilon`]).
    pub charged_epsilon_bits: u64,
    /// The released noisy histograms.
    pub released: Vec<ReleasedGroup>,
    /// The transcript digest the committee signed.
    pub transcript: Digest,
    /// Committee signatures, ascending by member.
    pub signatures: Vec<CommitteeSig>,
}

/// Byte spans of each certificate section, for tamper-matrix tests.
#[derive(Debug, Clone)]
pub struct CertLayout {
    /// `(section name, byte range)` pairs in encoding order.
    pub sections: Vec<(&'static str, std::ops::Range<usize>)>,
}

impl RoundCertificate {
    /// The epsilon the privacy-budget ledger charged for this round.
    pub fn charged_epsilon(&self) -> f64 {
        f64::from_bits(self.charged_epsilon_bits)
    }

    /// Sets the charged epsilon from its `f64` value.
    pub fn set_charged_epsilon(&mut self, epsilon: f64) {
        self.charged_epsilon_bits = epsilon.to_bits();
    }

    /// Encodes the certificate body up to (excluding) the transcript field.
    ///
    /// This is the exact byte string the transcript digest commits to, so
    /// any flipped body byte that still decodes will fail the binding check.
    fn encode_core(&self) -> Vec<u8> {
        let (bytes, layout) = self.encode_with_layout();
        let end = layout
            .sections
            .iter()
            .find(|(name, _)| *name == "transcript")
            .expect("layout has a transcript section")
            .1
            .start;
        bytes[..end].to_vec()
    }

    /// The transcript digest over the certificate body.
    pub fn compute_transcript(&self) -> Digest {
        sha256_concat(&[TRANSCRIPT_TAG, &self.encode_core()])
    }

    /// Serializes the certificate.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_layout().0
    }

    /// Serializes the certificate and reports each section's byte span.
    pub fn encode_with_layout(&self) -> (Vec<u8>, CertLayout) {
        let mut w = Writer::new();
        let mut sections = Vec::new();
        let mut mark = 0usize;
        let section = |w: &Writer, name: &'static str, sections: &mut Vec<_>, mark: &mut usize| {
            sections.push((name, *mark..w.len()));
            *mark = w.len();
        };

        w.bytes(CERT_MAGIC);
        section(&w, "magic", &mut sections, &mut mark);
        w.u32(CERT_VERSION);
        section(&w, "version", &mut sections, &mut mark);

        w.u64(self.spec.seed);
        w.u32(self.spec.devices);
        w.str(&self.spec.query);
        w.u8(self.spec.with_proofs as u8);
        section(&w, "spec", &mut sections, &mut mark);

        w.bytes(&self.spec_digest);
        section(&w, "spec_digest", &mut sections, &mut mark);

        w.u32(self.committee);
        w.u32(self.threshold);
        w.u32(self.share_round);
        w.u32(self.participants.len() as u32);
        for &p in &self.participants {
            w.u32(p);
        }
        section(&w, "committee_meta", &mut sections, &mut mark);

        w.u32(self.leaves.len() as u32);
        for leaf in &self.leaves {
            w.bytes(leaf);
        }
        section(&w, "leaves", &mut sections, &mut mark);

        w.u32(self.segments.len() as u32);
        for s in &self.segments {
            w.bytes(&s.root);
            w.u32(s.origins);
            w.u32(s.accepted);
            w.u32(s.rejected);
        }
        section(&w, "segments", &mut sections, &mut mark);

        w.bytes(&self.contrib_root);
        section(&w, "contrib_root", &mut sections, &mut mark);

        w.u32(self.rejected.len() as u32);
        for &d in &self.rejected {
            w.u32(d);
        }
        section(&w, "rejected", &mut sections, &mut mark);

        w.bytes(&self.aggregate_digest);
        section(&w, "aggregate_digest", &mut sections, &mut mark);
        w.bytes(&self.noise_commitment);
        section(&w, "noise_commitment", &mut sections, &mut mark);

        w.u64(self.charged_epsilon_bits);
        section(&w, "charged_epsilon", &mut sections, &mut mark);

        w.u32(self.released.len() as u32);
        for g in &self.released {
            w.str(&g.label);
            w.u32(g.histogram.len() as u32);
            for &v in &g.histogram {
                w.i64(v);
            }
        }
        section(&w, "released", &mut sections, &mut mark);

        w.bytes(&self.transcript);
        section(&w, "transcript", &mut sections, &mut mark);

        w.u32(self.signatures.len() as u32);
        for s in &self.signatures {
            w.u64(s.member);
            w.bytes(&s.sig);
        }
        section(&w, "signatures", &mut sections, &mut mark);

        (w.finish(), CertLayout { sections })
    }

    /// Deserializes a certificate; every failure is a typed [`CertError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CertError> {
        let mut r = Reader::new(bytes);
        let magic = r.u64("magic")?;
        if magic.to_le_bytes() != *CERT_MAGIC {
            return Err(CertError::BadMagic);
        }
        let version = r.u32("version")?;
        if version != CERT_VERSION {
            return Err(CertError::BadVersion(version));
        }

        let seed = r.u64("seed")?;
        let devices = r.u32("devices")?;
        let query = r.str("query", MAX_QUERY)?;
        let with_proofs = match r.u8("with_proofs")? {
            0 => false,
            1 => true,
            // Any other byte would re-encode as 0/1 and sail past the
            // transcript binding — reject it at the decode layer.
            _ => {
                return Err(CertError::NonCanonical {
                    field: "with_proofs",
                })
            }
        };
        let spec = CertSpec {
            seed,
            devices,
            query,
            with_proofs,
        };
        let spec_digest = r.digest("spec_digest")?;

        let committee = r.u32("committee")?;
        let threshold = r.u32("threshold")?;
        let share_round = r.u32("share_round")?;
        let n_part = r.count("participants", MAX_COMMITTEE)?;
        let mut participants = Vec::with_capacity(n_part);
        for _ in 0..n_part {
            participants.push(r.u32("participant")?);
        }

        let n_leaves = r.count("leaves", MAX_ORIGINS)?;
        let mut leaves = Vec::with_capacity(n_leaves);
        for _ in 0..n_leaves {
            leaves.push(r.digest("leaf")?);
        }

        let n_segs = r.count("segments", MAX_SEGMENTS)?;
        let mut segments = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            let root = r.digest("segment root")?;
            let origins = r.u32("segment origins")?;
            let accepted = r.u32("segment accepted")?;
            let rejected = r.u32("segment rejected")?;
            segments.push(SegmentSummary {
                root,
                origins,
                accepted,
                rejected,
            });
        }

        let contrib_root = r.digest("contrib_root")?;

        let n_rej = r.count("rejected", MAX_ORIGINS)?;
        let mut rejected = Vec::with_capacity(n_rej);
        for _ in 0..n_rej {
            rejected.push(r.u32("rejected device")?);
        }

        let aggregate_digest = r.digest("aggregate_digest")?;
        let noise_commitment = r.digest("noise_commitment")?;
        let charged_epsilon_bits = r.u64("charged_epsilon")?;

        let n_groups = r.count("released", MAX_GROUPS)?;
        let mut released = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let label = r.str("group label", MAX_QUERY)?;
            let n_hist = r.count("histogram", MAX_HIST)?;
            let mut histogram = Vec::with_capacity(n_hist);
            for _ in 0..n_hist {
                histogram.push(r.i64("histogram value")?);
            }
            released.push(ReleasedGroup { label, histogram });
        }

        let transcript = r.digest("transcript")?;

        let n_sigs = r.count("signatures", MAX_COMMITTEE)?;
        let mut signatures = Vec::with_capacity(n_sigs);
        for _ in 0..n_sigs {
            let member = r.u64("signature member")?;
            let sig = r.sig("signature bytes")?;
            signatures.push(CommitteeSig { member, sig });
        }

        r.expect_end()?;
        Ok(Self {
            spec,
            spec_digest,
            committee,
            threshold,
            share_round,
            participants,
            leaves,
            segments,
            contrib_root,
            rejected,
            aggregate_digest,
            noise_commitment,
            charged_epsilon_bits,
            released,
            transcript,
            signatures,
        })
    }
}

/// Commitment to the joint DP-noise seed: `H(tag ‖ XOR of member seeds)`.
///
/// The verifier treats this as an opaque binding — it proves the committee
/// signed over *some* fixed noise randomness, not that the noise was
/// sampled honestly. Opening it would reveal the seeds and with them the
/// exact (un-noised) histogram, so the certificate never carries them.
pub fn noise_commitment(seeds: &[[u8; 32]]) -> Digest {
    let mut joint = [0u8; 32];
    for s in seeds {
        for (j, b) in s.iter().enumerate() {
            joint[j] ^= b;
        }
    }
    sha256_concat(&[NOISE_TAG, &joint])
}

/// A committee member's certificate-signing secret.
///
/// Hermetic setting: every key in the reproduction derives from the round
/// seed, so the verifier re-derives public keys from the certificate's own
/// spec. A deployment would anchor these in a PKI instead; the verifier
/// logic (threshold counting, transcript binding) is unchanged either way.
pub fn committee_signing_secret(seed: u64, member: u64) -> [u8; 32] {
    sha256_concat(&[KEY_TAG, &seed.to_le_bytes(), &member.to_le_bytes()])
}

/// The matching public key.
pub fn committee_public_key(seed: u64, member: u64) -> [u8; 32] {
    eddsa::public_key(&committee_signing_secret(seed, member))
}

/// Signs a transcript digest as committee member `member`.
pub fn sign_transcript(seed: u64, member: u64, transcript: &Digest) -> [u8; 64] {
    eddsa::sign(&committee_signing_secret(seed, member), transcript)
}

/// Verifies one member's transcript signature.
pub fn verify_transcript_sig(seed: u64, member: u64, transcript: &Digest, sig: &[u8; 64]) -> bool {
    eddsa::verify(&committee_public_key(seed, member), transcript, sig)
}

/// Convenience digest of an entire encoded certificate (for logs/tests).
pub fn cert_fingerprint(bytes: &[u8]) -> Digest {
    sha256::sha256(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commit::CERT_SEGMENTS;
    use crate::test_support::sample_certificate as sample;

    #[test]
    fn encode_decode_roundtrip() {
        let cert = sample();
        let bytes = cert.encode();
        let back = RoundCertificate::decode(&bytes).unwrap();
        assert_eq!(back, cert);
        assert_eq!(back.encode(), bytes, "canonical re-encode");
    }

    #[test]
    fn layout_sections_tile_the_encoding() {
        let cert = sample();
        let (bytes, layout) = cert.encode_with_layout();
        let mut pos = 0usize;
        for (name, range) in &layout.sections {
            assert_eq!(range.start, pos, "section {name} is contiguous");
            assert!(range.end >= range.start);
            pos = range.end;
        }
        assert_eq!(pos, bytes.len(), "sections cover every byte");
        assert_eq!(cert.segments.len(), CERT_SEGMENTS);
    }

    #[test]
    fn transcript_covers_the_body() {
        let mut cert = sample();
        let t = cert.compute_transcript();
        cert.released[0].histogram[1] += 1;
        assert_ne!(cert.compute_transcript(), t);
    }

    #[test]
    fn signing_keys_are_member_and_seed_specific() {
        let t = [5u8; 32];
        let sig = sign_transcript(1, 2, &t);
        assert!(verify_transcript_sig(1, 2, &t, &sig));
        assert!(!verify_transcript_sig(1, 3, &t, &sig));
        assert!(!verify_transcript_sig(2, 2, &t, &sig));
    }

    #[test]
    fn noise_commitment_is_order_invariant_but_seed_sensitive() {
        let a = [1u8; 32];
        let b = [9u8; 32];
        assert_eq!(noise_commitment(&[a, b]), noise_commitment(&[b, a]));
        assert_ne!(noise_commitment(&[a, b]), noise_commitment(&[a]));
    }
}
