//! Proof-carrying rounds: Merkle contribution commitments, signed
//! `RoundCertificate`s, and the offline verifier.
//!
//! Mycelium's aggregation plane is untrusted; this crate adds the trust
//! layer that makes a round's output independently checkable after the
//! fact. During intake every accepted (ZKP-verified) contribution's
//! digest is recorded; at sealing time the executor folds them into a
//! canonical Merkle commitment ([`commit`]), binds it together with the
//! round spec, the sealed aggregate digest, the DP-noise commitment and
//! the released histograms into a transcript digest, and collects Ed25519
//! committee signatures over that transcript ([`certificate`]). The
//! result serializes to a self-contained [`RoundCertificate`] that
//! [`verify_bytes`] checks with no network and no round state, returning
//! a typed [`Verdict`] — never panicking ([`verify`]).
//!
//! What the verifier establishes: the committee quorum (≥ t+1 of the
//! round's committee) signed exactly this commitment tree, reject set,
//! aggregate digest, noise commitment and histogram, and the Merkle
//! structure internally coheres. What it does *not* establish: that the
//! ciphertext digests in the leaves correspond to well-formed
//! contributions (that is the ZKP audit's job, attested by the quorum) or
//! that the noise was sampled honestly (the commitment is opaque by
//! design — opening it would reveal the exact histogram).
//!
//! Only `mycelium-crypto` is a dependency, so the verifier binary stays
//! standalone; both executors depend on this crate, never the reverse.

pub mod certificate;
pub mod commit;
pub mod json;
pub mod verify;
pub mod wire;

pub use certificate::{
    cert_fingerprint, committee_public_key, committee_signing_secret, noise_commitment,
    sign_transcript, verify_transcript_sig, CertLayout, CertSpec, CommitteeSig, ReleasedGroup,
    RoundCertificate, CERT_MAGIC, CERT_VERSION,
};
pub use commit::{
    build_segments, commit_origin, origin_leaf, segment_of, segment_range, segment_root,
    OriginCommit, SegmentSummary, SlotStatus, CERT_SEGMENTS,
};
pub use json::{extract_cert_hex, from_hex, render_json, to_hex};
pub use verify::{verify, verify_bytes, Verdict};
pub use wire::CertError;

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use mycelium_crypto::sha256::Digest;

    /// A small, fully valid certificate used across unit tests.
    pub fn sample_certificate() -> RoundCertificate {
        let spec = CertSpec {
            seed: 42,
            devices: 24,
            query: "Q4".into(),
            with_proofs: true,
        };
        let mut leaves: Vec<Digest> = Vec::new();
        let mut counts = Vec::new();
        for i in 0..24u32 {
            let (slots, count) = if i == 7 {
                (vec![(i, SlotStatus::Rejected)], (0u32, 1u32))
            } else {
                (vec![(i, SlotStatus::Accepted([i as u8; 32]))], (1u32, 0u32))
            };
            leaves.push(origin_leaf(i, &slots));
            counts.push(count);
        }
        let (segments, contrib_root) = build_segments(&leaves, &counts);
        let mut cert = RoundCertificate {
            spec_digest: spec.digest(),
            spec,
            committee: 5,
            threshold: 2,
            share_round: 0,
            participants: vec![1, 2, 3],
            leaves,
            segments,
            contrib_root,
            rejected: vec![7],
            aggregate_digest: [3u8; 32],
            noise_commitment: noise_commitment(&[[1u8; 32], [2u8; 32]]),
            charged_epsilon_bits: 1.0f64.to_bits(),
            released: vec![ReleasedGroup {
                label: "infected".into(),
                histogram: vec![5, -1, 0],
            }],
            transcript: [0u8; 32],
            signatures: Vec::new(),
        };
        cert.transcript = cert.compute_transcript();
        for m in 1..=3u64 {
            cert.signatures.push(CommitteeSig {
                member: m,
                sig: sign_transcript(cert.spec.seed, m, &cert.transcript),
            });
        }
        cert
    }
}
