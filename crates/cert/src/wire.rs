//! Minimal canonical byte codec for certificates.
//!
//! Certificates must decode to exactly one value and re-encode to exactly
//! the same bytes (the verifier recomputes binding digests by re-encoding),
//! so the codec is fixed little-endian with length-prefixed sequences, hard
//! count limits, and a mandatory end-of-input check. Every failure is a
//! typed [`CertError`]; nothing here panics on untrusted input.

use std::fmt;

/// Typed decode failure for certificate bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// Input ended before a field was complete.
    Truncated {
        /// The field being read.
        field: &'static str,
    },
    /// The leading magic was not `MYCCERT1`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// A count prefix exceeded its hard limit.
    CountTooLarge {
        /// The field being read.
        field: &'static str,
        /// The decoded count.
        count: u64,
        /// The maximum allowed.
        max: u64,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// The field being read.
        field: &'static str,
    },
    /// Bytes remained after the last field.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A field admitted more than one byte representation and was not in
    /// canonical form (e.g. a bool encoded as anything but 0 or 1). The
    /// encoding must be bijective or tampered bytes could re-encode
    /// cleanly and slip past the transcript binding.
    NonCanonical {
        /// The field being read.
        field: &'static str,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { field } => write!(f, "certificate truncated in {field}"),
            Self::BadMagic => write!(f, "not a round certificate (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported certificate version {v}"),
            Self::CountTooLarge { field, count, max } => {
                write!(f, "{field} count {count} exceeds limit {max}")
            }
            Self::BadUtf8 { field } => write!(f, "{field} is not valid UTF-8"),
            Self::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after certificate")
            }
            Self::NonCanonical { field } => {
                write!(f, "{field} is not canonically encoded")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Append-only canonical writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length (used to record section layouts).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the string bytes.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }

    /// Consumes the writer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked canonical reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CertError> {
        if self.buf.len() - self.pos < n {
            return Err(CertError::Truncated { field });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, CertError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, CertError> {
        Ok(u32::from_le_bytes(
            self.take(4, field)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, CertError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, field: &'static str) -> Result<i64, CertError> {
        Ok(i64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a fixed 32-byte digest.
    pub fn digest(&mut self, field: &'static str) -> Result<[u8; 32], CertError> {
        Ok(self.take(32, field)?.try_into().expect("32 bytes"))
    }

    /// Reads a fixed 64-byte signature.
    pub fn sig(&mut self, field: &'static str) -> Result<[u8; 64], CertError> {
        Ok(self.take(64, field)?.try_into().expect("64 bytes"))
    }

    /// Reads a `u32` count and enforces `count <= max`.
    pub fn count(&mut self, field: &'static str, max: u64) -> Result<usize, CertError> {
        let c = self.u32(field)? as u64;
        if c > max {
            return Err(CertError::CountTooLarge {
                field,
                count: c,
                max,
            });
        }
        Ok(c as usize)
    }

    /// Reads a length-prefixed UTF-8 string of at most `max` bytes.
    pub fn str(&mut self, field: &'static str, max: u64) -> Result<String, CertError> {
        let len = self.count(field, max)?;
        let raw = self.take(len, field)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CertError::BadUtf8 { field })
    }

    /// Fails unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), CertError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(CertError::TrailingBytes { extra });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_limits() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xAABBCCDD);
        w.u64(u64::MAX);
        w.i64(-5);
        w.str("hi");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xAABBCCDD);
        assert_eq!(r.u64("c").unwrap(), u64::MAX);
        assert_eq!(r.i64("d").unwrap(), -5);
        assert_eq!(r.str("e", 16).unwrap(), "hi");
        r.expect_end().unwrap();
    }

    #[test]
    fn typed_failures() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32("x"), Err(CertError::Truncated { .. })));
        let mut w = Writer::new();
        w.u32(100);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.count("n", 10),
            Err(CertError::CountTooLarge { .. })
        ));
        let mut w = Writer::new();
        w.u32(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str("s", 16), Err(CertError::BadUtf8 { .. })));
        let r = Reader::new(&[0]);
        assert!(matches!(
            r.expect_end(),
            Err(CertError::TrailingBytes { extra: 1 })
        ));
    }
}
