//! BGV plaintexts, ciphertexts, and homomorphic operations.
//!
//! A ciphertext is a vector of ring elements `(c_0, …, c_k)` at some level
//! `l` of the modulus chain; it decrypts to `[[Σ c_i s^i]_{Q_l}]_t`. Fresh
//! ciphertexts have degree 1 (two components); multiplication produces
//! degree 2, which [`Ciphertext::relinearize`] reduces back using the
//! key-switching keys. [`Ciphertext::mod_switch_down`] drops one chain
//! prime, dividing the noise by `≈ q_l` — the leveled-BGV noise-management
//! strategy.
//!
//! Mycelium defers relinearization to the aggregator (§5): devices multiply
//! and forward degree-2 ciphertexts; the aggregator performs a one-time
//! relinearization before the committee decrypts. Both flows are supported.

use std::sync::Arc;

use mycelium_math::rng::Rng;
use mycelium_math::rns::{
    key_switch_assign, key_switch_batch, Representation, RnsContext, RnsPoly, ShoupPrecomp,
};
use mycelium_math::{ew, par, sample};

use crate::keys::{PublicKey, RelinKey, SecretKey};
use crate::params::BgvParams;

/// Errors from homomorphic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgvError {
    /// Operands are at different levels of the modulus chain.
    LevelMismatch { left: usize, right: usize },
    /// Relinearization was requested at a level with no key material.
    MissingRelinKey { level: usize },
    /// Relinearization applies to degree-2 (3-component) ciphertexts only.
    UnexpectedDegree { parts: usize },
    /// The ciphertext is already at the bottom of the chain.
    BottomOfChain,
    /// A plaintext coefficient is outside `[0, t)`.
    PlaintextOutOfRange { value: u64, modulus: u64 },
    /// Plaintext has the wrong number of coefficients.
    PlaintextLength { got: usize, want: usize },
}

impl std::fmt::Display for BgvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BgvError::LevelMismatch { left, right } => {
                write!(f, "ciphertext level mismatch: {left} vs {right}")
            }
            BgvError::MissingRelinKey { level } => {
                write!(f, "no relinearization key for level {level}")
            }
            BgvError::UnexpectedDegree { parts } => {
                write!(f, "expected a 3-component ciphertext, got {parts}")
            }
            BgvError::BottomOfChain => write!(f, "cannot mod-switch below level 1"),
            BgvError::PlaintextOutOfRange { value, modulus } => {
                write!(
                    f,
                    "plaintext coefficient {value} out of range [0, {modulus})"
                )
            }
            BgvError::PlaintextLength { got, want } => {
                write!(f, "plaintext has {got} coefficients, ring degree is {want}")
            }
        }
    }
}

impl std::error::Error for BgvError {}

/// A plaintext polynomial with coefficients in `[0, t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    coeffs: Vec<u64>,
    modulus: u64,
}

impl Plaintext {
    /// Creates a plaintext, validating the coefficient range.
    pub fn new(coeffs: Vec<u64>, modulus: u64) -> Result<Self, BgvError> {
        if let Some(&bad) = coeffs.iter().find(|&&c| c >= modulus) {
            return Err(BgvError::PlaintextOutOfRange {
                value: bad,
                modulus,
            });
        }
        Ok(Self { coeffs, modulus })
    }

    /// The all-zero plaintext of degree `n`.
    pub fn zero(n: usize, modulus: u64) -> Self {
        Self {
            coeffs: vec![0; n],
            modulus,
        }
    }

    /// Coefficients.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Plaintext modulus.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Centered (signed) lift of the coefficients, minimizing the embedded
    /// message norm.
    pub fn centered(&self) -> Vec<i64> {
        self.coeffs
            .iter()
            .map(|&c| {
                if c > self.modulus / 2 {
                    c as i64 - self.modulus as i64
                } else {
                    c as i64
                }
            })
            .collect()
    }
}

/// A plaintext pre-encoded into NTT representation at a fixed level.
///
/// [`Ciphertext::mul_plain`] and [`Ciphertext::add_plain`] must lift the
/// plaintext into `R_{Q_l}` and run a forward NTT on every call. When the
/// same plaintext multiplies many ciphertexts (e.g. the same selection mask
/// over every device's contribution), preparing it once amortizes that
/// encoding away.
#[derive(Debug, Clone)]
pub struct PreparedPlaintext {
    /// The centered lift of the plaintext, in NTT representation with Shoup
    /// constants (the mask multiplies many ciphertexts pointwise).
    ntt: ShoupPrecomp,
    /// `|pt|_∞` of the centered lift, for noise accounting.
    max_centered: u64,
    modulus: u64,
}

impl PreparedPlaintext {
    /// Encodes `pt` for ciphertexts at `level` over `ctx`.
    pub fn prepare(pt: &Plaintext, ctx: &Arc<RnsContext>, level: usize) -> Result<Self, BgvError> {
        if pt.coeffs().len() != ctx.degree() {
            return Err(BgvError::PlaintextLength {
                got: pt.coeffs().len(),
                want: ctx.degree(),
            });
        }
        let centered = pt.centered();
        let ntt = ShoupPrecomp::new(RnsPoly::from_signed(Arc::clone(ctx), level, &centered));
        let max_centered = centered.iter().map(|c| c.unsigned_abs()).max().unwrap_or(0);
        Ok(Self {
            ntt,
            max_centered,
            modulus: pt.modulus(),
        })
    }

    /// The level this encoding targets.
    pub fn level(&self) -> usize {
        self.ntt.level()
    }
}

/// A BGV ciphertext.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// Components in NTT representation, all at the same level.
    parts: Vec<RnsPoly>,
    /// Analytic `log2` bound on `|[Σ c_i s^i]_{Q_l}|_∞` (message + noise).
    noise_log2: f64,
    params: BgvParams,
}

impl Ciphertext {
    /// Encrypts a plaintext under the public key.
    pub fn encrypt<R: Rng + ?Sized>(
        pk: &PublicKey,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Result<Self, BgvError> {
        let ctx = pk.context();
        let n = ctx.degree();
        if pt.coeffs().len() != n {
            return Err(BgvError::PlaintextLength {
                got: pt.coeffs().len(),
                want: n,
            });
        }
        Self::encrypt_at_level(pk, pt, ctx.max_level(), rng)
    }

    /// Encrypts directly at `level` — the same scheme as
    /// [`Ciphertext::encrypt`], but the randomness, noise, and NTTs cover
    /// only the first `level` RNS limbs (the public key's residue prefix
    /// *is* its image at the lower level). Ciphertexts that are born at
    /// the aggregation level (neutral accumulators, zeroed origins) use
    /// this to skip both the full-chain encryption and the mod-switch
    /// ladder down.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `1..=max_level`.
    pub fn encrypt_at_level<R: Rng + ?Sized>(
        pk: &PublicKey,
        pt: &Plaintext,
        level: usize,
        rng: &mut R,
    ) -> Result<Self, BgvError> {
        let ctx = pk.context();
        let n = ctx.degree();
        if pt.coeffs().len() != n {
            return Err(BgvError::PlaintextLength {
                got: pt.coeffs().len(),
                want: n,
            });
        }
        assert!(
            level >= 1 && level <= ctx.max_level(),
            "encryption level out of range"
        );
        let t = pk.params.plaintext_modulus;
        let mut u = sample::ternary_rns(ctx, level, rng);
        u.to_ntt();
        let mut e0 = sample::gaussian_rns(ctx, level, pk.params.sigma, rng);
        e0.to_ntt();
        e0.scalar_mul_assign(t);
        let mut e1 = sample::gaussian_rns(ctx, level, pk.params.sigma, rng);
        e1.to_ntt();
        e1.scalar_mul_assign(t);
        let mut m = RnsPoly::from_signed(Arc::clone(ctx), level, &pt.centered());
        m.to_ntt();
        // c0 = b·u + t·e0 + m ; c1 = a·u + t·e1 — built in place against
        // the Shoup-precomputed key components: the only allocation is the
        // clone of u for the first output.
        let mut c0 = u.clone();
        c0.mul_shoup_assign_prefix(pk.b());
        c0.add_assign(&e0);
        c0.add_assign(&m);
        let mut c1 = u;
        c1.mul_shoup_assign_prefix(pk.a());
        c1.add_assign(&e1);
        Ok(Self {
            parts: vec![c0, c1],
            noise_log2: pk.params.fresh_noise_log2(),
            params: pk.params.clone(),
        })
    }

    /// A "transparent" encryption of zero with no randomness — the neutral
    /// element for homomorphic addition (used as the accumulator seed and as
    /// the default value for dropped-out devices, §4.4).
    pub fn zero(pk: &PublicKey) -> Self {
        let ctx = pk.context();
        let level = ctx.max_level();
        Self {
            parts: vec![
                RnsPoly::zero(ctx.clone(), level, Representation::Ntt),
                RnsPoly::zero(ctx.clone(), level, Representation::Ntt),
            ],
            noise_log2: 0.0,
            params: pk.params.clone(),
        }
    }

    /// Builds a ciphertext from raw components (used by the threshold
    /// decryption layer and tests).
    pub fn from_parts(parts: Vec<RnsPoly>, noise_log2: f64, params: BgvParams) -> Self {
        assert!(!parts.is_empty(), "a ciphertext needs at least one part");
        Self {
            parts,
            noise_log2,
            params,
        }
    }

    /// Ciphertext components (NTT representation).
    pub fn parts(&self) -> &[RnsPoly] {
        &self.parts
    }

    /// Current level.
    pub fn level(&self) -> usize {
        self.parts[0].level()
    }

    /// Number of components (degree + 1).
    pub fn degree(&self) -> usize {
        self.parts.len() - 1
    }

    /// Parameters.
    pub fn params(&self) -> &BgvParams {
        &self.params
    }

    /// The tracked `log2` noise bound.
    pub fn noise_log2(&self) -> f64 {
        self.noise_log2
    }

    /// Remaining noise budget in bits: `log2(Q_l) - 1 - noise`.
    ///
    /// Decryption is guaranteed correct while this is positive.
    pub fn noise_budget_bits(&self) -> f64 {
        self.params.prime_bits as f64 * self.level() as f64 - 1.0 - self.noise_log2
    }

    /// Homomorphic addition.
    pub fn add(&self, other: &Self) -> Result<Self, BgvError> {
        self.check_level(other)?;
        // Clone the longer ciphertext and fold the shorter one in place —
        // no zero padding materialized.
        let (longer, shorter) = if self.parts.len() >= other.parts.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut parts = longer.parts.clone();
        for (p, o) in parts.iter_mut().zip(&shorter.parts) {
            p.add_assign(o);
        }
        Ok(Self {
            parts,
            noise_log2: log2_sum(self.noise_log2, other.noise_log2),
            params: self.params.clone(),
        })
    }

    /// In-place homomorphic addition: `self += other`, reusing `self`'s
    /// component storage. The accumulator loops in the query executor fold
    /// thousands of ciphertexts — this keeps them allocation-free.
    pub fn add_assign(&mut self, other: &Self) -> Result<(), BgvError> {
        self.check_level(other)?;
        for (p, o) in self.parts.iter_mut().zip(&other.parts) {
            p.add_assign(o);
        }
        if other.parts.len() > self.parts.len() {
            for o in &other.parts[self.parts.len()..] {
                self.parts.push(o.clone());
            }
        }
        self.noise_log2 = log2_sum(self.noise_log2, other.noise_log2);
        Ok(())
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, other: &Self) -> Result<Self, BgvError> {
        self.check_level(other)?;
        let max_parts = self.parts.len().max(other.parts.len());
        let ctx = self.parts[0].context().clone();
        let level = self.level();
        let parts = (0..max_parts)
            .map(|i| match (self.parts.get(i), other.parts.get(i)) {
                (Some(a), Some(b)) => a.sub(b),
                (Some(a), None) => a.clone(),
                (None, Some(b)) => b.neg(),
                (None, None) => RnsPoly::zero(ctx.clone(), level, Representation::Ntt),
            })
            .collect();
        Ok(Self {
            parts,
            noise_log2: log2_sum(self.noise_log2, other.noise_log2),
            params: self.params.clone(),
        })
    }

    /// Homomorphic multiplication (tensor product). Both operands must be
    /// degree-1; the result is degree-2 until relinearized.
    ///
    /// The three output components are computed in one fused pass: each
    /// residue is one unit of work producing `(c0, c1, c2)` rows together,
    /// so the whole tensor product is a single parallel region with no
    /// intermediate allocations.
    pub fn mul(&self, other: &Self) -> Result<Self, BgvError> {
        self.check_level(other)?;
        if self.parts.len() != 2 || other.parts.len() != 2 {
            return Err(BgvError::UnexpectedDegree {
                parts: self.parts.len().max(other.parts.len()),
            });
        }
        let ctx = self.parts[0].context().clone();
        let level = self.level();
        let (a0, a1) = (&self.parts[0], &self.parts[1]);
        let (b0, b1) = (&other.parts[0], &other.parts[1]);
        let rows = par::map_indices(level, |i| {
            let m = &ctx.moduli()[i];
            let (x0, x1) = (&a0.residues()[i], &a1.residues()[i]);
            let (y0, y1) = (&b0.residues()[i], &b1.residues()[i]);
            let n = x0.len();
            let mut r0 = vec![0u64; n];
            let mut r1 = vec![0u64; n];
            let mut r2 = vec![0u64; n];
            // One fused kernel per limb: operands are loaded once and the
            // four partial products stay in the lazy domain until each
            // output's single canonicalization (see ew::tensor3).
            ew::tensor3(m, (x0, x1), (y0, y1), (&mut r0, &mut r1, &mut r2));
            (r0, r1, r2)
        });
        let mut c0 = Vec::with_capacity(level);
        let mut c1 = Vec::with_capacity(level);
        let mut c2 = Vec::with_capacity(level);
        for (r0, r1, r2) in rows {
            c0.push(r0);
            c1.push(r1);
            c2.push(r2);
        }
        let parts = vec![
            RnsPoly::from_residues(ctx.clone(), Representation::Ntt, c0),
            RnsPoly::from_residues(ctx.clone(), Representation::Ntt, c1),
            RnsPoly::from_residues(ctx, Representation::Ntt, c2),
        ];
        let noise = (self.params.n as f64).log2() + self.noise_log2 + other.noise_log2;
        Ok(Self {
            parts,
            noise_log2: noise,
            params: self.params.clone(),
        })
    }

    /// Multiplies by the monomial `x^k` (a negacyclic rotation).
    ///
    /// This is noise-free: the infinity norm of `c(s)` is preserved. Used by
    /// the GROUP BY window packing (§4.5) to shift a local result into its
    /// group's coefficient window.
    ///
    /// For NTT-domain components (the normal case) this is a pointwise
    /// multiply by the transform of `±x^{k mod N}` — one forward NTT total,
    /// instead of an inverse + forward round-trip per component.
    pub fn mul_monomial(&self, k: usize) -> Self {
        let ctx = self.parts[0].context().clone();
        let n = ctx.degree();
        let k = k % (2 * n);
        if k == 0 {
            return self.clone();
        }
        let parts = if self.parts[0].representation() == Representation::Ntt {
            let mono = ShoupPrecomp::new(ntt_monomial(&ctx, self.level(), k));
            self.parts
                .iter()
                .map(|p| {
                    let mut r = p.clone();
                    r.mul_shoup_assign(&mono);
                    r
                })
                .collect()
        } else {
            self.parts.iter().map(|p| rotate_negacyclic(p, k)).collect()
        };
        Self {
            parts,
            noise_log2: self.noise_log2,
            params: self.params.clone(),
        }
    }

    /// Multiplies by a plaintext polynomial.
    ///
    /// Noise grows by `log2(N · |pt|_∞ · |pt|_0)` in the worst case; we use
    /// the standard `log2(N · |pt|_∞)` bound. Repeated multiplications by
    /// the same plaintext should go through [`PreparedPlaintext`].
    pub fn mul_plain(&self, pt: &Plaintext) -> Result<Self, BgvError> {
        let prepared = PreparedPlaintext::prepare(pt, self.parts[0].context(), self.level())?;
        self.mul_plain_prepared(&prepared)
    }

    /// Multiplies by a pre-encoded plaintext (skips the NTT re-encoding).
    ///
    /// # Panics
    ///
    /// Panics if the prepared level differs from the ciphertext level.
    pub fn mul_plain_prepared(&self, pt: &PreparedPlaintext) -> Result<Self, BgvError> {
        assert_eq!(
            pt.level(),
            self.level(),
            "prepared plaintext level mismatch"
        );
        let mut parts = self.parts.clone();
        for p in parts.iter_mut() {
            p.mul_shoup_assign(&pt.ntt);
        }
        let growth = ((self.params.n as f64) * (pt.max_centered.max(1) as f64)).log2();
        Ok(Self {
            parts,
            noise_log2: self.noise_log2 + growth,
            params: self.params.clone(),
        })
    }

    /// Adds a plaintext to the ciphertext (no key material needed: the
    /// centered lift is added to `c_0`).
    pub fn add_plain(&self, pt: &Plaintext) -> Result<Self, BgvError> {
        let prepared = PreparedPlaintext::prepare(pt, self.parts[0].context(), self.level())?;
        self.add_plain_prepared(&prepared)
    }

    /// Adds a pre-encoded plaintext (skips the NTT re-encoding).
    ///
    /// # Panics
    ///
    /// Panics if the prepared level differs from the ciphertext level.
    pub fn add_plain_prepared(&self, pt: &PreparedPlaintext) -> Result<Self, BgvError> {
        assert_eq!(
            pt.level(),
            self.level(),
            "prepared plaintext level mismatch"
        );
        let mut parts = self.parts.clone();
        parts[0].add_assign(pt.ntt.poly());
        Ok(Self {
            parts,
            noise_log2: log2_sum(self.noise_log2, (pt.modulus as f64 / 2.0).log2()),
            params: self.params.clone(),
        })
    }

    /// Subtracts a plaintext from the ciphertext.
    pub fn sub_plain(&self, pt: &Plaintext) -> Result<Self, BgvError> {
        let t = pt.modulus();
        let negated: Vec<u64> = pt.coeffs().iter().map(|&c| (t - c) % t).collect();
        self.add_plain(&Plaintext::new(negated, t).expect("negation stays in range"))
    }

    /// Relinearizes a degree-2 ciphertext back to degree 1 using the
    /// key-switching keys for the current level.
    pub fn relinearize(&self, rk: &RelinKey) -> Result<Self, BgvError> {
        if self.parts.len() == 2 {
            return Ok(self.clone());
        }
        if self.parts.len() != 3 {
            return Err(BgvError::UnexpectedDegree {
                parts: self.parts.len(),
            });
        }
        let level = self.level();
        let keys = rk
            .at_level(level)
            .ok_or(BgvError::MissingRelinKey { level })?;
        let c2 = self.parts[2].coeff();
        let mut c0 = self.parts[0].clone();
        let mut c1 = self.parts[1].clone();
        // Fused gadget key switch: decomposition digits are lifted,
        // transformed, and multiply-accumulated limb by limb against the
        // Shoup-precomputed keys without materializing digit polynomials.
        key_switch_assign(&mut c0, &mut c1, &c2, keys);
        // Key-switching noise: t · Σ_j |d_j·e_j| ≤ t · L · (q/2) · 6σ · N.
        let p = &self.params;
        let ks_noise = (p.plaintext_modulus as f64).log2()
            + p.prime_bits as f64
            + (level as f64).log2().max(0.0)
            + (6.0 * p.sigma * p.n as f64).log2();
        Ok(Self {
            parts: vec![c0, c1],
            noise_log2: log2_sum(self.noise_log2, ks_noise),
            params: self.params.clone(),
        })
    }

    /// Relinearizes a batch of same-level degree-2 ciphertexts in one
    /// [`key_switch_batch`] call: the RNS digit decomposition runs once
    /// per ciphertext, but all digit NTTs and multiply-accumulates for
    /// the whole batch stream through a single parallel region, so the
    /// `MYC_THREADS` workers stay saturated even when each individual
    /// key switch has fewer digits than workers.
    ///
    /// Degree-1 inputs pass through unchanged. Every degree-2 input must
    /// sit at the same level (callers batch per summation-tree level).
    /// Results are bit-identical to per-ciphertext
    /// [`Ciphertext::relinearize`] calls.
    pub fn relinearize_batch(cts: &[Self], rk: &RelinKey) -> Result<Vec<Self>, BgvError> {
        let mut out: Vec<Option<Self>> = vec![None; cts.len()];
        // (input index, c0, c1, decomposed c2) for each degree-2 input.
        let mut work: Vec<(usize, RnsPoly, RnsPoly, RnsPoly)> = Vec::new();
        let mut level: Option<usize> = None;
        for (idx, ct) in cts.iter().enumerate() {
            match ct.parts.len() {
                2 => out[idx] = Some(ct.clone()),
                3 => {
                    match level {
                        None => level = Some(ct.level()),
                        Some(l) if l != ct.level() => {
                            return Err(BgvError::LevelMismatch {
                                left: l,
                                right: ct.level(),
                            })
                        }
                        Some(_) => {}
                    }
                    work.push((
                        idx,
                        ct.parts[0].clone(),
                        ct.parts[1].clone(),
                        ct.parts[2].coeff(),
                    ));
                }
                parts => return Err(BgvError::UnexpectedDegree { parts }),
            }
        }
        if let Some(level) = level {
            let keys = rk
                .at_level(level)
                .ok_or(BgvError::MissingRelinKey { level })?;
            let mut jobs: Vec<(&mut RnsPoly, &mut RnsPoly, &RnsPoly)> = work
                .iter_mut()
                .map(|(_, c0, c1, c2)| (&mut *c0, &mut *c1, &*c2))
                .collect();
            key_switch_batch(&mut jobs, keys);
            for (idx, c0, c1, _) in work {
                let src = &cts[idx];
                let p = &src.params;
                // Same bound as `relinearize`: t · L · (q/2) · 6σ · N.
                let ks_noise = (p.plaintext_modulus as f64).log2()
                    + p.prime_bits as f64
                    + (level as f64).log2().max(0.0)
                    + (6.0 * p.sigma * p.n as f64).log2();
                out[idx] = Some(Self {
                    parts: vec![c0, c1],
                    noise_log2: log2_sum(src.noise_log2, ks_noise),
                    params: src.params.clone(),
                });
            }
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("every slot filled"))
            .collect())
    }

    /// Drops the last chain prime (BGV modulus switching), dividing the
    /// noise by `≈ q_l`.
    pub fn mod_switch_down(&self) -> Result<Self, BgvError> {
        if self.level() <= 1 {
            return Err(BgvError::BottomOfChain);
        }
        let t = self.params.plaintext_modulus;
        // Each part is independent: rescale them in parallel (the inner
        // per-residue loops then run serially under the nesting guard).
        let parts: Vec<RnsPoly> = par::map(&self.parts, |_, p| {
            let mut c = p.coeff();
            c.mod_switch_down_in_place(t);
            c.to_ntt();
            c
        });
        // New noise: old/q_l plus the rounding term ≈ t·(1+N)/2 per part.
        let p = &self.params;
        let switched = self.noise_log2 - p.prime_bits as f64;
        let rounding = (t as f64 * (1.0 + p.n as f64) / 2.0 * self.parts.len() as f64).log2();
        Ok(Self {
            parts,
            noise_log2: log2_sum(switched, rounding),
            params: self.params.clone(),
        })
    }

    /// Mod-switches down to the target level.
    ///
    /// Fused: each part converts to the coefficient domain **once**, runs
    /// all `level − target` rescale steps there, and transforms back once
    /// — instead of paying a full inverse+forward NTT round trip per
    /// dropped prime. The round trip is exact on canonical residues, so
    /// the result is bit-identical to chained
    /// [`Ciphertext::mod_switch_down`] calls; the tracked noise bound
    /// replays the identical per-step f64 updates.
    pub fn mod_switch_to(&self, target: usize) -> Result<Self, BgvError> {
        if target < 1 || target > self.level() {
            return Err(BgvError::BottomOfChain);
        }
        let steps = self.level() - target;
        if steps == 0 {
            return Ok(self.clone());
        }
        let t = self.params.plaintext_modulus;
        let parts: Vec<RnsPoly> = par::map(&self.parts, |_, p| {
            let mut c = p.coeff();
            for _ in 0..steps {
                c.mod_switch_down_in_place(t);
            }
            c.to_ntt();
            c
        });
        let p = &self.params;
        let rounding = (t as f64 * (1.0 + p.n as f64) / 2.0 * self.parts.len() as f64).log2();
        let mut noise = self.noise_log2;
        for _ in 0..steps {
            noise = log2_sum(noise - p.prime_bits as f64, rounding);
        }
        Ok(Self {
            parts,
            noise_log2: noise,
            params: self.params.clone(),
        })
    }

    /// Decrypts with the secret key.
    pub fn decrypt(&self, sk: &SecretKey) -> Plaintext {
        let phase = self.phase(sk);
        let t = self.params.plaintext_modulus;
        Plaintext {
            coeffs: phase.crt_centered_mod(t),
            modulus: t,
        }
    }

    /// Measures the exact noise (`log2 |c(s) - m|_∞`) using the secret key.
    ///
    /// Returns `(plaintext, noise_log2, budget_bits)`. Unlike the tracked
    /// analytic bound, this is the ground truth used by the noise-budget
    /// tests and the §6.2 generality experiment.
    pub fn decrypt_with_noise(&self, sk: &SecretKey) -> (Plaintext, f64, f64) {
        let phase = self.phase(sk);
        let t = self.params.plaintext_modulus;
        let coeffs = phase.crt_centered_mod(t);
        let norm = phase.inf_norm_big();
        let noise = norm.log2();
        let budget = self.parts[0].context().log_q(self.level()) - 1.0 - noise;
        (Plaintext { coeffs, modulus: t }, noise, budget)
    }

    /// Computes the decryption phase `[Σ c_i s^i]_{Q_l}` in coefficient
    /// representation.
    pub fn phase(&self, sk: &SecretKey) -> RnsPoly {
        let s = sk.s_at_level(self.level());
        let mut acc = self.parts[0].clone();
        let mut s_pow = s.clone();
        for (i, part) in self.parts[1..].iter().enumerate() {
            acc.mul_add_assign(part, &s_pow);
            if i + 2 < self.parts.len() {
                s_pow.mul_assign(&s);
            }
        }
        acc.coeff()
    }

    fn check_level(&self, other: &Self) -> Result<(), BgvError> {
        if self.level() != other.level() {
            return Err(BgvError::LevelMismatch {
                left: self.level(),
                right: other.level(),
            });
        }
        Ok(())
    }
}

/// `log2(2^a + 2^b)` without overflow.
fn log2_sum(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + 2f64.powf(lo - hi)).log2()
}

/// The NTT transform of `x^k` in `R_{Q_l}` (with `x^{k} = -x^{k-N}` for
/// `k ≥ N`). `k` must be in `(0, 2N)`.
fn ntt_monomial(ctx: &Arc<RnsContext>, level: usize, k: usize) -> RnsPoly {
    let n = ctx.degree();
    debug_assert!(k > 0 && k < 2 * n);
    let (idx, negate) = if k < n { (k, false) } else { (k - n, true) };
    let residues: Vec<Vec<u64>> = ctx.moduli()[..level]
        .iter()
        .map(|m| {
            let mut r = vec![0u64; n];
            r[idx] = if negate { m.neg(1) } else { 1 };
            r
        })
        .collect();
    let mut p = RnsPoly::from_residues(ctx.clone(), Representation::Coefficient, residues);
    p.to_ntt();
    p
}

/// Negacyclic rotation: multiplies a coefficient-domain polynomial by `x^k`.
fn rotate_negacyclic(p: &RnsPoly, k: usize) -> RnsPoly {
    let ctx = p.context().clone();
    let n = ctx.degree();
    let k = k % (2 * n);
    let residues: Vec<Vec<u64>> = p
        .residues()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let m = ctx.moduli()[i];
            let mut out = vec![0u64; n];
            for (j, &c) in r.iter().enumerate() {
                let pos = j + k;
                let (idx, negate) = if pos < n {
                    (pos, false)
                } else if pos < 2 * n {
                    (pos - n, true)
                } else {
                    (pos - 2 * n, false)
                };
                out[idx] = if negate { m.neg(c) } else { c };
            }
            out
        })
        .collect();
    RnsPoly::from_residues(ctx, Representation::Coefficient, residues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeySet;
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn setup() -> (BgvParams, KeySet, StdRng) {
        let params = BgvParams::test_small();
        let mut rng = StdRng::seed_from_u64(7);
        let ks = KeySet::generate(&params, &mut rng);
        (params, ks, rng)
    }

    fn monomial(n: usize, t: u64, a: usize) -> Plaintext {
        let mut c = vec![0u64; n];
        c[a] = 1;
        Plaintext::new(c, t).unwrap()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (params, ks, mut rng) = setup();
        let coeffs: Vec<u64> = (0..params.n as u64)
            .map(|i| i % params.plaintext_modulus)
            .collect();
        let pt = Plaintext::new(coeffs.clone(), params.plaintext_modulus).unwrap();
        let ct = Ciphertext::encrypt(&ks.public, &pt, &mut rng).unwrap();
        assert_eq!(ct.decrypt(&ks.secret).coeffs(), coeffs.as_slice());
        let (_, noise, budget) = ct.decrypt_with_noise(&ks.secret);
        assert!(budget > 100.0, "fresh budget {budget}");
        assert!(
            noise <= ct.noise_log2() + 1.0,
            "tracked bound must dominate"
        );
    }

    #[test]
    fn homomorphic_addition() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let a = monomial(params.n, t, 3);
        let b = monomial(params.n, t, 3);
        let ca = Ciphertext::encrypt(&ks.public, &a, &mut rng).unwrap();
        let cb = Ciphertext::encrypt(&ks.public, &b, &mut rng).unwrap();
        let sum = ca.add(&cb).unwrap().decrypt(&ks.secret);
        // x^3 + x^3 = 2x^3: histogram bin 3 has count 2.
        assert_eq!(sum.coeffs()[3], 2);
        assert!(sum
            .coeffs()
            .iter()
            .enumerate()
            .all(|(i, &c)| i == 3 || c == 0));
    }

    #[test]
    fn add_assign_matches_add() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ca = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 1), &mut rng).unwrap();
        let cb = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 2), &mut rng).unwrap();
        let want = ca.add(&cb).unwrap();
        let mut got = ca.clone();
        got.add_assign(&cb).unwrap();
        for (a, b) in want.parts().iter().zip(got.parts()) {
            assert_eq!(a, b);
        }
        assert_eq!(want.noise_log2(), got.noise_log2());
        // Degree-2 into degree-1 accumulator extends the parts vector.
        let prod = ca.mul(&cb).unwrap();
        let want = ca.add(&prod).unwrap();
        let mut got = ca.clone();
        got.add_assign(&prod).unwrap();
        assert_eq!(got.parts().len(), 3);
        for (a, b) in want.parts().iter().zip(got.parts()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn homomorphic_multiplication_adds_exponents() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ca = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 5), &mut rng).unwrap();
        let cb = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 7), &mut rng).unwrap();
        let prod = ca.mul(&cb).unwrap();
        assert_eq!(prod.degree(), 2);
        // Decryption works on degree-2 ciphertexts directly.
        let pt = prod.decrypt(&ks.secret);
        assert_eq!(pt.coeffs()[12], 1, "x^5 · x^7 = x^12");
        assert_eq!(pt.coeffs().iter().sum::<u64>(), 1);
    }

    #[test]
    fn relinearization_preserves_plaintext() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ca = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 2), &mut rng).unwrap();
        let cb = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 4), &mut rng).unwrap();
        let prod = ca.mul(&cb).unwrap().relinearize(&ks.relin).unwrap();
        assert_eq!(prod.degree(), 1);
        let pt = prod.decrypt(&ks.secret);
        assert_eq!(pt.coeffs()[6], 1);
        let (_, _, budget) = prod.decrypt_with_noise(&ks.secret);
        assert!(budget > 0.0, "budget after relin {budget}");
    }

    #[test]
    fn mod_switch_preserves_plaintext_and_cuts_noise() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ca = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 2), &mut rng).unwrap();
        let cb = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 4), &mut rng).unwrap();
        let prod = ca.mul(&cb).unwrap().relinearize(&ks.relin).unwrap();
        let (_, noise_before, _) = prod.decrypt_with_noise(&ks.secret);
        let switched = prod.mod_switch_down().unwrap();
        assert_eq!(switched.level(), params.levels - 1);
        let (pt, noise_after, _) = switched.decrypt_with_noise(&ks.secret);
        assert_eq!(pt.coeffs()[6], 1);
        assert!(
            noise_after < noise_before - 20.0,
            "noise {noise_before} -> {noise_after}"
        );
    }

    #[test]
    fn multiplication_chain_with_leveling() {
        // The core Mycelium operation: multiply d monomial ciphertexts
        // sequentially (one per neighbor), switching after each.
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let d = 4;
        let mut acc = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 1), &mut rng).unwrap();
        for _ in 0..d {
            let fresh =
                Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 1), &mut rng).unwrap();
            let fresh = fresh.mod_switch_to(acc.level()).unwrap();
            acc = acc
                .mul(&fresh)
                .unwrap()
                .relinearize(&ks.relin)
                .unwrap()
                .mod_switch_down()
                .unwrap();
        }
        let (pt, _, budget) = acc.decrypt_with_noise(&ks.secret);
        assert!(budget > 0.0, "budget {budget}");
        assert_eq!(pt.coeffs()[1 + d], 1, "x^1 · x^4 more = x^5");
    }

    #[test]
    fn histogram_aggregation() {
        // Sum of monomial encryptions = encrypted histogram (§4.1).
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let values = [0usize, 1, 1, 2, 2, 2, 5];
        let mut acc = Ciphertext::zero(&ks.public);
        for &v in &values {
            let ct = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, v), &mut rng).unwrap();
            acc = acc.add(&ct).unwrap();
        }
        let hist = acc.decrypt(&ks.secret);
        assert_eq!(hist.coeffs()[0], 1);
        assert_eq!(hist.coeffs()[1], 2);
        assert_eq!(hist.coeffs()[2], 3);
        assert_eq!(hist.coeffs()[5], 1);
        assert_eq!(hist.coeffs()[3], 0);
    }

    #[test]
    fn monomial_multiplication_is_noise_free() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ct = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 3), &mut rng).unwrap();
        let (_, noise_before, _) = ct.decrypt_with_noise(&ks.secret);
        let shifted = ct.mul_monomial(10);
        let (pt, noise_after, _) = shifted.decrypt_with_noise(&ks.secret);
        assert_eq!(pt.coeffs()[13], 1);
        assert!((noise_after - noise_before).abs() < 1.0);
        // Wrapping past N negates: x^{N-1} · x^2 = -x^1 = (t-1)·x^1 mod t.
        let top = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, params.n - 1), &mut rng)
            .unwrap();
        let wrapped = top.mul_monomial(2).decrypt(&ks.secret);
        assert_eq!(wrapped.coeffs()[1], t - 1);
    }

    #[test]
    fn mul_plain_scales() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ct = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 2), &mut rng).unwrap();
        let mut scale = vec![0u64; params.n];
        scale[0] = 3;
        let scaled = ct
            .mul_plain(&Plaintext::new(scale, t).unwrap())
            .unwrap()
            .decrypt(&ks.secret);
        assert_eq!(scaled.coeffs()[2], 3);
    }

    #[test]
    fn prepared_plaintext_matches_direct_ops() {
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ct = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 2), &mut rng).unwrap();
        let mut coeffs = vec![0u64; params.n];
        coeffs[0] = 3;
        coeffs[1] = t - 1;
        let pt = Plaintext::new(coeffs, t).unwrap();
        let prepared =
            PreparedPlaintext::prepare(&pt, ct.parts()[0].context(), ct.level()).unwrap();
        // Prepared and direct paths must agree bit-for-bit.
        let direct = ct.mul_plain(&pt).unwrap();
        let via_prep = ct.mul_plain_prepared(&prepared).unwrap();
        for (a, b) in direct.parts().iter().zip(via_prep.parts()) {
            assert_eq!(a, b);
        }
        let direct = ct.add_plain(&pt).unwrap();
        let via_prep = ct.add_plain_prepared(&prepared).unwrap();
        for (a, b) in direct.parts().iter().zip(via_prep.parts()) {
            assert_eq!(a, b);
        }
        assert_eq!(
            ct.mul_plain(&pt).unwrap().decrypt(&ks.secret).coeffs()[2],
            3
        );
    }

    #[test]
    fn prepared_plaintext_rejects_bad_length() {
        let (params, ks, _) = setup();
        let pt = Plaintext::new(vec![1u64; params.n / 2], params.plaintext_modulus).unwrap();
        assert!(matches!(
            PreparedPlaintext::prepare(&pt, ks.public.context(), params.levels),
            Err(BgvError::PlaintextLength { .. })
        ));
    }

    #[test]
    fn monomial_shift_full_period_is_identity() {
        // x^{2N} = 1: shifting by 2N (or 0) returns the same ciphertext.
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let ct = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 4), &mut rng).unwrap();
        let same = ct.mul_monomial(2 * params.n);
        for (a, b) in ct.parts().iter().zip(same.parts()) {
            assert_eq!(a, b);
        }
        // Shifting by N negates everything: x^4 · x^N = -x^4.
        let negated = ct.mul_monomial(params.n).decrypt(&ks.secret);
        assert_eq!(negated.coeffs()[4], t - 1);
    }

    #[test]
    fn level_mismatch_rejected() {
        let (_, ks, mut rng) = setup();
        let t = ks.public.params.plaintext_modulus;
        let n = ks.public.params.n;
        let a = Ciphertext::encrypt(&ks.public, &monomial(n, t, 0), &mut rng).unwrap();
        let b = a.mod_switch_down().unwrap();
        assert!(matches!(a.add(&b), Err(BgvError::LevelMismatch { .. })));
    }

    #[test]
    fn plaintext_validation() {
        assert!(Plaintext::new(vec![5], 4).is_err());
        assert!(Plaintext::new(vec![3], 4).is_ok());
    }

    #[test]
    fn noise_estimate_dominates_reality() {
        // The analytic tracker must always upper-bound the measured noise.
        let (params, ks, mut rng) = setup();
        let t = params.plaintext_modulus;
        let a = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 1), &mut rng).unwrap();
        let b = Ciphertext::encrypt(&ks.public, &monomial(params.n, t, 2), &mut rng).unwrap();
        let steps: Vec<Ciphertext> = vec![
            a.add(&b).unwrap(),
            a.mul(&b).unwrap(),
            a.mul(&b).unwrap().relinearize(&ks.relin).unwrap(),
            a.mul(&b)
                .unwrap()
                .relinearize(&ks.relin)
                .unwrap()
                .mod_switch_down()
                .unwrap(),
        ];
        for (i, ct) in steps.iter().enumerate() {
            let (_, measured, _) = ct.decrypt_with_noise(&ks.secret);
            assert!(
                measured <= ct.noise_log2() + 1.0,
                "step {i}: measured {measured} > tracked {}",
                ct.noise_log2()
            );
        }
    }
}
