//! Analytic noise planning for query feasibility (§6.2).
//!
//! The query planner must decide *before* running a query whether the HE
//! scheme can execute its multiplication chain — this is exactly the check
//! that makes Q1 (a 2-hop query with `d² = 100` multiplications) infeasible
//! in the paper while every other query runs. The model mirrors the noise
//! bookkeeping in [`crate::ciphertext`] and is validated against measured
//! noise in the tests there.

use crate::params::BgvParams;

/// Outcome of planning a multiplication chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPlan {
    /// Number of sequential multiplications requested.
    pub muls: usize,
    /// Whether the chain fits the noise budget.
    pub feasible: bool,
    /// Predicted noise (log2) at the end of the chain.
    pub final_noise_log2: f64,
    /// Predicted remaining budget in bits (negative if infeasible).
    pub final_budget_bits: f64,
    /// Level the chain ends at.
    pub final_level: usize,
}

/// Plans a sequential chain of `muls` ciphertext multiplications with
/// relinearize + mod-switch after each (the §4.4 local-aggregation shape:
/// one multiplication per neighbor contribution).
pub fn plan_chain(params: &BgvParams, muls: usize) -> ChainPlan {
    let mut noise = params.fresh_noise_log2();
    let mut level = params.levels;
    let log_n = (params.n as f64).log2();
    let t_log = (params.plaintext_modulus as f64).log2();
    let mut feasible = true;
    for _ in 0..muls {
        // Multiply with a fresh ciphertext brought down to this level.
        noise = log_n + noise + params.fresh_noise_log2();
        // Relinearization adds its key-switching term.
        let ks = t_log + params.prime_bits as f64 + (level as f64).log2() + log_n + 4.5;
        noise = log2_sum(noise, ks);
        // Check budget at this level before switching.
        if noise + 1.0 >= params.prime_bits as f64 * level as f64 {
            feasible = false;
            break;
        }
        // Modulus switch (if a level remains).
        if level > 1 {
            level -= 1;
            noise = log2_sum(noise - params.prime_bits as f64, t_log + log_n);
        } else {
            // No levels left: subsequent multiplications pile up raw noise.
        }
    }
    let budget = params.prime_bits as f64 * level as f64 - 1.0 - noise;
    ChainPlan {
        muls,
        feasible: feasible && budget > 0.0,
        final_noise_log2: noise,
        final_budget_bits: budget,
        final_level: level,
    }
}

/// Number of homomorphic multiplications a `k`-hop query with degree bound
/// `d` performs along one root-to-leaf aggregation path (the paper counts
/// `d^k`: Q1 with `d = 10`, `k = 2` needs 100).
pub fn query_mul_count(degree_bound: usize, hops: usize) -> usize {
    degree_bound.pow(hops as u32)
}

/// Whether a `k`-hop query with degree bound `d` is feasible under the
/// given parameters (the §6.2 generality check).
pub fn query_feasible(params: &BgvParams, degree_bound: usize, hops: usize) -> bool {
    plan_chain(params, query_mul_count(degree_bound, hops)).feasible
}

fn log2_sum(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + 2f64.powf(lo - hi)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_muls_is_fresh() {
        let p = BgvParams::test_small();
        let plan = plan_chain(&p, 0);
        assert!(plan.feasible);
        assert_eq!(plan.final_level, p.levels);
        assert!((plan.final_noise_log2 - p.fresh_noise_log2()).abs() < 1e-9);
    }

    #[test]
    fn budget_decreases_with_depth() {
        let p = BgvParams::test_medium();
        let mut last = f64::INFINITY;
        for muls in 0..6 {
            let plan = plan_chain(&p, muls);
            assert!(plan.final_budget_bits < last);
            last = plan.final_budget_bits;
        }
    }

    #[test]
    fn paper_generality_result() {
        // §6.2: every 1-hop query (≤ d = 10 multiplications) runs; the
        // 2-hop Q1 (100 multiplications) exceeds the noise budget.
        let p = BgvParams::paper();
        assert!(query_feasible(&p, 10, 1), "1-hop queries must be feasible");
        assert!(!query_feasible(&p, 10, 2), "Q1 must be infeasible");
    }

    #[test]
    fn mul_counts() {
        assert_eq!(query_mul_count(10, 1), 10);
        assert_eq!(query_mul_count(10, 2), 100);
        assert_eq!(query_mul_count(3, 3), 27);
    }

    #[test]
    fn infeasible_chain_reports_negative_budget() {
        let p = BgvParams::test_small();
        let plan = plan_chain(&p, 100);
        assert!(!plan.feasible);
        assert!(plan.final_budget_bits < 0.0);
    }

    #[test]
    fn deeper_chains_need_more_levels() {
        let mut p = BgvParams::test_medium();
        let shallow = plan_chain(&p, 3);
        assert!(shallow.feasible);
        p.levels = 3;
        let constrained = plan_chain(&p, 3);
        assert!(!constrained.feasible || constrained.final_budget_bits < shallow.final_budget_bits);
    }
}
