//! The `x^a` histogram encoding (§4.1) and its query-language extensions.
//!
//! * A contribution `a` is the monomial `x^a`. Homomorphic multiplication
//!   adds exponents; homomorphic addition of many origin-vertex results
//!   yields a polynomial whose `i`-th coefficient counts how many origins
//!   computed `i` — an encrypted histogram.
//! * Coarser bins are formed by summing coefficient ranges after decryption.
//! * `GROUP BY` packs one histogram window per group value into a single
//!   ciphertext (§4.5): group `g` occupies coefficients
//!   `[g·w, (g+1)·w)`; a vertex shifts its contribution into its own window
//!   with a (noise-free) monomial multiplication.
//! * Cross-column comparisons (§4.5) report a *sequence* of ciphertexts,
//!   one per value in the discrete comparison range, with `Enc(x^m)` in the
//!   matching position and `Enc(1)` elsewhere; the origin sums a
//!   subsequence and subtracts `Enc(ℓ-1)`.
//! * `GSUM` clipping (§4.4): after decryption the committee computes
//!   `Σ_{i=a+1}^{b-1} i·p_i + a·Σ_{i≤a} p_i + b·Σ_{i≥b} p_i`.

use std::sync::Arc;

use mycelium_math::rns::RnsContext;

use crate::ciphertext::{BgvError, Plaintext, PreparedPlaintext};

/// Encodes the value `a` as the monomial plaintext `x^a`.
///
/// Returns an error if `a ≥ n` (more bins than the ring degree — the
/// encoding's first limitation listed in §4.1).
pub fn encode_monomial(a: usize, n: usize, t: u64) -> Result<Plaintext, BgvError> {
    if a >= n {
        return Err(BgvError::PlaintextLength { got: a, want: n });
    }
    let mut coeffs = vec![0u64; n];
    coeffs[a] = 1;
    Plaintext::new(coeffs, t)
}

/// Encodes `x^a` pre-lifted into NTT representation at `level`.
///
/// Selection masks and per-group shifts multiply the *same* monomial
/// against many ciphertexts; preparing once amortizes the lift and forward
/// transform (and the Shoup precomputation) across all of them.
pub fn encode_monomial_prepared(
    a: usize,
    ctx: &Arc<RnsContext>,
    level: usize,
    t: u64,
) -> Result<PreparedPlaintext, BgvError> {
    let pt = encode_monomial(a, ctx.degree(), t)?;
    PreparedPlaintext::prepare(&pt, ctx, level)
}

/// Encodes the multiplicative identity `x^0 = 1` (a contribution of zero,
/// and the §4.4 default for dropped-out or predicate-false vertices).
pub fn encode_one(n: usize, t: u64) -> Plaintext {
    encode_monomial(0, n, t).expect("0 < n")
}

/// Encodes the additive identity (the all-zero plaintext, used when a
/// `self` predicate fails at final processing, §4.4).
pub fn encode_zero(n: usize, t: u64) -> Plaintext {
    Plaintext::zero(n, t)
}

/// Encodes the constant `c` at coefficient zero.
pub fn encode_constant(c: u64, n: usize, t: u64) -> Result<Plaintext, BgvError> {
    let mut coeffs = vec![0u64; n];
    coeffs[0] = c % t;
    Plaintext::new(coeffs, t)
}

/// Reads the decrypted histogram: coefficient `i` is the number of origin
/// vertices whose local result was `i`.
pub fn decode_histogram(pt: &Plaintext, max_value: usize) -> Vec<u64> {
    pt.coeffs()[..max_value.min(pt.coeffs().len())].to_vec()
}

/// Sums histogram counts into the caller's (half-open) bins, e.g.
/// `[0..3), [3..6), [6..N)` for the "0–2 / 3–5 / more" example of §4.1.
pub fn bin_histogram(counts: &[u64], bins: &[std::ops::Range<usize>]) -> Vec<u64> {
    bins.iter()
        .map(|r| {
            counts[r.start.min(counts.len())..r.end.min(counts.len())]
                .iter()
                .sum()
        })
        .collect()
}

/// The §4.4 `GSUM` clipped sum over a decrypted coefficient vector:
/// values below `a` count as `a`, above `b` as `b`.
///
/// # Panics
///
/// Panics if `a > b`.
pub fn clipped_sum(counts: &[u64], a: u64, b: u64) -> u64 {
    assert!(a <= b, "clipping range must satisfy a <= b");
    let mut total = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        let v = (i as u64).clamp(a, b);
        total += v * c;
    }
    total
}

/// Layout of `GROUP BY` windows inside a single plaintext polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    /// Number of groups.
    pub groups: usize,
    /// Window width (bins per group).
    pub window: usize,
}

impl GroupLayout {
    /// Creates a layout, checking it fits the ring degree.
    pub fn new(groups: usize, window: usize, n: usize) -> Result<Self, BgvError> {
        if groups == 0 || window == 0 || groups * window > n {
            return Err(BgvError::PlaintextLength {
                got: groups * window,
                want: n,
            });
        }
        Ok(Self { groups, window })
    }

    /// The monomial shift that moves a local value into group `g`'s window.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn offset(&self, g: usize) -> usize {
        assert!(g < self.groups, "group index out of range");
        g * self.window
    }

    /// Splits a decrypted coefficient vector into per-group histograms.
    pub fn split(&self, counts: &[u64]) -> Vec<Vec<u64>> {
        (0..self.groups)
            .map(|g| {
                let start = self.offset(g);
                counts[start..(start + self.window).min(counts.len())].to_vec()
            })
            .collect()
    }
}

/// The §4.5 sequence encoding for a cross-column comparison.
///
/// For a `BETWEEN`-bounded column value `m ∈ [lo, hi]`, the destination
/// reports one plaintext per value in the range: `x^m` at the position of
/// `m`, and `1` everywhere else. Returns an error when `m` is outside the
/// range or the monomial does not fit.
pub fn encode_sequence(
    m: usize,
    lo: usize,
    hi: usize,
    n: usize,
    t: u64,
) -> Result<Vec<Plaintext>, BgvError> {
    if m < lo || m > hi {
        return Err(BgvError::PlaintextOutOfRange {
            value: m as u64,
            modulus: (hi + 1) as u64,
        });
    }
    (lo..=hi)
        .map(|v| {
            if v == m {
                encode_monomial(m, n, t)
            } else {
                Ok(encode_one(n, t))
            }
        })
        .collect()
}

/// Number of ciphertexts a sequence encoding requires (`hi - lo + 1`) —
/// the quantity Figure 6 reports per query.
pub fn sequence_length(lo: usize, hi: usize) -> usize {
    hi.saturating_sub(lo) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphertext::Ciphertext;
    use crate::keys::KeySet;
    use crate::params::BgvParams;
    use mycelium_math::rng::{SeedableRng, StdRng};

    #[test]
    fn monomial_bounds() {
        assert!(encode_monomial(1023, 1024, 16).is_ok());
        assert!(encode_monomial(1024, 1024, 16).is_err());
        let pt = encode_monomial(5, 16, 4).unwrap();
        assert_eq!(pt.coeffs()[5], 1);
        assert_eq!(pt.coeffs().iter().sum::<u64>(), 1);
    }

    #[test]
    fn histogram_binning() {
        let counts = vec![1, 2, 3, 4, 5, 6, 7];
        let bins = bin_histogram(&counts, &[0..3, 3..6, 6..100]);
        assert_eq!(bins, vec![6, 15, 7]);
    }

    #[test]
    fn clipped_sum_cases() {
        // Counts: one origin with value 0, two with value 3, one with 10.
        let mut counts = vec![0u64; 16];
        counts[0] = 1;
        counts[3] = 2;
        counts[10] = 1;
        // Unclipped sum = 0 + 6 + 10 = 16.
        assert_eq!(clipped_sum(&counts, 0, 15), 16);
        // Clip to [1, 5]: 1 + 3 + 3 + 5 = 12.
        assert_eq!(clipped_sum(&counts, 1, 5), 12);
        // Clip to [4, 4]: everything is 4: 16.
        assert_eq!(clipped_sum(&counts, 4, 4), 16);
    }

    #[test]
    #[should_panic(expected = "a <= b")]
    fn clip_rejects_inverted_range() {
        clipped_sum(&[1], 5, 2);
    }

    #[test]
    fn group_layout() {
        let l = GroupLayout::new(4, 8, 64).unwrap();
        assert_eq!(l.offset(0), 0);
        assert_eq!(l.offset(3), 24);
        assert!(GroupLayout::new(4, 20, 64).is_err());
        let mut counts = vec![0u64; 64];
        counts[2] = 5; // Group 0, value 2.
        counts[26] = 7; // Group 3, value 2.
        let split = l.split(&counts);
        assert_eq!(split[0][2], 5);
        assert_eq!(split[3][2], 7);
        assert_eq!(split[1].iter().sum::<u64>(), 0);
    }

    #[test]
    fn sequence_encoding_shape() {
        let seq = encode_sequence(7, 5, 14, 32, 16).unwrap();
        assert_eq!(seq.len(), sequence_length(5, 14));
        assert_eq!(seq.len(), 10);
        for (i, pt) in seq.iter().enumerate() {
            let v = 5 + i;
            if v == 7 {
                assert_eq!(pt.coeffs()[7], 1);
                assert_eq!(pt.coeffs()[0], 0);
            } else {
                assert_eq!(pt.coeffs()[0], 1);
            }
        }
        assert!(encode_sequence(3, 5, 14, 32, 16).is_err());
    }

    #[test]
    fn sequence_combination_end_to_end() {
        // §4.5 worked example: subsequence of length 3 containing
        // Enc(1), Enc(x^m), Enc(1) sums to Enc(2 + x^m); subtracting
        // Enc(2) leaves exactly Enc(x^m).
        let params = BgvParams::test_small();
        let mut rng = StdRng::seed_from_u64(11);
        let ks = KeySet::generate_with_relin_levels(&params, &[], &mut rng);
        let t = params.plaintext_modulus;
        let m = 9usize;
        let seq = encode_sequence(m, 8, 10, params.n, t).unwrap();
        let cts: Vec<Ciphertext> = seq
            .iter()
            .map(|pt| Ciphertext::encrypt(&ks.public, pt, &mut rng).unwrap())
            .collect();
        let mut sum = cts[0].clone();
        for ct in &cts[1..] {
            sum = sum.add(ct).unwrap();
        }
        let ell = cts.len() as u64;
        let correction = encode_constant(ell - 1, params.n, t).unwrap();
        let result = sum.sub_plain(&correction).unwrap().decrypt(&ks.secret);
        assert_eq!(result.coeffs()[m], 1);
        assert_eq!(result.coeffs().iter().sum::<u64>(), 1);
    }

    #[test]
    fn prepared_monomial_matches_direct_multiply() {
        let params = BgvParams::test_small();
        let mut rng = StdRng::seed_from_u64(13);
        let ks = KeySet::generate_with_relin_levels(&params, &[], &mut rng);
        let t = params.plaintext_modulus;
        let ct = Ciphertext::encrypt(
            &ks.public,
            &encode_monomial(2, params.n, t).unwrap(),
            &mut rng,
        )
        .unwrap();
        let prepared = encode_monomial_prepared(5, ks.public.context(), ct.level(), t).unwrap();
        let direct = ct
            .mul_plain(&encode_monomial(5, params.n, t).unwrap())
            .unwrap();
        let via_prep = ct.mul_plain_prepared(&prepared).unwrap();
        for (a, b) in direct.parts().iter().zip(via_prep.parts()) {
            assert_eq!(a, b);
        }
        assert_eq!(via_prep.decrypt(&ks.secret).coeffs()[7], 1);
        assert!(encode_monomial_prepared(params.n, ks.public.context(), 1, t).is_err());
    }

    #[test]
    fn group_shift_end_to_end() {
        // A 20-year-old origin (group 1 of 4) shifts its count x^3 into
        // window [8, 16); the aggregate splits back per group.
        let params = BgvParams::test_small();
        let mut rng = StdRng::seed_from_u64(12);
        let ks = KeySet::generate_with_relin_levels(&params, &[], &mut rng);
        let t = params.plaintext_modulus;
        let layout = GroupLayout::new(4, 8, params.n).unwrap();
        let local = encode_monomial(3, params.n, t).unwrap();
        let ct = Ciphertext::encrypt(&ks.public, &local, &mut rng).unwrap();
        let shifted = ct.mul_monomial(layout.offset(1));
        let decrypted = shifted.decrypt(&ks.secret);
        let groups = layout.split(decrypted.coeffs());
        assert_eq!(groups[1][3], 1);
        assert_eq!(groups[0].iter().sum::<u64>(), 0);
        assert_eq!(groups[2].iter().sum::<u64>(), 0);
    }
}
