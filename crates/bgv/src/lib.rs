//! BGV leveled homomorphic encryption (Brakerski–Gentry–Vaikuntanathan).
//!
//! Mycelium's local query phase aggregates neighbor contributions under
//! encryption: a contribution `a` is encoded as the monomial `x^a`, so that
//! homomorphic *multiplication* adds bin indices (`x^a · x^b = x^{a+b}`) and
//! homomorphic *addition* accumulates histograms
//! (`Σ_i x^{a_i}` has the count of value `v` as its `v`-th coefficient) —
//! §4.1 of the paper. This crate implements the full scheme from scratch:
//!
//! * [`params`] — parameter sets, including the paper-scale preset
//!   (`N = 32768`, `t = 2^30`) and smaller test presets.
//! * [`keys`] — key generation: secret, public, and relinearization keys
//!   (one RNS-gadget key-switching key per prime per level).
//! * [`ciphertext`] — ciphertexts with homomorphic add/sub/mul,
//!   relinearization, and BGV modulus switching.
//! * [`encoding`] — the `x^a` monomial/histogram encoding, GROUP BY window
//!   packing, and the §4.5 sequence encoding for cross-column comparisons.
//! * [`noise`] — an analytic noise-bound tracker plus exact noise
//!   measurement against the secret key (used to reproduce the §6.2
//!   generality result: Q1's 100 multiplications exhaust the budget).

pub mod ciphertext;
pub mod encoding;
pub mod keys;
pub mod noise;
pub mod params;

pub use ciphertext::{BgvError, Ciphertext, Plaintext, PreparedPlaintext};
pub use keys::{KeySet, PublicKey, RelinKey, SecretKey};
pub use params::BgvParams;
