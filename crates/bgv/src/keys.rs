//! BGV key generation.
//!
//! A key set consists of:
//! * the **secret key** `s` — a ternary ring element,
//! * the **public key** `(b, a)` with `b = -(a·s) + t·e`, and
//! * the **relinearization keys** — for each level `l` and each chain prime
//!   `q_j` active at `l`, an encryption of `ĝ_{l,j} · s²` under `s`, where
//!   `ĝ_{l,j} = Q_l / q_j` is the RNS gadget. Key-switching a degree-2
//!   ciphertext term multiplies its RNS decomposition digits against these
//!   keys (§4.2 / §5: Mycelium's committees generate *all* keys once,
//!   including relinearization keys, and hand the decryption key between
//!   committees with VSR instead of regenerating per query).

use std::collections::HashMap;
use std::sync::Arc;

use mycelium_math::rng::Rng;
use mycelium_math::rns::{Representation, RnsContext, RnsPoly, ShoupPrecomp};
use mycelium_math::sample;

use crate::params::BgvParams;

/// The BGV secret key.
#[derive(Debug, Clone)]
pub struct SecretKey {
    /// `s` as signed ternary coefficients. Because the coefficients are
    /// tiny, the key is represented exactly at *every* level of the chain,
    /// which is what lets the threshold layer share it coefficient-wise.
    s_coeffs: Vec<i64>,
    params: BgvParams,
    ctx: Arc<RnsContext>,
}

/// The BGV public (encryption) key `(b, a)`.
///
/// Both components carry Shoup constants ([`ShoupPrecomp`]): every
/// encryption multiplies them pointwise against the ephemeral secret, so
/// the one-time precomputation at keygen pays for itself on the first
/// encryption.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// `b = -(a·s) + t·e`, NTT representation, top level.
    b: ShoupPrecomp,
    /// Uniform `a`, NTT representation, top level.
    a: ShoupPrecomp,
    /// Parameters (carried so ciphertexts can be built from the key alone).
    pub params: BgvParams,
    ctx: Arc<RnsContext>,
}

/// Relinearization (key-switching) keys, indexed by level.
#[derive(Debug, Clone, Default)]
pub struct RelinKey {
    /// `keys[&l][j] = (b_{l,j}, a_{l,j})` at level `l`, NTT representation
    /// with Shoup constants (key switching multiply-accumulates decomposed
    /// digits against these on every relinearization), where
    /// `b_{l,j} = -(a·s) + t·e + ĝ_{l,j}·s²`.
    keys: HashMap<usize, Vec<(ShoupPrecomp, ShoupPrecomp)>>,
}

/// A complete BGV key set.
#[derive(Debug, Clone)]
pub struct KeySet {
    /// Secret key (held by the committee in the full system).
    pub secret: SecretKey,
    /// Public encryption key (distributed to every device).
    pub public: PublicKey,
    /// Relinearization keys (published; needed by whoever relinearizes —
    /// in Mycelium, the aggregator, since relinearization is deferred, §5).
    pub relin: RelinKey,
}

impl SecretKey {
    /// Samples a fresh ternary secret key.
    pub fn generate<R: Rng + ?Sized>(
        params: &BgvParams,
        ctx: &Arc<RnsContext>,
        rng: &mut R,
    ) -> Self {
        let s_coeffs = sample::ternary_coeffs(ctx.degree(), rng);
        Self::from_coeffs(params, ctx, s_coeffs)
    }

    /// Reconstructs a secret key from its signed coefficients (used by the
    /// threshold-decryption layer after Shamir reconstruction).
    pub fn from_coeffs(params: &BgvParams, ctx: &Arc<RnsContext>, s_coeffs: Vec<i64>) -> Self {
        Self {
            s_coeffs,
            params: params.clone(),
            ctx: ctx.clone(),
        }
    }

    /// The secret `s` in NTT representation at the given level.
    pub fn s_at_level(&self, level: usize) -> RnsPoly {
        let mut s = RnsPoly::from_signed(self.ctx.clone(), level, &self.s_coeffs);
        s.to_ntt();
        s
    }

    /// The signed ternary coefficients of `s`.
    pub fn coefficients(&self) -> &[i64] {
        &self.s_coeffs
    }

    /// The parameter set.
    pub fn params(&self) -> &BgvParams {
        &self.params
    }

    /// The RNS context.
    pub fn context(&self) -> &Arc<RnsContext> {
        &self.ctx
    }

    /// Generates the public key for this secret.
    pub fn public_key<R: Rng + ?Sized>(&self, rng: &mut R) -> PublicKey {
        let level = self.ctx.max_level();
        let mut a = sample::uniform_rns(&self.ctx, level, rng);
        a.to_ntt();
        let mut e = sample::gaussian_rns(&self.ctx, level, self.params.sigma, rng);
        e.to_ntt();
        let s = self.s_at_level(level);
        // b = -(a·s) + t·e.
        let b = a
            .mul(&s)
            .neg()
            .add(&e.scalar_mul(self.params.plaintext_modulus));
        PublicKey {
            b: ShoupPrecomp::new(b),
            a: ShoupPrecomp::new(a),
            params: self.params.clone(),
            ctx: self.ctx.clone(),
        }
    }

    /// Generates relinearization keys for the given levels.
    pub fn relin_keys<R: Rng + ?Sized>(&self, levels: &[usize], rng: &mut R) -> RelinKey {
        let mut keys = HashMap::new();
        for &l in levels {
            assert!(l >= 1 && l <= self.ctx.max_level(), "invalid level {l}");
            let s = self.s_at_level(l);
            let s2 = s.mul(&s);
            let pre = self.ctx.level(l);
            let mut level_keys = Vec::with_capacity(l);
            for j in 0..l {
                let mut a = sample::uniform_rns(&self.ctx, l, rng);
                a.to_ntt();
                let mut e = sample::gaussian_rns(&self.ctx, l, self.params.sigma, rng);
                e.to_ntt();
                // Gadget constant ĝ_{l,j} = Q_l/q_j as an RNS scalar.
                let n = self.ctx.degree();
                let gadget_res: Vec<Vec<u64>> = (0..l)
                    .map(|i| {
                        let mut v = vec![0u64; n];
                        v[0] = pre.qhat_mod[j][i];
                        v
                    })
                    .collect();
                let mut g = RnsPoly::from_residues(
                    self.ctx.clone(),
                    Representation::Coefficient,
                    gadget_res,
                );
                g.to_ntt();
                // b = -(a·s) + t·e + ĝ·s².
                let b = a
                    .mul(&s)
                    .neg()
                    .add(&e.scalar_mul(self.params.plaintext_modulus))
                    .add(&s2.mul(&g));
                level_keys.push((ShoupPrecomp::new(b), ShoupPrecomp::new(a)));
            }
            keys.insert(l, level_keys);
        }
        RelinKey { keys }
    }

    /// Generates relinearization keys for every level of the chain.
    pub fn relin_keys_all<R: Rng + ?Sized>(&self, rng: &mut R) -> RelinKey {
        let levels: Vec<usize> = (1..=self.ctx.max_level()).collect();
        self.relin_keys(&levels, rng)
    }
}

impl PublicKey {
    /// The RNS context.
    pub fn context(&self) -> &Arc<RnsContext> {
        &self.ctx
    }

    /// The `b = -(a·s) + t·e` component with its Shoup constants.
    pub fn b(&self) -> &ShoupPrecomp {
        &self.b
    }

    /// The uniform `a` component with its Shoup constants.
    pub fn a(&self) -> &ShoupPrecomp {
        &self.a
    }
}

impl RelinKey {
    /// The key-switching key pairs for `level`, if generated.
    pub fn at_level(&self, level: usize) -> Option<&[(ShoupPrecomp, ShoupPrecomp)]> {
        self.keys.get(&level).map(|v| v.as_slice())
    }

    /// Whether key-switching keys exist for `level` (what batch callers
    /// check before committing a whole level to
    /// [`Ciphertext::relinearize_batch`](crate::Ciphertext::relinearize_batch)).
    pub fn has_level(&self, level: usize) -> bool {
        self.keys.contains_key(&level)
    }

    /// Levels for which keys are available.
    pub fn levels(&self) -> Vec<usize> {
        let mut l: Vec<usize> = self.keys.keys().copied().collect();
        l.sort_unstable();
        l
    }

    /// Merges another relin key's levels into this one.
    pub fn merge(&mut self, other: RelinKey) {
        self.keys.extend(other.keys);
    }
}

impl KeySet {
    /// Generates a complete key set with relinearization keys at every
    /// level.
    pub fn generate<R: Rng + ?Sized>(params: &BgvParams, rng: &mut R) -> Self {
        let ctx = params.build_context();
        let secret = SecretKey::generate(params, &ctx, rng);
        let public = secret.public_key(rng);
        let relin = secret.relin_keys_all(rng);
        Self {
            secret,
            public,
            relin,
        }
    }

    /// Generates a key set with relinearization keys only at the specified
    /// levels (cheaper for large parameter sets where only the top level is
    /// exercised).
    pub fn generate_with_relin_levels<R: Rng + ?Sized>(
        params: &BgvParams,
        levels: &[usize],
        rng: &mut R,
    ) -> Self {
        let ctx = params.build_context();
        let secret = SecretKey::generate(params, &ctx, rng);
        let public = secret.public_key(rng);
        let relin = secret.relin_keys(levels, rng);
        Self {
            secret,
            public,
            relin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::{SeedableRng, StdRng};

    #[test]
    fn public_key_relation() {
        // b + a·s must equal t·e (small when reduced centered).
        let params = BgvParams::test_small();
        let mut rng = StdRng::seed_from_u64(1);
        let ks = KeySet::generate_with_relin_levels(&params, &[], &mut rng);
        let s = ks.secret.s_at_level(params.levels);
        let te = ks
            .public
            .b()
            .poly()
            .add(&ks.public.a().poly().mul(&s))
            .coeff();
        let norm = te.inf_norm_big();
        // |t·e| ≤ t · 6σ.
        let bound = params.plaintext_modulus as f64 * 6.0 * params.sigma;
        assert!(norm.to_f64() <= bound, "norm {} > {}", norm.to_f64(), bound);
        // And t divides every centered coefficient (te mod t == 0).
        let mod_t = te.crt_centered_mod(params.plaintext_modulus);
        assert!(mod_t.iter().all(|&x| x == 0));
    }

    #[test]
    fn secret_key_is_ternary() {
        let params = BgvParams::test_small();
        let ctx = params.build_context();
        let mut rng = StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&params, &ctx, &mut rng);
        assert!(sk.coefficients().iter().all(|&c| (-1..=1).contains(&c)));
        assert_eq!(sk.coefficients().len(), params.n);
    }

    #[test]
    fn relin_key_levels() {
        let params = BgvParams::test_small();
        let ctx = params.build_context();
        let mut rng = StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&params, &ctx, &mut rng);
        let rk = sk.relin_keys(&[6, 4], &mut rng);
        assert_eq!(rk.levels(), vec![4, 6]);
        assert_eq!(rk.at_level(6).unwrap().len(), 6);
        assert_eq!(rk.at_level(4).unwrap().len(), 4);
        assert!(rk.at_level(5).is_none());
    }

    #[test]
    fn relin_key_encrypts_gadget_times_s_squared() {
        // b_{l,j} + a·s - ĝ_j·s² must be ≡ 0 (mod t) and small.
        let params = BgvParams::test_small();
        let ctx = params.build_context();
        let mut rng = StdRng::seed_from_u64(4);
        let sk = SecretKey::generate(&params, &ctx, &mut rng);
        let l = 3;
        let rk = sk.relin_keys(&[l], &mut rng);
        let s = sk.s_at_level(l);
        let s2 = s.mul(&s);
        let pre = ctx.level(l);
        for (j, (b, a)) in rk.at_level(l).unwrap().iter().enumerate() {
            let n = ctx.degree();
            let gadget_res: Vec<Vec<u64>> = (0..l)
                .map(|i| {
                    let mut v = vec![0u64; n];
                    v[0] = pre.qhat_mod[j][i];
                    v
                })
                .collect();
            let g =
                RnsPoly::from_residues(ctx.clone(), Representation::Coefficient, gadget_res).ntt();
            let te = b.poly().add(&a.poly().mul(&s)).sub(&s2.mul(&g)).coeff();
            let mod_t = te.crt_centered_mod(params.plaintext_modulus);
            assert!(mod_t.iter().all(|&x| x == 0), "key {j} is not well formed");
        }
    }

    #[test]
    fn from_coeffs_roundtrip() {
        let params = BgvParams::test_small();
        let ctx = params.build_context();
        let mut rng = StdRng::seed_from_u64(5);
        let sk1 = SecretKey::generate(&params, &ctx, &mut rng);
        let sk2 = SecretKey::from_coeffs(&params, &ctx, sk1.coefficients().to_vec());
        assert_eq!(sk1.s_at_level(3), sk2.s_at_level(3));
    }
}
