//! BGV parameter sets.
//!
//! The paper's prototype uses ring degree `N = 32768`, a 550-bit ciphertext
//! modulus, and plaintext modulus `t = 2^30` (§5), which gives >128-bit
//! security and supports "bin"-aggregation of over a billion values. Chain
//! primes are chosen `≡ 1 (mod lcm(2N, t))` so the negacyclic NTT exists
//! *and* modulus switching preserves plaintexts exactly.

use std::sync::Arc;

use mycelium_math::rns::RnsContext;
use mycelium_math::zq;

/// A BGV parameter set.
#[derive(Debug, Clone)]
pub struct BgvParams {
    /// Ring degree `N` (power of two). Plaintexts are polynomials of degree
    /// `< N`, so the histogram encoding supports up to `N` bins.
    pub n: usize,
    /// Plaintext modulus `t` (a power of two in this workspace). Bin counts
    /// aggregate correctly as long as they stay below `t`.
    pub plaintext_modulus: u64,
    /// Bit size of each chain prime.
    pub prime_bits: u32,
    /// Number of chain primes `L` (the maximum level).
    pub levels: usize,
    /// Standard deviation of the noise distribution.
    pub sigma: f64,
}

impl BgvParams {
    /// Paper-scale parameters (§5): `N = 32768`, `t = 2^30`, 55-bit primes.
    ///
    /// The paper reports a 550-bit modulus (10 × 55-bit primes). Our
    /// from-scratch implementation uses the same prime size but an 18-prime
    /// chain (≈990 bits) so that the degree-10 multiplication chains of the
    /// 1-hop queries fit the noise budget without the (unpublished) noise
    /// optimizations of the paper's prototype; cost models that depend on
    /// ciphertext *size* use [`BgvParams::paper_sized`]. Both presets
    /// preserve the §6.2 generality result: 1-hop queries (≤ 11 sequential
    /// multiplications) succeed and Q1 (100 multiplications) fails.
    pub fn paper() -> Self {
        Self {
            n: 32768,
            plaintext_modulus: 1 << 30,
            prime_bits: 55,
            levels: 18,
            sigma: 3.2,
        }
    }

    /// The paper's exact modulus budget (10 × 55-bit primes ≈ 550 bits),
    /// used for ciphertext-size and bandwidth cost modelling.
    pub fn paper_sized() -> Self {
        Self {
            n: 32768,
            plaintext_modulus: 1 << 30,
            prime_bits: 55,
            levels: 10,
            sigma: 3.2,
        }
    }

    /// Small parameters for unit tests: `N = 1024`, `t = 2^10`, 6 levels.
    ///
    /// NOT secure — the ring is far too small — but exercises every code
    /// path (all parameters flow through the same implementation).
    pub fn test_small() -> Self {
        Self {
            n: 1024,
            plaintext_modulus: 1 << 10,
            prime_bits: 40,
            levels: 6,
            sigma: 3.2,
        }
    }

    /// Mid-size parameters for integration tests and CI-scale benchmarks:
    /// `N = 4096`, `t = 2^16`, 12 levels of 45-bit primes.
    pub fn test_medium() -> Self {
        Self {
            n: 4096,
            plaintext_modulus: 1 << 16,
            prime_bits: 45,
            levels: 12,
            sigma: 3.2,
        }
    }

    /// Generates the modulus-chain primes for this parameter set.
    pub fn chain_primes(&self) -> Vec<u64> {
        let step = lcm(2 * self.n as u64, self.plaintext_modulus);
        zq::primes_congruent(self.prime_bits, step, self.levels)
    }

    /// Builds the RNS context for this parameter set.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (non-power-of-two ring,
    /// prime size too small for the congruence step, ...).
    pub fn build_context(&self) -> Arc<RnsContext> {
        let primes = self.chain_primes();
        RnsContext::new(self.n, &primes).expect("parameter set must yield a valid RNS context")
    }

    /// Size of one ciphertext in bytes (two ring elements at the top level).
    ///
    /// For the paper-sized preset this is ≈4.5 MB, matching the paper's
    /// reported 4.3 MB per ciphertext (§6.4).
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.n * self.levels * 8
    }

    /// `log2` of the full ciphertext modulus.
    pub fn log_q(&self) -> f64 {
        self.prime_bits as f64 * self.levels as f64
    }

    /// Rough upper bound on the number of *sequential* ciphertext
    /// multiplications this parameter set supports (the §6.2 feasibility
    /// check). Derived from the leveled noise-growth recurrence: each
    /// multiply-then-switch step multiplies the noise by
    /// `≈ N · ν_fresh / q` and consumes one level.
    pub fn max_sequential_muls(&self) -> usize {
        let fresh = self.fresh_noise_log2();
        let growth = (self.n as f64).log2() + fresh - self.prime_bits as f64;
        let mut depth = 0usize;
        let mut noise = fresh;
        // After `depth` multiplications we have dropped `depth` primes.
        while depth + 1 < self.levels {
            let next = noise + growth.max(0.5);
            let remaining = self.prime_bits as f64 * (self.levels - depth - 1) as f64;
            if next + 1.0 >= remaining {
                break;
            }
            noise = next;
            depth += 1;
        }
        depth
    }

    /// `log2` of the fresh-encryption noise bound
    /// `t · (σ√N · (2N + 1) + small)` (coarse but monotone).
    pub fn fresh_noise_log2(&self) -> f64 {
        let t = self.plaintext_modulus as f64;
        let n = self.n as f64;
        (t * (12.0 * self.sigma * n + t)).log2()
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_small_builds() {
        let p = BgvParams::test_small();
        let ctx = p.build_context();
        assert_eq!(ctx.degree(), 1024);
        assert_eq!(ctx.max_level(), 6);
    }

    #[test]
    fn chain_primes_congruence() {
        let p = BgvParams::test_small();
        let step = lcm(2 * p.n as u64, p.plaintext_modulus);
        for q in p.chain_primes() {
            assert_eq!(q % step, 1);
            assert_eq!(q % p.plaintext_modulus, 1);
            assert_eq!(q % (2 * p.n as u64), 1);
        }
    }

    #[test]
    fn paper_sized_ciphertext_matches_reported_size() {
        let p = BgvParams::paper_sized();
        let mb = p.ciphertext_bytes() as f64 / 1e6;
        // The paper reports 4.3 MB; two 32768-coefficient polynomials at
        // 550 bits (stored as 10×64-bit words) are ≈5.2 MB raw / ≈4.5 MB at
        // 55-bit packing. Accept the 4–6 MB range.
        assert!((4.0..6.0).contains(&mb), "ciphertext size {mb} MB");
    }

    #[test]
    fn generality_depth_bounds() {
        // The §6.2 result: the paper-scale preset supports the ≈10
        // sequential multiplications of a 1-hop query with degree bound 10
        // but nowhere near the 100 required by the 2-hop Q1.
        let p = BgvParams::paper();
        let depth = p.max_sequential_muls();
        assert!(depth >= 10, "paper preset supports depth {depth}");
        assert!(depth < 100, "Q1 must remain infeasible, got {depth}");
        // The 550-bit (paper-sized) chain supports fewer.
        let sized = BgvParams::paper_sized().max_sequential_muls();
        assert!(sized < depth);
    }

    #[test]
    fn lcm_gcd() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(65536, 1 << 30), 1 << 30);
        assert_eq!(lcm(1 << 30, 65536), 1 << 30);
    }
}
