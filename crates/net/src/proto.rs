//! The query-round application protocol.
//!
//! The aggregator is the only server; devices, origins, and committee
//! members are polling clients (a hub topology — contributions and
//! origin submissions live at the aggregator, which is what lets a
//! crashed-and-respawned origin resume from nothing but its role
//! arguments). Every request is *idempotent*: pushing the same
//! contribution, submission, or share twice is indistinguishable from
//! pushing it once, so the client's at-least-once retry is safe.

use mycelium::plan::SignedContribution;
use mycelium_bgv::Ciphertext;
use mycelium_sharing::DecryptionShare;

use crate::codec::{
    decode_ciphertext, decode_contribution, decode_opt_ciphertext, decode_share, encode_ciphertext,
    encode_contribution, encode_opt_ciphertext, encode_share, CodecCtx,
};
use crate::error::NetError;
use crate::wire::{Reader, Writer};

/// One protocol message (request or reply).
pub enum NetMsg {
    /// Device → aggregator: a contribution for one slot of one origin's
    /// neighbourhood row.
    PushContrib {
        /// Destination origin index.
        origin: u32,
        /// Slot in that origin's request list.
        slot: u32,
        /// The ciphertext (and optional well-formedness proof).
        sc: Box<SignedContribution>,
    },
    /// Origin → aggregator: are my contribution slots filled yet?
    PullOrigin {
        /// The asking origin's index.
        origin: u32,
    },
    /// Origin → aggregator: my combined row ciphertext.
    SubmitOrigin {
        /// The submitting origin's index.
        origin: u32,
        /// The homomorphically combined result.
        ct: Box<Ciphertext>,
    },
    /// Committee member → aggregator: alive, with my noise seed.
    CommitteeCheckIn {
        /// Member id.
        member: u64,
        /// This member's contribution to the joint DP noise seed.
        seed: [u8; 32],
    },
    /// Committee member → aggregator: my threshold decryption share.
    PushShare {
        /// Member id.
        member: u64,
        /// Participant-set attempt this share belongs to.
        round: u32,
        /// The partial decryption.
        share: Box<DecryptionShare>,
    },
    /// Driver → aggregator: is the round finished?
    PullStatus,
    /// Shard → coordinator: the shard's sealed partial summation-tree
    /// root over its owned origins, plus the devices it rejected.
    /// Idempotent: the coordinator keeps the first root per shard.
    ShardRoot {
        /// The sending shard's index.
        shard: u32,
        /// Devices whose contributions failed proof verification at
        /// this shard (the coordinator unions them into the outcome).
        rejected: Vec<u32>,
        /// The shard's homomorphically combined partial aggregate.
        root: Box<Ciphertext>,
    },
    /// Shard → coordinator: is the round finished? (Cheap poll so a
    /// shard can linger for late retries and exit when the round ends.)
    PullShardStatus {
        /// The asking shard's index.
        shard: u32,
    },

    /// Generic acknowledgement.
    Ack,
    /// Reply to `PullOrigin`: not all slots verified yet.
    OriginPending {
        /// Slots filled and verified so far.
        have: u32,
        /// Slots required.
        need: u32,
    },
    /// Reply to `PullOrigin`: all slots resolved; `None` marks a slot
    /// whose device never delivered (the origin substitutes a neutral
    /// ciphertext).
    OriginJob {
        /// Per-slot contribution ciphertexts.
        cts: Vec<Option<Ciphertext>>,
    },
    /// Reply to committee polls: nothing to do yet.
    CommitteeWait,
    /// Reply to a check-in once the aggregate is ready and this member
    /// is in the participant set.
    CommitteeShareTask {
        /// Participant-set attempt number.
        round: u32,
        /// The chosen participant set (determines Lagrange coefficients).
        participants: Vec<u64>,
        /// The aggregate ciphertext to partially decrypt.
        ct: Box<Ciphertext>,
    },
    /// Reply to `PullStatus` / committee polls once the result is out.
    Finished,
}

const MAX_SLOTS: usize = 1 << 16;

impl NetMsg {
    /// Stable label for metrics attribution.
    pub fn kind(&self) -> &'static str {
        match self {
            NetMsg::PushContrib { .. } => "PushContrib",
            NetMsg::PullOrigin { .. } => "PullOrigin",
            NetMsg::SubmitOrigin { .. } => "SubmitOrigin",
            NetMsg::CommitteeCheckIn { .. } => "CommitteeCheckIn",
            NetMsg::PushShare { .. } => "PushShare",
            NetMsg::PullStatus => "PullStatus",
            NetMsg::ShardRoot { .. } => "ShardRoot",
            NetMsg::PullShardStatus { .. } => "PullShardStatus",
            NetMsg::Ack => "Ack",
            NetMsg::OriginPending { .. } => "OriginPending",
            NetMsg::OriginJob { .. } => "OriginJob",
            NetMsg::CommitteeWait => "CommitteeWait",
            NetMsg::CommitteeShareTask { .. } => "CommitteeShareTask",
            NetMsg::Finished => "Finished",
        }
    }

    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            NetMsg::PushContrib { origin, slot, sc } => {
                w.put_u8(1);
                w.put_u32(*origin);
                w.put_u32(*slot);
                encode_contribution(&mut w, sc);
            }
            NetMsg::PullOrigin { origin } => {
                w.put_u8(2);
                w.put_u32(*origin);
            }
            NetMsg::SubmitOrigin { origin, ct } => {
                w.put_u8(3);
                w.put_u32(*origin);
                encode_ciphertext(&mut w, ct);
            }
            NetMsg::CommitteeCheckIn { member, seed } => {
                w.put_u8(4);
                w.put_u64(*member);
                w.put_bytes(seed);
            }
            NetMsg::PushShare {
                member,
                round,
                share,
            } => {
                w.put_u8(5);
                w.put_u64(*member);
                w.put_u32(*round);
                encode_share(&mut w, share);
            }
            NetMsg::PullStatus => w.put_u8(6),
            NetMsg::ShardRoot {
                shard,
                rejected,
                root,
            } => {
                w.put_u8(7);
                w.put_u32(*shard);
                w.put_u32_slice(rejected);
                encode_ciphertext(&mut w, root);
            }
            NetMsg::PullShardStatus { shard } => {
                w.put_u8(8);
                w.put_u32(*shard);
            }
            NetMsg::Ack => w.put_u8(16),
            NetMsg::OriginPending { have, need } => {
                w.put_u8(17);
                w.put_u32(*have);
                w.put_u32(*need);
            }
            NetMsg::OriginJob { cts } => {
                w.put_u8(18);
                w.put_u32(cts.len() as u32);
                for ct in cts {
                    encode_opt_ciphertext(&mut w, ct);
                }
            }
            NetMsg::CommitteeWait => w.put_u8(19),
            NetMsg::CommitteeShareTask {
                round,
                participants,
                ct,
            } => {
                w.put_u8(20);
                w.put_u32(*round);
                w.put_u64_slice(participants);
                encode_ciphertext(&mut w, ct);
            }
            NetMsg::Finished => w.put_u8(21),
        }
        w.finish()
    }

    /// Deserializes a message, validating every field.
    pub fn decode(bytes: &[u8], cc: &CodecCtx) -> Result<NetMsg, NetError> {
        let mut r = Reader::new(bytes);
        let msg = match r.get_u8()? {
            1 => NetMsg::PushContrib {
                origin: r.get_u32()?,
                slot: r.get_u32()?,
                sc: Box::new(decode_contribution(&mut r, cc)?),
            },
            2 => NetMsg::PullOrigin {
                origin: r.get_u32()?,
            },
            3 => NetMsg::SubmitOrigin {
                origin: r.get_u32()?,
                ct: Box::new(decode_ciphertext(&mut r, cc)?),
            },
            4 => NetMsg::CommitteeCheckIn {
                member: r.get_u64()?,
                seed: r.get_array32()?,
            },
            5 => NetMsg::PushShare {
                member: r.get_u64()?,
                round: r.get_u32()?,
                share: Box::new(decode_share(&mut r, cc)?),
            },
            6 => NetMsg::PullStatus,
            7 => {
                let shard = r.get_u32()?;
                let rejected = r.get_u32_vec()?;
                if rejected.len() > MAX_SLOTS {
                    return Err(NetError::Decode("oversized rejected set".into()));
                }
                let root = Box::new(decode_ciphertext(&mut r, cc)?);
                NetMsg::ShardRoot {
                    shard,
                    rejected,
                    root,
                }
            }
            8 => NetMsg::PullShardStatus {
                shard: r.get_u32()?,
            },
            16 => NetMsg::Ack,
            17 => NetMsg::OriginPending {
                have: r.get_u32()?,
                need: r.get_u32()?,
            },
            18 => {
                let n = r.get_u32()? as usize;
                if n > MAX_SLOTS {
                    return Err(NetError::Decode(format!("origin job with {n} slots")));
                }
                let mut cts = Vec::with_capacity(n);
                for _ in 0..n {
                    cts.push(decode_opt_ciphertext(&mut r, cc)?);
                }
                NetMsg::OriginJob { cts }
            }
            19 => NetMsg::CommitteeWait,
            20 => {
                let round = r.get_u32()?;
                let participants = r.get_u64_vec()?;
                if participants.len() > MAX_SLOTS {
                    return Err(NetError::Decode("oversized participant set".into()));
                }
                let ct = Box::new(decode_ciphertext(&mut r, cc)?);
                NetMsg::CommitteeShareTask {
                    round,
                    participants,
                    ct,
                }
            }
            21 => NetMsg::Finished,
            tag => return Err(NetError::Decode(format!("unknown message tag {tag}"))),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_bgv::BgvParams;

    #[test]
    fn plain_messages_roundtrip() {
        let cc = CodecCtx::new(&BgvParams::test_small());
        for msg in [
            NetMsg::PullOrigin { origin: 3 },
            NetMsg::CommitteeCheckIn {
                member: 2,
                seed: [7u8; 32],
            },
            NetMsg::PullStatus,
            NetMsg::PullShardStatus { shard: 2 },
            NetMsg::Ack,
            NetMsg::OriginPending { have: 2, need: 5 },
            NetMsg::CommitteeWait,
            NetMsg::Finished,
        ] {
            let kind = msg.kind();
            let back = NetMsg::decode(&msg.encode(), &cc).unwrap();
            assert_eq!(back.kind(), kind);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let cc = CodecCtx::new(&BgvParams::test_small());
        let mut bytes = NetMsg::Ack.encode();
        bytes.push(0);
        assert!(matches!(
            NetMsg::decode(&bytes, &cc),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let cc = CodecCtx::new(&BgvParams::test_small());
        assert!(matches!(
            NetMsg::decode(&[200], &cc),
            Err(NetError::Decode(_))
        ));
    }
}
