//! The query-round application protocol.
//!
//! The aggregator is the only server; devices, origins, and committee
//! members are polling clients (a hub topology — contributions and
//! origin submissions live at the aggregator, which is what lets a
//! crashed-and-respawned origin resume from nothing but its role
//! arguments). Every request is *idempotent*: pushing the same
//! contribution, submission, or share twice is indistinguishable from
//! pushing it once, so the client's at-least-once retry is safe.

use mycelium::plan::SignedContribution;
use mycelium_bgv::Ciphertext;
use mycelium_cert::OriginCommit;
use mycelium_sharing::DecryptionShare;

use crate::codec::{
    decode_ciphertext, decode_contribution, decode_opt_ciphertext, decode_share, encode_ciphertext,
    encode_contribution, encode_opt_ciphertext, encode_share, CodecCtx,
};
use crate::error::NetError;
use crate::wire::{Reader, Writer};

/// One protocol message (request or reply).
pub enum NetMsg {
    /// Device → aggregator: a contribution for one slot of one origin's
    /// neighbourhood row.
    PushContrib {
        /// Destination origin index.
        origin: u32,
        /// Slot in that origin's request list.
        slot: u32,
        /// The ciphertext (and optional well-formedness proof).
        sc: Box<SignedContribution>,
    },
    /// Origin → aggregator: are my contribution slots filled yet?
    PullOrigin {
        /// The asking origin's index.
        origin: u32,
    },
    /// Origin → aggregator: my combined row ciphertext.
    SubmitOrigin {
        /// The submitting origin's index.
        origin: u32,
        /// The homomorphically combined result.
        ct: Box<Ciphertext>,
    },
    /// Committee member → aggregator: alive, with my noise seed.
    CommitteeCheckIn {
        /// Member id.
        member: u64,
        /// This member's contribution to the joint DP noise seed.
        seed: [u8; 32],
    },
    /// Committee member → aggregator: my threshold decryption share.
    PushShare {
        /// Member id.
        member: u64,
        /// Participant-set attempt this share belongs to.
        round: u32,
        /// The partial decryption.
        share: Box<DecryptionShare>,
    },
    /// Driver → aggregator: is the round finished?
    PullStatus,
    /// Shard → coordinator: the shard's sealed partial summation-tree
    /// root over its owned origins, plus the devices it rejected.
    /// Idempotent: the coordinator keeps the first root per shard.
    ShardRoot {
        /// The sending shard's index.
        shard: u32,
        /// Devices whose contributions failed proof verification at
        /// this shard (the coordinator unions them into the outcome).
        rejected: Vec<u32>,
        /// Frozen per-origin contribution commitments for the origins
        /// this shard owns; the coordinator folds them into the round
        /// certificate's commitment tree.
        commits: Vec<OriginCommit>,
        /// The shard's homomorphically combined partial aggregate.
        root: Box<Ciphertext>,
    },
    /// Shard → coordinator: is the round finished? (Cheap poll so a
    /// shard can linger for late retries and exit when the round ends.)
    PullShardStatus {
        /// The asking shard's index.
        shard: u32,
    },
    /// Committee member → aggregator: an ed25519 signature over the
    /// round certificate's transcript digest. Idempotent (first wins).
    PushCertSig {
        /// Member id.
        member: u64,
        /// Detached signature over the transcript.
        sig: [u8; 64],
    },

    /// Generic acknowledgement.
    Ack,
    /// Reply to `PullOrigin`: not all slots verified yet.
    OriginPending {
        /// Slots filled and verified so far.
        have: u32,
        /// Slots required.
        need: u32,
    },
    /// Reply to `PullOrigin`: all slots resolved; `None` marks a slot
    /// whose device never delivered (the origin substitutes a neutral
    /// ciphertext).
    OriginJob {
        /// Per-slot contribution ciphertexts.
        cts: Vec<Option<Ciphertext>>,
    },
    /// Reply to committee polls: nothing to do yet.
    CommitteeWait,
    /// Reply to a check-in once the aggregate is ready and this member
    /// is in the participant set.
    CommitteeShareTask {
        /// Participant-set attempt number.
        round: u32,
        /// The chosen participant set (determines Lagrange coefficients).
        participants: Vec<u64>,
        /// The aggregate ciphertext to partially decrypt.
        ct: Box<Ciphertext>,
    },
    /// Reply to a committee check-in once the round certificate's
    /// transcript is fixed and this member's signature is still missing.
    CertSignTask {
        /// The certificate transcript digest to sign.
        transcript: [u8; 32],
    },
    /// Reply to `PullStatus` / committee polls once the result is out.
    Finished,
}

const MAX_SLOTS: usize = 1 << 16;

impl NetMsg {
    /// Stable label for metrics attribution.
    pub fn kind(&self) -> &'static str {
        match self {
            NetMsg::PushContrib { .. } => "PushContrib",
            NetMsg::PullOrigin { .. } => "PullOrigin",
            NetMsg::SubmitOrigin { .. } => "SubmitOrigin",
            NetMsg::CommitteeCheckIn { .. } => "CommitteeCheckIn",
            NetMsg::PushShare { .. } => "PushShare",
            NetMsg::PullStatus => "PullStatus",
            NetMsg::ShardRoot { .. } => "ShardRoot",
            NetMsg::PullShardStatus { .. } => "PullShardStatus",
            NetMsg::PushCertSig { .. } => "PushCertSig",
            NetMsg::Ack => "Ack",
            NetMsg::OriginPending { .. } => "OriginPending",
            NetMsg::OriginJob { .. } => "OriginJob",
            NetMsg::CommitteeWait => "CommitteeWait",
            NetMsg::CommitteeShareTask { .. } => "CommitteeShareTask",
            NetMsg::CertSignTask { .. } => "CertSignTask",
            NetMsg::Finished => "Finished",
        }
    }

    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            NetMsg::PushContrib { origin, slot, sc } => {
                w.put_u8(1);
                w.put_u32(*origin);
                w.put_u32(*slot);
                encode_contribution(&mut w, sc);
            }
            NetMsg::PullOrigin { origin } => {
                w.put_u8(2);
                w.put_u32(*origin);
            }
            NetMsg::SubmitOrigin { origin, ct } => {
                w.put_u8(3);
                w.put_u32(*origin);
                encode_ciphertext(&mut w, ct);
            }
            NetMsg::CommitteeCheckIn { member, seed } => {
                w.put_u8(4);
                w.put_u64(*member);
                w.put_bytes(seed);
            }
            NetMsg::PushShare {
                member,
                round,
                share,
            } => {
                w.put_u8(5);
                w.put_u64(*member);
                w.put_u32(*round);
                encode_share(&mut w, share);
            }
            NetMsg::PullStatus => w.put_u8(6),
            NetMsg::ShardRoot {
                shard,
                rejected,
                commits,
                root,
            } => {
                w.put_u8(7);
                w.put_u32(*shard);
                w.put_u32_slice(rejected);
                w.put_u32(commits.len() as u32);
                for c in commits {
                    w.put_u32(c.origin);
                    w.put_bytes(&c.leaf);
                    w.put_u32(c.accepted);
                    w.put_u32(c.rejected);
                }
                encode_ciphertext(&mut w, root);
            }
            NetMsg::PullShardStatus { shard } => {
                w.put_u8(8);
                w.put_u32(*shard);
            }
            NetMsg::PushCertSig { member, sig } => {
                w.put_u8(9);
                w.put_u64(*member);
                w.put_bytes(sig);
            }
            NetMsg::Ack => w.put_u8(16),
            NetMsg::OriginPending { have, need } => {
                w.put_u8(17);
                w.put_u32(*have);
                w.put_u32(*need);
            }
            NetMsg::OriginJob { cts } => {
                w.put_u8(18);
                w.put_u32(cts.len() as u32);
                for ct in cts {
                    encode_opt_ciphertext(&mut w, ct);
                }
            }
            NetMsg::CommitteeWait => w.put_u8(19),
            NetMsg::CommitteeShareTask {
                round,
                participants,
                ct,
            } => {
                w.put_u8(20);
                w.put_u32(*round);
                w.put_u64_slice(participants);
                encode_ciphertext(&mut w, ct);
            }
            NetMsg::CertSignTask { transcript } => {
                w.put_u8(22);
                w.put_bytes(transcript);
            }
            NetMsg::Finished => w.put_u8(21),
        }
        w.finish()
    }

    /// Deserializes a message, validating every field.
    pub fn decode(bytes: &[u8], cc: &CodecCtx) -> Result<NetMsg, NetError> {
        let mut r = Reader::new(bytes);
        let msg = match r.get_u8()? {
            1 => NetMsg::PushContrib {
                origin: r.get_u32()?,
                slot: r.get_u32()?,
                sc: Box::new(decode_contribution(&mut r, cc)?),
            },
            2 => NetMsg::PullOrigin {
                origin: r.get_u32()?,
            },
            3 => NetMsg::SubmitOrigin {
                origin: r.get_u32()?,
                ct: Box::new(decode_ciphertext(&mut r, cc)?),
            },
            4 => NetMsg::CommitteeCheckIn {
                member: r.get_u64()?,
                seed: r.get_array32()?,
            },
            5 => NetMsg::PushShare {
                member: r.get_u64()?,
                round: r.get_u32()?,
                share: Box::new(decode_share(&mut r, cc)?),
            },
            6 => NetMsg::PullStatus,
            7 => {
                let shard = r.get_u32()?;
                let rejected = r.get_u32_vec()?;
                if rejected.len() > MAX_SLOTS {
                    return Err(NetError::Decode("oversized rejected set".into()));
                }
                let n_commits = r.get_u32()? as usize;
                if n_commits > MAX_SLOTS {
                    return Err(NetError::Decode(format!(
                        "shard root with {n_commits} origin commits"
                    )));
                }
                let mut commits = Vec::with_capacity(n_commits);
                for _ in 0..n_commits {
                    commits.push(OriginCommit {
                        origin: r.get_u32()?,
                        leaf: r.get_array32()?,
                        accepted: r.get_u32()?,
                        rejected: r.get_u32()?,
                    });
                }
                let root = Box::new(decode_ciphertext(&mut r, cc)?);
                NetMsg::ShardRoot {
                    shard,
                    rejected,
                    commits,
                    root,
                }
            }
            8 => NetMsg::PullShardStatus {
                shard: r.get_u32()?,
            },
            9 => NetMsg::PushCertSig {
                member: r.get_u64()?,
                sig: r.get_bytes(64)?.try_into().expect("64 bytes"),
            },
            16 => NetMsg::Ack,
            17 => NetMsg::OriginPending {
                have: r.get_u32()?,
                need: r.get_u32()?,
            },
            18 => {
                let n = r.get_u32()? as usize;
                if n > MAX_SLOTS {
                    return Err(NetError::Decode(format!("origin job with {n} slots")));
                }
                let mut cts = Vec::with_capacity(n);
                for _ in 0..n {
                    cts.push(decode_opt_ciphertext(&mut r, cc)?);
                }
                NetMsg::OriginJob { cts }
            }
            19 => NetMsg::CommitteeWait,
            20 => {
                let round = r.get_u32()?;
                let participants = r.get_u64_vec()?;
                if participants.len() > MAX_SLOTS {
                    return Err(NetError::Decode("oversized participant set".into()));
                }
                let ct = Box::new(decode_ciphertext(&mut r, cc)?);
                NetMsg::CommitteeShareTask {
                    round,
                    participants,
                    ct,
                }
            }
            21 => NetMsg::Finished,
            22 => NetMsg::CertSignTask {
                transcript: r.get_array32()?,
            },
            tag => return Err(NetError::Decode(format!("unknown message tag {tag}"))),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_bgv::BgvParams;

    #[test]
    fn plain_messages_roundtrip() {
        let cc = CodecCtx::new(&BgvParams::test_small());
        for msg in [
            NetMsg::PullOrigin { origin: 3 },
            NetMsg::CommitteeCheckIn {
                member: 2,
                seed: [7u8; 32],
            },
            NetMsg::PullStatus,
            NetMsg::PullShardStatus { shard: 2 },
            NetMsg::PushCertSig {
                member: 3,
                sig: [0xA5u8; 64],
            },
            NetMsg::Ack,
            NetMsg::OriginPending { have: 2, need: 5 },
            NetMsg::CommitteeWait,
            NetMsg::CertSignTask {
                transcript: [0x42u8; 32],
            },
            NetMsg::Finished,
        ] {
            let kind = msg.kind();
            let back = NetMsg::decode(&msg.encode(), &cc).unwrap();
            assert_eq!(back.kind(), kind);
        }
    }

    #[test]
    fn cert_messages_roundtrip_field_exact() {
        let cc = CodecCtx::new(&BgvParams::test_small());
        let sig_msg = NetMsg::PushCertSig {
            member: 9,
            sig: core::array::from_fn(|i| i as u8),
        };
        match NetMsg::decode(&sig_msg.encode(), &cc).unwrap() {
            NetMsg::PushCertSig { member, sig } => {
                assert_eq!(member, 9);
                assert_eq!(sig, core::array::from_fn(|i| i as u8));
            }
            other => panic!("wrong decode: {}", other.kind()),
        }
        let task = NetMsg::CertSignTask {
            transcript: core::array::from_fn(|i| 31 - i as u8),
        };
        match NetMsg::decode(&task.encode(), &cc).unwrap() {
            NetMsg::CertSignTask { transcript } => {
                assert_eq!(transcript, core::array::from_fn(|i| 31 - i as u8));
            }
            other => panic!("wrong decode: {}", other.kind()),
        }
    }

    /// Satellite: fuzz-style decoding — random byte strings through the
    /// full message decoder must never panic; they either decode cleanly
    /// or fail with a typed [`NetError::Decode`].
    #[test]
    fn random_bytes_never_panic_the_decoder() {
        use mycelium_math::rng::{Rng, RngCore, SeedableRng, StdRng};
        let cc = CodecCtx::new(&BgvParams::test_small());
        let mut rng = StdRng::seed_from_u64(0xF02);
        for round in 0..2048 {
            let len = (rng.next_u64() % 512) as usize;
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            if round % 4 == 0 && !buf.is_empty() {
                // Bias toward real tags so deep field decoders get hit.
                buf[0] = [1, 3, 4, 5, 7, 9, 18, 20, 22][round % 9];
            }
            match NetMsg::decode(&buf, &cc) {
                Ok(_) => {}
                Err(NetError::Decode(_)) => {}
                Err(e) => panic!("fuzz round {round}: untyped failure {e:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let cc = CodecCtx::new(&BgvParams::test_small());
        let mut bytes = NetMsg::Ack.encode();
        bytes.push(0);
        assert!(matches!(
            NetMsg::decode(&bytes, &cc),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let cc = CodecCtx::new(&BgvParams::test_small());
        assert!(matches!(
            NetMsg::decode(&[200], &cc),
            Err(NetError::Decode(_))
        ));
    }
}
