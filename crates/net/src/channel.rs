//! Authenticated-encryption channels over TCP.
//!
//! The handshake is a Noise-KK-shaped pattern built from the workspace's
//! own primitives (the repo has X25519 and HKDF but no signatures, so
//! authentication comes from mixing *static* Diffie–Hellman results into
//! the key schedule — only the holders of the two static secrets can
//! derive the session keys):
//!
//! ```text
//! client → server   ClientHello  (plaintext): static_pub ‖ ephemeral_pub
//! server → client   ServerHello  (plaintext): static_pub ‖ ephemeral_pub
//!
//! transcript = SHA-256(client_payload ‖ server_payload)
//! ikm        = DH(e_c, e_s) ‖ DH(e_c, s_s) ‖ DH(s_c, e_s)
//! prk        = HKDF-Extract(salt = transcript, ikm)
//! k_c2s      = HKDF-Expand(prk, "mycelium-net v1 c2s")
//! k_s2c      = HKDF-Expand(prk, "mycelium-net v1 s2c")
//!
//! client → server   Confirm (sealed, k_c2s, seq 0): transcript
//! server → client   Confirm (sealed, k_s2c, seq 0): transcript
//! ```
//!
//! The Confirm exchange proves both sides derived the same keys — i.e.
//! that each peer controls the static secret it advertised. The server
//! additionally checks the client's static key against a roster before
//! doing any expensive work.
//!
//! After the handshake every frame is ChaCha20-Poly1305-sealed with the
//! 20-byte frame header as associated data and the per-direction
//! sequence number as the implicit nonce (the paper's `AE` convention:
//! the nonce is the round number and is never transmitted). Directions
//! use distinct keys, and the receiver insists on strictly sequential
//! sequence numbers, so replayed, reordered, or cross-spliced frames are
//! rejected with a typed error.

use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mycelium_crypto::aead::{open_with_aad, seal_with_aad, OVERHEAD};
use mycelium_crypto::ed25519::{x25519, x25519_public_key};
use mycelium_crypto::kdf::{hkdf_expand, hkdf_extract};
use mycelium_crypto::sha256;
use mycelium_math::rng::{Rng, StdRng};

use crate::error::NetError;
use crate::frame::{header_bytes, read_frame, write_frame, FrameType, HEADER_LEN};
use crate::lock_recover;
use crate::metrics::NetMetrics;

/// An endpoint's long-term X25519 identity.
#[derive(Clone)]
pub struct Identity {
    secret: [u8; 32],
    /// The public key peers authenticate against.
    pub public: [u8; 32],
}

impl Identity {
    /// Builds an identity from a static secret scalar.
    pub fn from_secret(secret: [u8; 32]) -> Self {
        let public = x25519_public_key(&secret);
        Identity { secret, public }
    }

    /// Derives a deterministic identity for a role in a seeded deployment:
    /// all processes of a round share `seed` and agree on each other's
    /// public keys without any key material crossing the wire.
    pub fn derive(seed: u64, role_id: u32) -> Self {
        let mut ikm = Vec::with_capacity(32);
        ikm.extend_from_slice(b"mycelium-net identity");
        ikm.extend_from_slice(&seed.to_le_bytes());
        ikm.extend_from_slice(&role_id.to_le_bytes());
        Identity::from_secret(sha256(&ikm))
    }
}

/// Everything a handshake derives.
struct SessionKeys {
    send: [u8; 32],
    recv: [u8; 32],
    peer: [u8; 32],
}

const INFO_C2S: &[u8] = b"mycelium-net v1 c2s";
const INFO_S2C: &[u8] = b"mycelium-net v1 s2c";

/// Wire bytes one complete handshake costs (both directions):
/// two 64-byte hellos and two sealed 32-byte confirms, each framed.
pub const HANDSHAKE_WIRE_BYTES: usize = 2 * (HEADER_LEN + 64) + 2 * (HEADER_LEN + 32 + OVERHEAD);

fn derive_keys(
    transcript: &[u8; 32],
    dh_ee: [u8; 32],
    dh_es: [u8; 32],
    dh_se: [u8; 32],
) -> ([u8; 32], [u8; 32]) {
    let mut ikm = Vec::with_capacity(96);
    ikm.extend_from_slice(&dh_ee);
    ikm.extend_from_slice(&dh_es);
    ikm.extend_from_slice(&dh_se);
    let prk = hkdf_extract(transcript, &ikm);
    let c2s: [u8; 32] = hkdf_expand(&prk, INFO_C2S, 32).try_into().unwrap();
    let s2c: [u8; 32] = hkdf_expand(&prk, INFO_S2C, 32).try_into().unwrap();
    (c2s, s2c)
}

fn hello_payload(identity: &Identity, eph_pub: &[u8; 32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    p.extend_from_slice(&identity.public);
    p.extend_from_slice(eph_pub);
    p
}

fn parse_hello(payload: &[u8]) -> Result<([u8; 32], [u8; 32]), NetError> {
    if payload.len() != 64 {
        return Err(NetError::Handshake(format!(
            "hello payload is {} bytes, expected 64",
            payload.len()
        )));
    }
    Ok((
        payload[0..32].try_into().unwrap(),
        payload[32..64].try_into().unwrap(),
    ))
}

/// An established encrypted channel over one TCP connection.
pub struct SecureChannel {
    stream: TcpStream,
    send_key: [u8; 32],
    recv_key: [u8; 32],
    send_seq: u64,
    recv_seq: u64,
    peer: [u8; 32],
    max_payload: usize,
    metrics: Arc<Mutex<NetMetrics>>,
}

impl SecureChannel {
    /// The peer's authenticated static public key.
    pub fn peer(&self) -> [u8; 32] {
        self.peer
    }

    /// Sets the read deadline for subsequent [`recv`](Self::recv) calls
    /// (`None` blocks forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(d)?;
        Ok(())
    }

    /// Seals and writes one application payload.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), NetError> {
        let seq = self.send_seq;
        let wire = sealed_frame(&self.send_key, FrameType::Data, seq, payload);
        self.stream.write_frame_bytes(&wire)?;
        self.send_seq += 1;
        let mut m = lock_recover(&self.metrics);
        m.frames_sent += 1;
        m.bytes_sent += wire.len() as u64;
        Ok(())
    }

    /// Reads, authenticates, and decrypts one application payload.
    pub fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let (header, sealed) = read_frame(&mut &self.stream, self.max_payload + OVERHEAD)?;
        if header.frame_type != FrameType::Data {
            return Err(NetError::Handshake(
                "non-data frame on established channel".into(),
            ));
        }
        if header.seq != self.recv_seq {
            return Err(NetError::BadSequence {
                got: header.seq,
                want: self.recv_seq,
            });
        }
        let aad = header_bytes(FrameType::Data, header.seq, header.len);
        let plain = match open_with_aad(&self.recv_key, header.seq, &aad, &sealed) {
            Ok(p) => p,
            Err(e) => {
                lock_recover(&self.metrics).aead_rejects += 1;
                return Err(e.into());
            }
        };
        self.recv_seq += 1;
        let mut m = lock_recover(&self.metrics);
        m.frames_recv += 1;
        m.bytes_recv += (HEADER_LEN + sealed.len()) as u64;
        Ok(plain)
    }

    /// Wire bytes one [`send`](Self::send) of `payload_len` bytes costs.
    pub fn wire_cost(payload_len: usize) -> usize {
        HEADER_LEN + payload_len + OVERHEAD
    }
}

trait WriteFrameBytes {
    fn write_frame_bytes(&mut self, wire: &[u8]) -> Result<(), NetError>;
}

impl WriteFrameBytes for TcpStream {
    fn write_frame_bytes(&mut self, wire: &[u8]) -> Result<(), NetError> {
        use std::io::Write;
        self.write_all(wire)?;
        self.flush()?;
        Ok(())
    }
}

/// Builds a complete sealed frame (header ‖ ciphertext ‖ tag).
fn sealed_frame(key: &[u8; 32], ty: FrameType, seq: u64, payload: &[u8]) -> Vec<u8> {
    let len = (payload.len() + OVERHEAD) as u32;
    let header = header_bytes(ty, seq, len);
    let sealed = seal_with_aad(key, seq, &header, payload);
    let mut wire = Vec::with_capacity(HEADER_LEN + sealed.len());
    wire.extend_from_slice(&header);
    wire.extend_from_slice(&sealed);
    wire
}

fn confirm_exchange(
    stream: &mut TcpStream,
    keys: &SessionKeys,
    transcript: &[u8; 32],
    client_side: bool,
) -> Result<(), NetError> {
    let send_confirm = |stream: &mut TcpStream, key: &[u8; 32]| -> Result<(), NetError> {
        let wire = sealed_frame(key, FrameType::Confirm, 0, transcript);
        stream.write_frame_bytes(&wire)
    };
    let recv_confirm = |stream: &mut TcpStream, key: &[u8; 32]| -> Result<(), NetError> {
        let (header, sealed) = read_frame(&mut &*stream, 64 + OVERHEAD)?;
        if header.frame_type != FrameType::Confirm || header.seq != 0 {
            return Err(NetError::Handshake(
                "expected key-confirmation frame".into(),
            ));
        }
        let aad = header_bytes(FrameType::Confirm, 0, header.len);
        let plain = open_with_aad(key, 0, &aad, &sealed)
            .map_err(|e| NetError::Handshake(format!("key confirmation failed: {e}")))?;
        if plain != transcript {
            return Err(NetError::Handshake("transcript mismatch".into()));
        }
        Ok(())
    };
    if client_side {
        send_confirm(stream, &keys.send)?;
        recv_confirm(stream, &keys.recv)?;
    } else {
        recv_confirm(stream, &keys.recv)?;
        send_confirm(stream, &keys.send)?;
    }
    Ok(())
}

fn finish_channel(
    stream: TcpStream,
    keys: SessionKeys,
    max_payload: usize,
    metrics: Arc<Mutex<NetMetrics>>,
    started: std::time::Instant,
) -> SecureChannel {
    {
        let mut m = lock_recover(&metrics);
        m.handshakes += 1;
        m.handshake_micros
            .record(started.elapsed().as_micros() as u64);
        m.bytes_sent += (HANDSHAKE_WIRE_BYTES / 2) as u64;
        m.bytes_recv += (HANDSHAKE_WIRE_BYTES / 2) as u64;
    }
    SecureChannel {
        stream,
        send_key: keys.send,
        recv_key: keys.recv,
        send_seq: 1,
        recv_seq: 1,
        peer: keys.peer,
        max_payload,
        metrics,
    }
}

/// Runs the client side of the handshake on a fresh connection.
///
/// If `expect_peer` is set, the server's static key must match it
/// exactly; otherwise any server that completes key confirmation is
/// accepted (the confirmation still proves it holds the static secret it
/// advertised).
pub fn client_handshake(
    mut stream: TcpStream,
    identity: &Identity,
    expect_peer: Option<[u8; 32]>,
    rng: &mut StdRng,
    max_payload: usize,
    metrics: Arc<Mutex<NetMetrics>>,
) -> Result<SecureChannel, NetError> {
    let started = std::time::Instant::now();
    let mut eph_secret = [0u8; 32];
    rng.fill(&mut eph_secret);
    let eph_public = x25519_public_key(&eph_secret);

    let my_hello = hello_payload(identity, &eph_public);
    write_frame(&mut stream, FrameType::ClientHello, 0, &my_hello)?;

    let (header, their_hello) = read_frame(&mut &stream, 256)?;
    if header.frame_type != FrameType::ServerHello {
        return Err(NetError::Handshake("expected ServerHello".into()));
    }
    let (server_static, server_eph) = parse_hello(&their_hello)?;
    if let Some(want) = expect_peer {
        if server_static != want {
            return Err(NetError::UnknownPeer {
                peer: server_static,
            });
        }
    }

    let mut t = Vec::with_capacity(128);
    t.extend_from_slice(&my_hello);
    t.extend_from_slice(&their_hello);
    let transcript = sha256(&t);

    let dh_ee = x25519(&eph_secret, &server_eph);
    let dh_es = x25519(&eph_secret, &server_static);
    let dh_se = x25519(&identity.secret, &server_eph);
    let (c2s, s2c) = derive_keys(&transcript, dh_ee, dh_es, dh_se);

    let keys = SessionKeys {
        send: c2s,
        recv: s2c,
        peer: server_static,
    };
    confirm_exchange(&mut stream, &keys, &transcript, true)?;
    Ok(finish_channel(stream, keys, max_payload, metrics, started))
}

/// Runs the server side of the handshake on an accepted connection.
///
/// `roster`, when present, is the set of client static keys allowed to
/// connect; an unlisted client is rejected with [`NetError::UnknownPeer`]
/// before any key derivation.
pub fn server_handshake(
    mut stream: TcpStream,
    identity: &Identity,
    roster: Option<&std::collections::HashSet<[u8; 32]>>,
    rng: &mut StdRng,
    max_payload: usize,
    metrics: Arc<Mutex<NetMetrics>>,
) -> Result<SecureChannel, NetError> {
    let started = std::time::Instant::now();
    let (header, their_hello) = read_frame(&mut &stream, 256)?;
    if header.frame_type != FrameType::ClientHello {
        return Err(NetError::Handshake("expected ClientHello".into()));
    }
    let (client_static, client_eph) = parse_hello(&their_hello)?;
    if let Some(allowed) = roster {
        if !allowed.contains(&client_static) {
            return Err(NetError::UnknownPeer {
                peer: client_static,
            });
        }
    }

    let mut eph_secret = [0u8; 32];
    rng.fill(&mut eph_secret);
    let eph_public = x25519_public_key(&eph_secret);
    let my_hello = hello_payload(identity, &eph_public);
    write_frame(&mut stream, FrameType::ServerHello, 0, &my_hello)?;

    let mut t = Vec::with_capacity(128);
    t.extend_from_slice(&their_hello);
    t.extend_from_slice(&my_hello);
    let transcript = sha256(&t);

    let dh_ee = x25519(&eph_secret, &client_eph);
    let dh_es = x25519(&identity.secret, &client_eph);
    let dh_se = x25519(&eph_secret, &client_static);
    let (c2s, s2c) = derive_keys(&transcript, dh_ee, dh_es, dh_se);

    let keys = SessionKeys {
        send: s2c,
        recv: c2s,
        peer: client_static,
    };
    confirm_exchange(&mut stream, &keys, &transcript, false)?;
    Ok(finish_channel(stream, keys, max_payload, metrics, started))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_math::rng::SeedableRng;
    use std::net::TcpListener;

    fn pair() -> (SecureChannel, SecureChannel) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_id = Identity::derive(7, 0);
        let client_id = Identity::derive(7, 100);
        let server_pub = server_id.public;
        let mut roster = std::collections::HashSet::new();
        roster.insert(client_id.public);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            server_handshake(
                stream,
                &server_id,
                Some(&roster),
                &mut rng,
                1 << 20,
                NetMetrics::shared(),
            )
            .unwrap()
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let client = client_handshake(
            stream,
            &client_id,
            Some(server_pub),
            &mut rng,
            1 << 20,
            NetMetrics::shared(),
        )
        .unwrap();
        (client, handle.join().unwrap())
    }

    #[test]
    fn handshake_and_bidirectional_traffic() {
        let (mut client, mut server) = pair();
        assert_eq!(client.peer(), Identity::derive(7, 0).public);
        assert_eq!(server.peer(), Identity::derive(7, 100).public);
        client.send(b"hello over the wire").unwrap();
        assert_eq!(server.recv().unwrap(), b"hello over the wire");
        server.send(b"ack").unwrap();
        assert_eq!(client.recv().unwrap(), b"ack");
        // Sequence numbers advance per direction.
        client.send(b"two").unwrap();
        assert_eq!(server.recv().unwrap(), b"two");
    }

    #[test]
    fn unlisted_client_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_id = Identity::derive(7, 0);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            server_handshake(
                stream,
                &server_id,
                Some(&std::collections::HashSet::new()),
                &mut rng,
                1 << 20,
                NetMetrics::shared(),
            )
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let intruder = Identity::derive(999, 100);
        let result = client_handshake(
            stream,
            &intruder,
            None,
            &mut rng,
            1 << 20,
            NetMetrics::shared(),
        );
        assert!(matches!(
            handle.join().unwrap(),
            Err(NetError::UnknownPeer { .. })
        ));
        // The client sees the connection die during its confirm wait.
        assert!(result.is_err());
    }

    #[test]
    fn handshake_cost_constant_matches() {
        // 2 hellos (20 + 64) + 2 confirms (20 + 32 + 16).
        assert_eq!(HANDSHAKE_WIRE_BYTES, 2 * 84 + 2 * 68);
    }
}
