//! Shared CLI parsing and role dispatch for the round binaries.
//!
//! `net_round` and `chaos_round` re-exec themselves for each role, so
//! both need the same flag set and the same role → function dispatch;
//! this module is that single source of truth.
//!
//! Round flags (shared by every role so each process derives identical
//! state): `--seed N --n N --query NAME --devices D --origins O
//! --shards S --proofs 0|1 --contrib-ms MS --poll-ms MS --timeout-ms MS`.
//!
//! Budget-session flags: `--round N` (the round's index in its
//! session), `--budget-dataset NAME --budget-capacity EPS
//! --budget-delta D --budget-advanced 0|1` (the session ledger), and
//! `--budget-wal PATH` (the shared session WAL; defaults to
//! `budget.wal` under `--out`).
//!
//! Role flags: `--out DIR --shard I --member M --addr HOST:PORT`.
//!
//! Fault-injection flags: `--crash-after K --crash-origin J` (origin
//! self-crash, driver watchdog respawn), `--die-after KIND:N` and
//! `--die-mid-journal N` (aggregator/shard chaos kills), `--seeds a,b,c`
//! (chaos seed matrix).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use crate::round::{
    run_aggregator, run_committee, run_device, run_driver, run_origin, run_shard, AggFaults,
    BudgetCfg, DriverOpts, RoundSpec,
};

/// Everything the round binaries parse from the command line.
pub struct Args {
    /// The shared round spec.
    pub spec: RoundSpec,
    /// Output directory for artifacts.
    pub out: PathBuf,
    /// Device/origin/aggregation shard index.
    pub shard: usize,
    /// Committee member id (1-based).
    pub member: u64,
    /// Aggregator address (roles); the `agg.addr` file takes precedence
    /// when present.
    pub addr: Option<SocketAddr>,
    /// Origin self-crash after K submissions (exit 17).
    pub crash_after: Option<usize>,
    /// Which origin shard the driver arms with `--crash-after`.
    pub crash_origin: Option<usize>,
    /// Aggregator: abort after the Nth handled message of a kind.
    pub die_after: Option<(String, u32)>,
    /// Aggregator: abort mid-write of the Nth journal record.
    pub die_mid_journal: Option<u32>,
    /// Chaos seed matrix.
    pub seeds: Vec<u64>,
}

/// Parses every flag after the role word.
pub fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        spec: RoundSpec::default(),
        out: PathBuf::from("target/net_round"),
        shard: 0,
        member: 1,
        addr: None,
        crash_after: None,
        crash_origin: None,
        die_after: None,
        die_mid_journal: None,
        seeds: Vec::new(),
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => args.spec.seed = parse(value("--seed")?)?,
            "--n" => args.spec.n = parse(value("--n")?)?,
            "--query" => args.spec.query = value("--query")?.clone(),
            "--devices" => args.spec.device_shards = parse(value("--devices")?)?,
            "--origins" => args.spec.origin_shards = parse(value("--origins")?)?,
            "--shards" => args.spec.agg_shards = parse(value("--shards")?)?,
            "--proofs" => args.spec.with_proofs = value("--proofs")? == "1",
            "--contrib-ms" => {
                args.spec.contrib_deadline = Duration::from_millis(parse(value("--contrib-ms")?)?)
            }
            "--poll-ms" => {
                args.spec.poll_interval = Duration::from_millis(parse(value("--poll-ms")?)?)
            }
            "--timeout-ms" => {
                args.spec.round_timeout = Duration::from_millis(parse(value("--timeout-ms")?)?)
            }
            "--round" => args.spec.round = parse(value("--round")?)?,
            "--budget-dataset" => {
                budget(&mut args.spec).dataset = value("--budget-dataset")?.clone()
            }
            "--budget-capacity" => {
                budget(&mut args.spec).capacity = parse(value("--budget-capacity")?)?
            }
            "--budget-delta" => budget(&mut args.spec).delta = parse(value("--budget-delta")?)?,
            "--budget-advanced" => {
                budget(&mut args.spec).advanced = value("--budget-advanced")? == "1"
            }
            "--budget-wal" => args.spec.budget_wal = Some(PathBuf::from(value("--budget-wal")?)),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--shard" => args.shard = parse(value("--shard")?)?,
            "--member" => args.member = parse(value("--member")?)?,
            "--addr" => {
                args.addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("bad --addr: {e}"))?,
                )
            }
            "--crash-after" => args.crash_after = Some(parse(value("--crash-after")?)?),
            "--crash-origin" => args.crash_origin = Some(parse(value("--crash-origin")?)?),
            "--die-after" => {
                let v = value("--die-after")?;
                let (kind, count) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--die-after wants KIND:N, got {v:?}"))?;
                args.die_after = Some((kind.to_string(), parse(count)?));
            }
            "--die-mid-journal" => args.die_mid_journal = Some(parse(value("--die-mid-journal")?)?),
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(parse)
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The `--budget-*` flags arrive piecemeal; the first one materializes
/// a default configuration for the rest to fill in.
fn budget(spec: &mut RoundSpec) -> &mut BudgetCfg {
    spec.budget.get_or_insert_with(|| BudgetCfg {
        dataset: "dataset".into(),
        capacity: 1.0,
        delta: 0.0,
        advanced: false,
    })
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value {s:?}: {e}"))
}

fn addr_of(args: &Args) -> Result<SocketAddr, String> {
    args.addr.ok_or_else(|| "--addr is required".into())
}

/// Runs one of the standard roles. Returns `None` for an unknown
/// role word so the calling binary can layer its own modes on top.
pub fn dispatch(role: &str, args: &Args) -> Option<Result<(), String>> {
    let result = match role {
        "driver" => {
            let exe = match std::env::current_exe() {
                Ok(exe) => exe,
                Err(e) => return Some(Err(e.to_string())),
            };
            let opts = DriverOpts {
                crash_origin: args.crash_origin.zip(args.crash_after.or(Some(0))),
            };
            run_driver(&exe, &args.spec, &args.out, &opts)
        }
        "aggregator" => {
            let faults = AggFaults {
                die_after: args.die_after.clone(),
                die_mid_journal: args.die_mid_journal,
            };
            run_aggregator(&args.spec, &args.out, &faults)
        }
        "shard" => {
            let faults = AggFaults {
                die_after: args.die_after.clone(),
                die_mid_journal: args.die_mid_journal,
            };
            match addr_of(args) {
                Ok(addr) => run_shard(&args.spec, args.shard, addr, &args.out, &faults),
                Err(e) => return Some(Err(e)),
            }
        }
        "device" => match addr_of(args) {
            Ok(addr) => run_device(&args.spec, args.shard, addr, &args.out),
            Err(e) => return Some(Err(e)),
        },
        "origin" => match addr_of(args) {
            Ok(addr) => run_origin(&args.spec, args.shard, addr, &args.out, args.crash_after),
            Err(e) => return Some(Err(e)),
        },
        "committee" => match addr_of(args) {
            Ok(addr) => run_committee(&args.spec, args.member, addr, &args.out),
            Err(e) => return Some(Err(e)),
        },
        _ => return None,
    };
    Some(result.map_err(|e| e.to_string()))
}
