//! Reconnecting request/response client.
//!
//! A [`Client`] owns at most one live [`SecureChannel`] to its server and
//! exposes a single blocking [`request`](Client::request) call. Any
//! transport failure — dial refused, read deadline missed, peer died,
//! frame tampered in flight — tears the channel down, waits out the
//! shared [`BackoffPolicy`] schedule (the same one the simulated
//! transport uses, in milliseconds instead of virtual ticks), re-dials,
//! re-handshakes, and re-sends. Servers keep handlers idempotent, so
//! at-least-once delivery is safe.

use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mycelium_math::rng::StdRng;
use mycelium_simnet::BackoffPolicy;

use crate::channel::{client_handshake, Identity, SecureChannel};
use crate::error::NetError;
use crate::frame::HEADER_LEN;
use crate::lock_recover;
use crate::metrics::NetMetrics;

/// Client tuning knobs.
#[derive(Clone)]
pub struct ClientConfig {
    /// This endpoint's static identity.
    pub identity: Identity,
    /// The server's expected static key (`None` skips pinning).
    pub expect_peer: Option<[u8; 32]>,
    /// Largest accepted reply payload.
    pub max_payload: usize,
    /// Per-request read deadline.
    pub read_timeout: Duration,
    /// Reconnect/retry schedule, `base` in milliseconds.
    pub backoff: BackoffPolicy,
}

impl ClientConfig {
    /// A config with the deployment-default deadline and backoff.
    pub fn new(identity: Identity, expect_peer: Option<[u8; 32]>) -> Self {
        ClientConfig {
            identity,
            expect_peer,
            max_payload: crate::frame::DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_secs(10),
            backoff: BackoffPolicy::new(50, 8),
        }
    }
}

/// A pooling, reconnecting client for one server address.
pub struct Client {
    server: SocketAddr,
    config: ClientConfig,
    channel: Option<SecureChannel>,
    rng: StdRng,
    metrics: Arc<Mutex<NetMetrics>>,
}

impl Client {
    /// Creates a client; nothing is dialed until the first request.
    pub fn new(server: SocketAddr, config: ClientConfig, rng: StdRng) -> Self {
        Client {
            server,
            config,
            channel: None,
            rng,
            metrics: NetMetrics::shared(),
        }
    }

    /// The client's accumulated wire metrics.
    pub fn metrics(&self) -> Arc<Mutex<NetMetrics>> {
        Arc::clone(&self.metrics)
    }

    /// Dials and handshakes if no channel is live.
    fn ensure_channel(&mut self) -> Result<(), NetError> {
        if self.channel.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(self.server)?;
        stream.set_nodelay(true).ok();
        let channel = client_handshake(
            stream,
            &self.config.identity,
            self.config.expect_peer,
            &mut self.rng,
            self.config.max_payload,
            Arc::clone(&self.metrics),
        )?;
        channel.set_read_timeout(Some(self.config.read_timeout))?;
        self.channel = Some(channel);
        Ok(())
    }

    /// Forces the next request onto a fresh connection (used by tests and
    /// by the driver after a server restart).
    pub fn disconnect(&mut self) {
        self.channel = None;
    }

    /// Sends `payload`, waits for the reply, retrying over fresh
    /// connections per the backoff schedule. `kind` labels the exchange
    /// in the metrics.
    pub fn request(&mut self, kind: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let started = Instant::now();
        let mut attempts: u32 = 0;
        loop {
            let result = self.try_once(payload);
            match result {
                Ok(reply) => {
                    let mut m = lock_recover(&self.metrics);
                    let sealed = SecureChannel::wire_cost(payload.len());
                    m.note_sent(kind, payload.len() as u64, sealed as u64);
                    m.note_recv(
                        kind,
                        reply.len() as u64,
                        SecureChannel::wire_cost(reply.len()) as u64,
                    );
                    m.note_latency(kind, started.elapsed().as_micros() as u64);
                    return Ok(reply);
                }
                Err(e) if e.is_retryable() => {
                    self.channel = None;
                    if self.config.backoff.exhausted(attempts) {
                        return Err(NetError::RetriesExhausted {
                            attempts: attempts + 1,
                            last: e.to_string(),
                        });
                    }
                    let wait = self.config.backoff.wait(attempts);
                    attempts += 1;
                    lock_recover(&self.metrics).reconnects += 1;
                    std::thread::sleep(Duration::from_millis(wait));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_once(&mut self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.ensure_channel()?;
        let channel = self.channel.as_mut().expect("ensured above");
        channel.send(payload)?;
        channel.recv()
    }

    /// Wire bytes one request/response exchange costs, excluding the
    /// handshake (request payload + reply payload, each framed+sealed).
    pub fn exchange_wire_cost(request_len: usize, reply_len: usize) -> usize {
        SecureChannel::wire_cost(request_len) + SecureChannel::wire_cost(reply_len)
    }
}

/// Per-frame overhead (header + AEAD tag) — the exact delta the
/// reconciliation test charges on top of application payload bytes.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + mycelium_crypto::aead::OVERHEAD;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Handler, Server, ServerConfig};
    use mycelium_math::rng::SeedableRng;

    fn echo_server(seed: u64) -> (Server, [u8; 32]) {
        let identity = Identity::derive(seed, 0);
        let public = identity.public;
        let handler: Arc<dyn Handler> =
            Arc::new(|_peer: [u8; 32], req: &[u8]| -> Result<Vec<u8>, NetError> {
                Ok(req.to_vec())
            });
        let server = Server::spawn(
            "127.0.0.1:0",
            identity,
            ServerConfig::default(),
            handler,
            seed,
        )
        .unwrap();
        (server, public)
    }

    #[test]
    fn request_reply_and_metrics() {
        let (server, server_pub) = echo_server(11);
        let mut client = Client::new(
            server.local_addr(),
            ClientConfig::new(Identity::derive(11, 100), Some(server_pub)),
            StdRng::seed_from_u64(5),
        );
        assert_eq!(client.request("Echo", b"ping").unwrap(), b"ping");
        assert_eq!(client.request("Echo", b"pong").unwrap(), b"pong");
        let m = client.metrics();
        let m = m.lock().unwrap();
        assert_eq!(m.sent["Echo"].frames, 2);
        assert_eq!(m.sent["Echo"].payload_bytes, 8);
        assert_eq!(m.sent["Echo"].wire_bytes, 2 * (4 + FRAME_OVERHEAD) as u64);
        assert_eq!(m.handshakes, 1);
        assert_eq!(m.latency["Echo"].count(), 2);
        drop(m);
        server.shutdown();
    }

    #[test]
    fn reconnects_after_channel_loss() {
        let (server, server_pub) = echo_server(13);
        let mut config = ClientConfig::new(Identity::derive(13, 100), Some(server_pub));
        config.backoff = BackoffPolicy::new(1, 4);
        let mut client = Client::new(server.local_addr(), config, StdRng::seed_from_u64(6));
        assert_eq!(client.request("Echo", b"a").unwrap(), b"a");
        // Simulate a dead connection: the next send hits a closed socket
        // and the client must transparently re-dial.
        client.disconnect();
        assert_eq!(client.request("Echo", b"b").unwrap(), b"b");
        assert_eq!(client.metrics().lock().unwrap().handshakes, 2);
        server.shutdown();
    }

    #[test]
    fn retries_exhaust_against_dead_server() {
        // Bind a port, then close it so connects are refused.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut config = ClientConfig::new(Identity::derive(17, 100), None);
        config.backoff = BackoffPolicy::new(1, 3);
        let mut client = Client::new(addr, config, StdRng::seed_from_u64(7));
        match client.request("Echo", b"x") {
            Err(NetError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 4),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
