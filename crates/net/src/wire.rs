//! Byte-level serialization: a little-endian writer/reader pair with
//! typed truncation errors.
//!
//! The workspace is hermetic (no serde), so every wire structure is
//! encoded by hand through these helpers. All integers are little-endian;
//! variable-length fields carry an explicit length prefix; readers never
//! panic on malformed input — they return [`NetError::Decode`], which
//! matters because a decode runs only *after* AEAD authentication, so a
//! failure here is version skew, not an attack to be absorbed quietly.

use crate::error::NetError;

/// Append-only byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finishes and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_vec(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    /// Appends a `u32` count followed by the raw little-endian words.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a `u32` count followed by the raw little-endian words.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_vec(s.as_bytes());
    }
}

/// Cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short(what: &str) -> NetError {
    NetError::Decode(format!("truncated while reading {what}"))
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole payload was consumed (catches length bugs).
    pub fn expect_end(&self) -> Result<(), NetError> {
        if self.remaining() != 0 {
            return Err(NetError::Decode(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(short(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, NetError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        self.take(n, "bytes")
    }

    /// Reads a fixed 32-byte array.
    pub fn get_array32(&mut self) -> Result<[u8; 32], NetError> {
        Ok(self.take(32, "[u8; 32]")?.try_into().unwrap())
    }

    /// Reads a `u32`-length-prefixed byte vector.
    pub fn get_vec(&mut self) -> Result<Vec<u8>, NetError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(short("length-prefixed bytes"));
        }
        Ok(self.take(n, "vec")?.to_vec())
    }

    /// Reads a `u32`-count-prefixed `u64` slice.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, NetError> {
        let n = self.get_u32()? as usize;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(short("u64 slice"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a `u32`-count-prefixed `u32` slice.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, NetError> {
        let n = self.get_u32()? as usize;
        if n.checked_mul(4).is_none_or(|b| b > self.remaining()) {
            return Err(short("u32 slice"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, NetError> {
        String::from_utf8(self.get_vec()?)
            .map_err(|_| NetError::Decode("invalid UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-5);
        w.put_f64(1.5);
        w.put_vec(b"abc");
        w.put_u64_slice(&[1, 2, 3]);
        w.put_str("héllo");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 513);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -5);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert_eq!(r.get_vec().unwrap(), b"abc");
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(NetError::Decode(_))));
    }

    #[test]
    fn oversized_length_prefix_is_typed() {
        // A length prefix claiming more bytes than remain must not
        // allocate or panic.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_vec(), Err(NetError::Decode(_))));
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_u64_vec(), Err(NetError::Decode(_))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[0]);
        assert!(r.expect_end().is_err());
    }
}
