//! Thread-per-connection request/response server with a bounded worker
//! pool.
//!
//! One accept thread hands sockets to a fixed pool of workers over a
//! bounded queue (backpressure: when every worker is busy and the queue
//! is full, `accept` simply stops draining and the kernel's listen
//! backlog absorbs the burst). Each worker runs the server handshake and
//! then a request/response loop: read one sealed frame, call the
//! handler, write one sealed reply. Handlers must therefore be
//! *idempotent* — a client that times out re-sends the same request over
//! a fresh connection, so the server may see a request twice.

use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mycelium_math::rng::{SeedableRng, StdRng};

use crate::channel::{server_handshake, Identity};
use crate::error::NetError;
use crate::lock_recover;
use crate::metrics::NetMetrics;

/// A request handler: sealed request payload in, sealed reply payload out.
///
/// The handler sees only authenticated plaintext; `peer` is the client's
/// verified static public key, usable for authorization decisions.
pub trait Handler: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, peer: [u8; 32], request: &[u8]) -> Result<Vec<u8>, NetError>;
}

impl<F> Handler for F
where
    F: Fn([u8; 32], &[u8]) -> Result<Vec<u8>, NetError> + Send + Sync + 'static,
{
    fn handle(&self, peer: [u8; 32], request: &[u8]) -> Result<Vec<u8>, NetError> {
        self(peer, request)
    }
}

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads (and the bound on concurrent connections served).
    pub workers: usize,
    /// Largest accepted application payload.
    pub max_payload: usize,
    /// How long a worker blocks on an idle connection before polling the
    /// shutdown flag.
    pub idle_timeout: Duration,
    /// Client static keys allowed to connect (`None` accepts any peer
    /// that completes key confirmation).
    pub roster: Option<HashSet<[u8; 32]>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_payload: crate::frame::DEFAULT_MAX_PAYLOAD,
            idle_timeout: Duration::from_millis(200),
            roster: None,
        }
    }
}

/// A running server; dropping it without [`shutdown`](Server::shutdown)
/// leaks the threads until process exit.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    metrics: Arc<Mutex<NetMetrics>>,
}

impl Server {
    /// Binds `bind_addr` (e.g. `127.0.0.1:0`) and starts the accept
    /// thread plus the worker pool. `seed` keys the per-connection
    /// handshake ephemerals.
    pub fn spawn(
        bind_addr: &str,
        identity: Identity,
        config: ServerConfig,
        handler: Arc<dyn Handler>,
        seed: u64,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = NetMetrics::shared();
        let conn_counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = sync_channel::<TcpStream>(config.workers * 2);
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(config.workers + 1);
        for _ in 0..config.workers {
            let rx = Arc::clone(&rx);
            let identity = identity.clone();
            let config = config.clone();
            let handler = Arc::clone(&handler);
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            let conn_counter = Arc::clone(&conn_counter);
            threads.push(std::thread::spawn(move || {
                worker_loop(
                    &rx,
                    &identity,
                    &config,
                    handler.as_ref(),
                    &shutdown,
                    &metrics,
                    &conn_counter,
                    seed,
                );
            }));
        }
        {
            let shutdown = Arc::clone(&shutdown);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        // A send fails only after shutdown dropped the
                        // receiver; stop accepting then.
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        Ok(Server {
            addr,
            shutdown,
            threads,
            metrics,
        })
    }

    /// The bound address (with the kernel-chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's accumulated wire metrics.
    pub fn metrics(&self) -> Arc<Mutex<NetMetrics>> {
        Arc::clone(&self.metrics)
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    identity: &Identity,
    config: &ServerConfig,
    handler: &dyn Handler,
    shutdown: &AtomicBool,
    metrics: &Arc<Mutex<NetMetrics>>,
    conn_counter: &AtomicU64,
    seed: u64,
) {
    loop {
        let stream = {
            let guard = lock_recover(rx);
            match guard.recv_timeout(Duration::from_millis(100)) {
                Ok(s) => Some(s),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(stream) = stream else { continue };
        let conn = conn_counter.fetch_add(1, Ordering::SeqCst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e7e_c0de).with_stream(conn);
        let channel = server_handshake(
            stream,
            identity,
            config.roster.as_ref(),
            &mut rng,
            config.max_payload,
            Arc::clone(metrics),
        );
        let Ok(mut channel) = channel else {
            // A failed handshake (unknown peer, dummy wake-up socket,
            // port scan) costs this worker nothing further.
            continue;
        };
        let _ = channel.set_read_timeout(Some(config.idle_timeout));
        loop {
            match channel.recv() {
                Ok(request) => {
                    let reply = match handler.handle(channel.peer(), &request) {
                        Ok(r) => r,
                        Err(_) => break,
                    };
                    if channel.send(&reply).is_err() {
                        break;
                    }
                }
                Err(NetError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                // Anything else — peer gone, tampered frame, replay —
                // ends this connection; the client reconnects if it
                // still cares.
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::client_handshake;

    #[test]
    fn echo_round_trip_and_shutdown() {
        let identity = Identity::derive(3, 0);
        let server_pub = identity.public;
        let handler = Arc::new(|_peer: [u8; 32], req: &[u8]| -> Result<Vec<u8>, NetError> {
            let mut out = req.to_vec();
            out.reverse();
            Ok(out)
        });
        let server =
            Server::spawn("127.0.0.1:0", identity, ServerConfig::default(), handler, 3).unwrap();
        let addr = server.local_addr();

        let mut rng = StdRng::seed_from_u64(99);
        let client_id = Identity::derive(3, 100);
        let stream = TcpStream::connect(addr).unwrap();
        let mut channel = client_handshake(
            stream,
            &client_id,
            Some(server_pub),
            &mut rng,
            1 << 20,
            NetMetrics::shared(),
        )
        .unwrap();
        channel.send(b"abc").unwrap();
        assert_eq!(channel.recv().unwrap(), b"cba");
        channel.send(b"xyz").unwrap();
        assert_eq!(channel.recv().unwrap(), b"zyx");
        drop(channel);
        server.shutdown();
    }
}
