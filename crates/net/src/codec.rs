//! Binary codecs for the cryptographic payloads the round exchanges.
//!
//! `RnsPoly` construction panics on malformed input by design (its
//! callers are trusted in-process code), so these decoders validate
//! *everything* — level bounds, residue ranges, part counts — and return
//! [`NetError::Decode`] before any constructor runs. A peer can never
//! panic this process with bytes, only earn a typed rejection. (In the
//! deployed protocol a tampered frame already dies at the AEAD; these
//! checks guard against version skew and honest bugs.)

use std::sync::Arc;

use mycelium::plan::SignedContribution;
use mycelium_bgv::{BgvParams, Ciphertext};
use mycelium_crypto::merkle::InclusionProof;
use mycelium_crypto::sha256::Digest;
use mycelium_math::rns::{Representation, RnsContext, RnsPoly};
use mycelium_query::eval::{GroupResult, PlainResult};
use mycelium_sharing::DecryptionShare;
use mycelium_zkp::argument::{Opening, Proof};

use crate::error::NetError;
use crate::wire::{Reader, Writer};

/// Everything a decoder needs to rebuild ring elements.
pub struct CodecCtx {
    /// The RNS context (moduli chain, degree).
    pub ctx: Arc<RnsContext>,
    /// The BGV parameters the ciphertexts live under.
    pub params: BgvParams,
}

impl CodecCtx {
    /// Builds a fresh context for a parameter set. Only usable when the
    /// decoded values never mix with ring elements from another context
    /// (`RnsPoly` arithmetic requires pointer-identical contexts) — for
    /// anything touching a `KeySet`, use [`CodecCtx::with_context`].
    pub fn new(params: &BgvParams) -> Self {
        CodecCtx {
            ctx: params.build_context(),
            params: params.clone(),
        }
    }

    /// Wraps an existing context (e.g. `keys.public.context()`), so the
    /// decoded polynomials interoperate with everything derived from it.
    pub fn with_context(ctx: Arc<RnsContext>, params: &BgvParams) -> Self {
        CodecCtx {
            ctx,
            params: params.clone(),
        }
    }
}

/// Upper bound on ciphertext parts accepted off the wire (fresh = 2,
/// pre-relinearization products go to 3; 8 leaves headroom).
const MAX_CT_PARTS: usize = 8;
/// Upper bound on proof openings accepted off the wire.
const MAX_OPENINGS: usize = 1 << 16;
/// Upper bound on Merkle path length accepted off the wire (2^48 leaves).
const MAX_SIBLINGS: usize = 48;

/// Encoded size of one polynomial at `level` residue rows.
pub fn poly_encoded_bytes(level: usize, degree: usize) -> usize {
    2 + level * degree * 8
}

/// Encoded size of a ciphertext with `nparts` parts at `level`.
pub fn ciphertext_encoded_bytes(nparts: usize, level: usize, degree: usize) -> usize {
    1 + 8 + nparts * poly_encoded_bytes(level, degree)
}

/// Serializes one `RnsPoly`.
pub fn encode_poly(w: &mut Writer, p: &RnsPoly) {
    w.put_u8(match p.representation() {
        Representation::Coefficient => 0,
        Representation::Ntt => 1,
    });
    w.put_u8(p.level() as u8);
    for row in p.residues() {
        for &x in row {
            w.put_u64(x);
        }
    }
}

/// Deserializes one `RnsPoly`, validating level and residue ranges.
pub fn decode_poly(r: &mut Reader, cc: &CodecCtx) -> Result<RnsPoly, NetError> {
    let rep = match r.get_u8()? {
        0 => Representation::Coefficient,
        1 => Representation::Ntt,
        v => return Err(NetError::Decode(format!("bad representation tag {v}"))),
    };
    let level = r.get_u8()? as usize;
    if level < 1 || level > cc.ctx.max_level() {
        return Err(NetError::Decode(format!(
            "polynomial level {level} outside 1..={}",
            cc.ctx.max_level()
        )));
    }
    let degree = cc.ctx.degree();
    let mut residues = Vec::with_capacity(level);
    for i in 0..level {
        let q = cc.ctx.moduli()[i].value();
        let mut row = Vec::with_capacity(degree);
        for _ in 0..degree {
            let x = r.get_u64()?;
            if x >= q {
                return Err(NetError::Decode(format!(
                    "residue {x} out of range for modulus {q}"
                )));
            }
            row.push(x);
        }
        residues.push(row);
    }
    Ok(RnsPoly::from_residues(Arc::clone(&cc.ctx), rep, residues))
}

/// Serializes a ciphertext.
pub fn encode_ciphertext(w: &mut Writer, ct: &Ciphertext) {
    w.put_u8(ct.parts().len() as u8);
    w.put_f64(ct.noise_log2());
    for p in ct.parts() {
        encode_poly(w, p);
    }
}

/// Deserializes a ciphertext.
pub fn decode_ciphertext(r: &mut Reader, cc: &CodecCtx) -> Result<Ciphertext, NetError> {
    let nparts = r.get_u8()? as usize;
    if !(1..=MAX_CT_PARTS).contains(&nparts) {
        return Err(NetError::Decode(format!(
            "bad ciphertext part count {nparts}"
        )));
    }
    let noise_log2 = r.get_f64()?;
    if !noise_log2.is_finite() {
        return Err(NetError::Decode("non-finite noise bound".into()));
    }
    let mut parts = Vec::with_capacity(nparts);
    for _ in 0..nparts {
        parts.push(decode_poly(r, cc)?);
    }
    let level = parts[0].level();
    if parts.iter().any(|p| p.level() != level) {
        return Err(NetError::Decode("mixed-level ciphertext parts".into()));
    }
    Ok(Ciphertext::from_parts(parts, noise_log2, cc.params.clone()))
}

/// Serializes an `Option<Ciphertext>` (the aggregator's per-slot state).
pub fn encode_opt_ciphertext(w: &mut Writer, ct: &Option<Ciphertext>) {
    match ct {
        None => w.put_u8(0),
        Some(ct) => {
            w.put_u8(1);
            encode_ciphertext(w, ct);
        }
    }
}

/// Deserializes an `Option<Ciphertext>`.
pub fn decode_opt_ciphertext(
    r: &mut Reader,
    cc: &CodecCtx,
) -> Result<Option<Ciphertext>, NetError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(decode_ciphertext(r, cc)?)),
        v => Err(NetError::Decode(format!("bad option tag {v}"))),
    }
}

fn encode_digest(w: &mut Writer, d: &Digest) {
    w.put_bytes(d);
}

fn decode_digest(r: &mut Reader) -> Result<Digest, NetError> {
    r.get_array32()
}

/// Serializes a ZKP spot-check proof.
pub fn encode_proof(w: &mut Writer, p: &Proof) {
    encode_digest(w, &p.witness_root);
    w.put_u32(p.checks as u32);
    w.put_u32(p.openings.len() as u32);
    for o in &p.openings {
        w.put_u64(o.var as u64);
        w.put_u64(o.value);
        encode_digest(w, &o.salt);
        w.put_u32(o.proof.siblings.len() as u32);
        for s in &o.proof.siblings {
            encode_digest(w, s);
        }
    }
}

/// Deserializes a ZKP spot-check proof.
pub fn decode_proof(r: &mut Reader) -> Result<Proof, NetError> {
    let witness_root = decode_digest(r)?;
    let checks = r.get_u32()? as usize;
    let n = r.get_u32()? as usize;
    if n > MAX_OPENINGS {
        return Err(NetError::Decode(format!("proof claims {n} openings")));
    }
    let mut openings = Vec::with_capacity(n);
    for _ in 0..n {
        let var = r.get_u64()? as usize;
        let value = r.get_u64()?;
        let salt = decode_digest(r)?;
        let ns = r.get_u32()? as usize;
        if ns > MAX_SIBLINGS {
            return Err(NetError::Decode(format!("merkle path of {ns} siblings")));
        }
        let mut siblings = Vec::with_capacity(ns);
        for _ in 0..ns {
            siblings.push(decode_digest(r)?);
        }
        openings.push(Opening {
            var,
            value,
            salt,
            proof: InclusionProof { siblings },
        });
    }
    Ok(Proof {
        witness_root,
        openings,
        checks,
    })
}

/// Serializes a device contribution.
pub fn encode_contribution(w: &mut Writer, sc: &SignedContribution) {
    w.put_u32(sc.device);
    encode_ciphertext(w, &sc.ct);
    match &sc.proof {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            encode_proof(w, p);
        }
    }
}

/// Deserializes a device contribution.
pub fn decode_contribution(r: &mut Reader, cc: &CodecCtx) -> Result<SignedContribution, NetError> {
    let device = r.get_u32()?;
    let ct = decode_ciphertext(r, cc)?;
    let proof = match r.get_u8()? {
        0 => None,
        1 => Some(decode_proof(r)?),
        v => return Err(NetError::Decode(format!("bad option tag {v}"))),
    };
    Ok(SignedContribution { device, ct, proof })
}

/// Serializes a threshold decryption share.
pub fn encode_share(w: &mut Writer, s: &DecryptionShare) {
    w.put_u64(s.member);
    encode_poly(w, &s.d);
}

/// Deserializes a threshold decryption share.
pub fn decode_share(r: &mut Reader, cc: &CodecCtx) -> Result<DecryptionShare, NetError> {
    let member = r.get_u64()?;
    let d = decode_poly(r, cc)?;
    Ok(DecryptionShare { member, d })
}

/// Serializes a decoded plaintext query result.
pub fn encode_plain_result(w: &mut Writer, pr: &PlainResult) {
    w.put_u32(pr.groups.len() as u32);
    for g in &pr.groups {
        w.put_str(&g.label);
        w.put_u64_slice(&g.histogram);
        w.put_u64(g.total_pairs);
        w.put_u64(g.total_clipped_sum);
    }
}

/// Deserializes a decoded plaintext query result.
pub fn decode_plain_result(r: &mut Reader) -> Result<PlainResult, NetError> {
    let n = r.get_u32()? as usize;
    if n > 1 << 16 {
        return Err(NetError::Decode(format!("result claims {n} groups")));
    }
    let mut groups = Vec::with_capacity(n);
    for _ in 0..n {
        groups.push(GroupResult {
            label: r.get_str()?,
            histogram: r.get_u64_vec()?,
            total_pairs: r.get_u64()?,
            total_clipped_sum: r.get_u64()?,
        });
    }
    Ok(PlainResult { groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mycelium_bgv::{KeySet, Plaintext};
    use mycelium_math::rng::{SeedableRng, StdRng};

    fn cc() -> CodecCtx {
        CodecCtx::new(&BgvParams::test_small())
    }

    #[test]
    fn ciphertext_roundtrip_preserves_decryption() {
        let params = BgvParams::test_small();
        let mut rng = StdRng::seed_from_u64(1);
        let keys = KeySet::generate(&params, &mut rng);
        let cc = CodecCtx::with_context(Arc::clone(keys.public.context()), &params);
        let mut coeffs = vec![0u64; cc.params.n];
        coeffs[3] = 7;
        let pt = Plaintext::new(coeffs, cc.params.plaintext_modulus).unwrap();
        let ct = Ciphertext::encrypt(&keys.public, &pt, &mut rng).unwrap();

        let mut w = Writer::new();
        encode_ciphertext(&mut w, &ct);
        let bytes = w.finish();
        assert_eq!(
            bytes.len(),
            ciphertext_encoded_bytes(ct.parts().len(), ct.level(), cc.params.n)
        );
        let mut r = Reader::new(&bytes);
        let back = decode_ciphertext(&mut r, &cc).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.decrypt(&keys.secret).coeffs(), pt.coeffs());
    }

    #[test]
    fn out_of_range_residue_rejected() {
        let cc = cc();
        let mut rng = StdRng::seed_from_u64(2);
        let keys = KeySet::generate(&cc.params, &mut rng);
        let pt = Plaintext::zero(cc.params.n, cc.params.plaintext_modulus);
        let ct = Ciphertext::encrypt(&keys.public, &pt, &mut rng).unwrap();
        let mut w = Writer::new();
        encode_ciphertext(&mut w, &ct);
        let mut bytes = w.finish();
        // Overwrite the first residue word with u64::MAX — must be a
        // typed decode error, never a panic inside RnsPoly.
        let off = 1 + 8 + 2; // nparts + noise + rep/level tags
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_ciphertext(&mut r, &cc),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn bad_level_rejected() {
        let cc = cc();
        let mut w = Writer::new();
        w.put_u8(2); // parts
        w.put_f64(1.0);
        w.put_u8(1); // rep = Ntt
        w.put_u8(200); // level far beyond the chain
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_ciphertext(&mut r, &cc),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn proof_roundtrip() {
        let p = Proof {
            witness_root: [9u8; 32],
            openings: vec![Opening {
                var: 4,
                value: 1,
                salt: [3u8; 32],
                proof: InclusionProof {
                    siblings: vec![[1u8; 32], [2u8; 32]],
                },
            }],
            checks: 80,
        };
        let mut w = Writer::new();
        encode_proof(&mut w, &p);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let back = decode_proof(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.witness_root, p.witness_root);
        assert_eq!(back.checks, 80);
        assert_eq!(back.openings.len(), 1);
        assert_eq!(back.openings[0].proof.siblings.len(), 2);
    }

    #[test]
    fn plain_result_roundtrip() {
        let pr = PlainResult {
            groups: vec![GroupResult {
                label: "all".into(),
                histogram: vec![5, 0, 2],
                total_pairs: 7,
                total_clipped_sum: 4,
            }],
        };
        let mut w = Writer::new();
        encode_plain_result(&mut w, &pr);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let back = decode_plain_result(&mut r).unwrap();
        assert_eq!(back.groups[0].label, "all");
        assert_eq!(back.groups[0].histogram, vec![5, 0, 2]);
    }
}
