//! `mycelium-net`: the real-network transport plane.
//!
//! Everything the repository runs elsewhere as function calls
//! ([`mycelium::run_query_encrypted`]) or as simulated actors
//! ([`mycelium::run_query_simulated`]) runs here across real OS
//! processes over loopback TCP — same planning, same cryptography, same
//! bit-exact decoded histogram. Hermetic like the rest of the
//! workspace: built on `std::net` and the in-repo crypto, no external
//! dependencies.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed frames with a versioned 20-byte header.
//! * [`channel`] — mutually authenticated key agreement (x25519 +
//!   HKDF from `mycelium-crypto`) and AEAD-sealed [`SecureChannel`]s
//!   with strictly sequential per-direction nonces (replay/reorder
//!   rejection for free).
//! * [`server`] / [`client`] — a thread-per-connection request/response
//!   server with a bounded worker pool, and a reconnecting client that
//!   reuses the simulated transport's [`BackoffPolicy`] schedule.
//! * [`codec`] / [`proto`] — validated wire codecs for ciphertexts,
//!   proofs, and decryption shares, and the query-round message set.
//! * [`journal`] — the aggregator's append-only, checksummed,
//!   fsync'd write-ahead journal: every accepted mutation is durable
//!   before the reply, and a respawned aggregator replays it back to
//!   the exact pre-crash state.
//! * [`round`] — the multi-process round itself: aggregator server,
//!   device/origin/committee client roles, and the driver that spawns
//!   and supervises them.
//! * [`chaos`] — the seeded kill/respawn supervisor ([`Supervised`],
//!   [`ChaosPlan`]) behind the `chaos_round` binary: murders roles at
//!   derived protocol steps and verifies the round still ends in a
//!   bit-identical histogram or a typed failure.
//! * [`cli`] — flag parsing and role dispatch shared by the
//!   `net_round` and `chaos_round` binaries.
//! * [`metrics`] — per-kind wire counters and latency series, merged
//!   across processes and reconciled against the analytical cost model
//!   in `mycelium::costs`.
//! * [`tamper`] — a frame-aware byte-flipping relay used by adversarial
//!   tests to prove tampering yields typed AEAD errors, not panics.

pub mod channel;
pub mod chaos;
pub mod cli;
pub mod client;
pub mod codec;
pub mod error;
pub mod frame;
pub mod journal;
pub mod metrics;
pub mod proto;
pub mod round;
pub mod server;
pub mod tamper;
pub mod wire;

pub use channel::{Identity, SecureChannel, HANDSHAKE_WIRE_BYTES};
pub use chaos::{ChaosOutcome, ChaosPlan, Supervised};
pub use client::{Client, ClientConfig, FRAME_OVERHEAD};
pub use error::NetError;
pub use journal::{Journal, JournalError};
pub use metrics::NetMetrics;
pub use round::{RoundSetup, RoundSpec};
pub use server::{Handler, Server, ServerConfig};
pub use tamper::TamperProxy;

// Re-exported so doc links and downstream users name one source of truth.
pub use mycelium_simnet::BackoffPolicy;

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Hub state is designed idempotent/first-write-wins, so a half-applied
/// mutation from a panicked handler thread cannot corrupt it — whereas
/// std's default poisoning policy (every later `lock().unwrap()` panics
/// too) would wedge the whole server on one bad request. Every lock in
/// the transport plane goes through here.
pub fn lock_recover<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
