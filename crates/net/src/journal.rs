//! Append-only write-ahead journal for the aggregator's round state.
//!
//! The paper's threat model lets the aggregator be *untrusted* but the
//! round still needs it *available* for hours; this module makes its
//! in-memory [`AggState`](crate::round::AggState) crash-durable so a
//! `kill -9` at any protocol step loses nothing. The aggregator logs
//! every **accepted, state-mutating** event here before replying to the
//! client; a respawned process replays the journal and resumes the
//! round mid-phase.
//!
//! On-disk format (all integers little-endian):
//!
//! ```text
//! ┌──────────────────────── header (44 bytes) ────────────────────────┐
//! │ magic "MYCWALv1" (8) │ format version u32 (4) │ binding (32)      │
//! └───────────────────────────────────────────────────────────────────┘
//! ┌──────────────────────── record (40 + len) ────────────────────────┐
//! │ len u32 (4) │ payload (len) │ sha256(seq_le ‖ payload) (32) │ ... │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * The **binding digest** ties a journal to one round configuration
//!   (we use a digest of the `RoundSpec` wire encoding), so a restart
//!   with different parameters cannot silently replay a stale journal.
//! * The record checksum covers the record's **sequence number** (its
//!   0-based index) as well as its payload, so records cannot be
//!   reordered, duplicated, or transplanted between offsets without
//!   detection.
//! * [`Journal::open`] truncates a **torn tail** — a record whose
//!   length prefix, payload, or checksum is incomplete because the
//!   process died mid-write — recovering the longest valid prefix.
//!   A *complete but corrupt* record (bit flip) is a typed
//!   [`JournalError::Corrupt`], never a panic or silent divergence.
//! * [`Journal::commit`] flushes and `fsync`s; the aggregator calls it
//!   after appending each accepted request and before replying, so an
//!   acknowledged mutation is always on disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use mycelium_crypto::sha256::{sha256_concat, Digest};

/// File magic: identifies a Mycelium write-ahead log, version 1.
pub const MAGIC: &[u8; 8] = b"MYCWALv1";
/// Format version inside the header (bumped on incompatible changes).
pub const FORMAT_VERSION: u32 = 1;
/// Header length: magic + version + binding digest.
pub const HEADER_BYTES: usize = 8 + 4 + 32;
/// Fixed per-record overhead: length prefix + checksum.
pub const RECORD_OVERHEAD: usize = 4 + 32;
/// Sanity bound on a single record (a full ciphertext push is ~1 MiB at
/// simulation parameters; 64 MiB leaves headroom for paper-scale ones).
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// Typed journal failure — corruption is always *detected*, never
/// silently replayed.
#[derive(Debug)]
pub enum JournalError {
    /// An OS-level file failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] / [`FORMAT_VERSION`].
    BadHeader {
        /// Human-readable description of what was wrong.
        why: String,
    },
    /// The journal was written for a different round configuration.
    BindingMismatch {
        /// Binding digest found in the header.
        got: Digest,
        /// Binding digest of the round being recovered.
        want: Digest,
    },
    /// A complete record failed its checksum — a bit flip or an
    /// out-of-place record, not a torn write.
    Corrupt {
        /// 0-based index of the bad record.
        seq: u64,
    },
    /// A record declares a length beyond [`MAX_RECORD_BYTES`].
    RecordTooLarge {
        /// 0-based index of the offending record.
        seq: u64,
        /// Declared payload length.
        len: usize,
    },
    /// Replayed state diverged from a digest checkpoint logged before
    /// the crash — the replay did not reproduce the pre-crash state.
    StateDiverged {
        /// Record count at which the checkpoint was taken.
        at_records: u64,
        /// Digest the pre-crash process logged.
        want: Digest,
        /// Digest the replayed state produced.
        got: Digest,
    },
    /// A replayed record is semantically invalid for the current state
    /// (journal written by a buggy or incompatible aggregator).
    Replay {
        /// 0-based index of the record that failed to apply.
        seq: u64,
        /// The rejection, rendered.
        why: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader { why } => write!(f, "bad journal header: {why}"),
            JournalError::BindingMismatch { got, want } => write!(
                f,
                "journal bound to a different round: {:02x}{:02x}… vs {:02x}{:02x}…",
                got[0], got[1], want[0], want[1]
            ),
            JournalError::Corrupt { seq } => {
                write!(f, "journal record {seq} failed its checksum")
            }
            JournalError::RecordTooLarge { seq, len } => {
                write!(f, "journal record {seq} declares {len} bytes")
            }
            JournalError::StateDiverged { at_records, .. } => {
                write!(f, "replayed state diverged at record {at_records}")
            }
            JournalError::Replay { seq, why } => {
                write!(f, "journal record {seq} failed to apply: {why}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

fn record_checksum(seq: u64, payload: &[u8]) -> Digest {
    sha256_concat(&[&seq.to_le_bytes(), payload])
}

/// An append-only, checksummed, fsync'd write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    records: u64,
    /// When `Some(n)`, the next append writes only the first `n` bytes
    /// of the encoded record and then reports success — a deterministic
    /// stand-in for a crash mid-`write(2)`, used by the chaos drill to
    /// exercise torn-tail truncation on the *real* recovery path.
    torn_write: Option<usize>,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// bound to `binding`.
    pub fn create(path: &Path, binding: &Digest) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(binding);
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(Self {
            file,
            records: 0,
            torn_write: None,
        })
    }

    /// Opens an existing journal, verifies the header against `binding`,
    /// and returns the journal positioned for appending plus every valid
    /// record payload in order.
    ///
    /// A torn tail (incomplete final record) is truncated away; a
    /// complete record with a bad checksum is [`JournalError::Corrupt`].
    pub fn open(path: &Path, binding: &Digest) -> Result<(Self, Vec<Vec<u8>>), JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_BYTES {
            return Err(JournalError::BadHeader {
                why: format!("{} bytes, header needs {HEADER_BYTES}", bytes.len()),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(JournalError::BadHeader {
                why: format!("magic {:02x?}", &bytes[..8]),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(JournalError::BadHeader {
                why: format!("format version {version}, expected {FORMAT_VERSION}"),
            });
        }
        let got: Digest = bytes[12..HEADER_BYTES].try_into().unwrap();
        if &got != binding {
            return Err(JournalError::BindingMismatch {
                got,
                want: *binding,
            });
        }

        let mut records = Vec::new();
        let mut pos = HEADER_BYTES;
        let mut valid_end = pos;
        loop {
            // Torn length prefix → truncate.
            if bytes.len() - pos < 4 {
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let seq = records.len() as u64;
            if len > MAX_RECORD_BYTES {
                // A length this absurd is corruption of the prefix
                // itself, not a torn write: typed error, no truncation.
                return Err(JournalError::RecordTooLarge { seq, len });
            }
            // Torn payload or checksum → truncate.
            if bytes.len() - pos < 4 + len + 32 {
                break;
            }
            let payload = &bytes[pos + 4..pos + 4 + len];
            let sum: Digest = bytes[pos + 4 + len..pos + 4 + len + 32].try_into().unwrap();
            if record_checksum(seq, payload) != sum {
                return Err(JournalError::Corrupt { seq });
            }
            records.push(payload.to_vec());
            pos += 4 + len + 32;
            valid_end = pos;
        }
        if valid_end < bytes.len() {
            // Drop the torn tail so the next append starts on a clean
            // record boundary.
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))?;
        Ok((
            Self {
                file,
                records: records.len() as u64,
                torn_write: None,
            },
            records,
        ))
    }

    /// Opens `path` if it exists, otherwise creates it. Returns the
    /// journal plus any replayable records (empty for a fresh file).
    pub fn open_or_create(
        path: &Path,
        binding: &Digest,
    ) -> Result<(Self, Vec<Vec<u8>>), JournalError> {
        if path.exists() {
            Self::open(path, binding)
        } else {
            Ok((Self::create(path, binding)?, Vec::new()))
        }
    }

    /// Number of records written (or recovered) so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Appends one record. Not durable until [`Journal::commit`].
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        assert!(payload.len() <= MAX_RECORD_BYTES, "record too large");
        let seq = self.records;
        let mut rec = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&record_checksum(seq, payload));
        if let Some(n) = self.torn_write.take() {
            // Simulated mid-write crash: persist a prefix of the record
            // and stop there. The caller aborts right after.
            let n = n.min(rec.len().saturating_sub(1)).max(1);
            self.file.write_all(&rec[..n])?;
            let _ = self.file.sync_all();
            return Ok(());
        }
        self.file.write_all(&rec)?;
        self.records += 1;
        Ok(())
    }

    /// Makes everything appended so far durable (`fsync`).
    pub fn commit(&mut self) -> Result<(), JournalError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Arms a simulated torn write: the **next** [`Journal::append`]
    /// persists only the first `bytes` bytes of the encoded record.
    /// Used by the chaos drill (`--die-mid-journal`).
    pub fn arm_torn_write(&mut self, bytes: usize) {
        self.torn_write = Some(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("myc-journal-{}-{tag}.bin", std::process::id()))
    }

    fn binding() -> Digest {
        [7u8; 32]
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = tmp("roundtrip");
        let payloads: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![0xAB; 1000]];
        {
            let mut j = Journal::create(&path, &binding()).unwrap();
            for p in &payloads {
                j.append(p).unwrap();
            }
            j.commit().unwrap();
            assert_eq!(j.record_count(), 3);
        }
        let (j, recovered) = Journal::open(&path, &binding()).unwrap();
        assert_eq!(recovered, payloads);
        assert_eq!(j.record_count(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_after_reopen_continues_the_sequence() {
        let path = tmp("continue");
        {
            let mut j = Journal::create(&path, &binding()).unwrap();
            j.append(b"first").unwrap();
            j.commit().unwrap();
        }
        {
            let (mut j, rec) = Journal::open(&path, &binding()).unwrap();
            assert_eq!(rec.len(), 1);
            j.append(b"second").unwrap();
            j.commit().unwrap();
        }
        let (_, rec) = Journal::open(&path, &binding()).unwrap();
        assert_eq!(rec, vec![b"first".to_vec(), b"second".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binding_mismatch_is_typed() {
        let path = tmp("binding");
        Journal::create(&path, &binding()).unwrap();
        let other = [9u8; 32];
        match Journal::open(&path, &other) {
            Err(JournalError::BindingMismatch { got, want }) => {
                assert_eq!(got, binding());
                assert_eq!(want, other);
            }
            other => panic!("expected BindingMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_is_detected_not_replayed() {
        let path = tmp("bitflip");
        {
            let mut j = Journal::create(&path, &binding()).unwrap();
            j.append(b"good record one").unwrap();
            j.append(b"good record two").unwrap();
            j.commit().unwrap();
        }
        // Flip one payload bit of record 1.
        let mut bytes = std::fs::read(&path).unwrap();
        let rec1_payload = HEADER_BYTES + 4 + 15 + 32 + 4;
        bytes[rec1_payload + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match Journal::open(&path, &binding()) {
            Err(JournalError::Corrupt { seq }) => assert_eq!(seq, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_cannot_be_swapped() {
        // The checksum binds each record to its sequence index, so two
        // individually valid records swapped in place fail to verify.
        let path = tmp("swap");
        {
            let mut j = Journal::create(&path, &binding()).unwrap();
            j.append(b"AAAA").unwrap();
            j.append(b"BBBB").unwrap();
            j.commit().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let rec_len = 4 + 4 + 32;
        let (a, b) = (HEADER_BYTES, HEADER_BYTES + rec_len);
        let rec_a = bytes[a..a + rec_len].to_vec();
        let rec_b = bytes[b..b + rec_len].to_vec();
        bytes[a..a + rec_len].copy_from_slice(&rec_b);
        bytes[b..b + rec_len].copy_from_slice(&rec_a);
        std::fs::write(&path, &bytes).unwrap();
        match Journal::open(&path, &binding()) {
            Err(JournalError::Corrupt { seq }) => assert_eq!(seq, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_to_valid_prefix() {
        let path = tmp("torn");
        {
            let mut j = Journal::create(&path, &binding()).unwrap();
            j.append(b"complete one").unwrap();
            j.append(b"complete two").unwrap();
            j.commit().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Chop the file at every byte offset inside the second record:
        // recovery must always yield exactly the first record and leave
        // the file appendable.
        let rec2_start = HEADER_BYTES + 4 + 12 + 32;
        for cut in rec2_start + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (mut j, rec) = Journal::open(&path, &binding()).unwrap();
            assert_eq!(rec, vec![b"complete one".to_vec()], "cut at {cut}");
            j.append(b"complete two").unwrap();
            j.commit().unwrap();
            let (_, rec) = Journal::open(&path, &binding()).unwrap();
            assert_eq!(rec.len(), 2, "re-append after cut at {cut}");
            std::fs::write(&path, &full).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn armed_torn_write_reproduces_a_mid_write_crash() {
        let path = tmp("armed");
        {
            let mut j = Journal::create(&path, &binding()).unwrap();
            j.append(b"durable").unwrap();
            j.commit().unwrap();
            j.arm_torn_write(10);
            j.append(b"this record is torn").unwrap();
            // Process "dies" here: no commit, partial bytes on disk.
        }
        let (_, rec) = Journal::open(&path, &binding()).unwrap();
        assert_eq!(rec, vec![b"durable".to_vec()], "torn record truncated");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_header_is_typed() {
        let path = tmp("header");
        Journal::create(&path, &binding()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            Journal::open(&path, &binding()),
            Err(JournalError::BadHeader { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn absurd_length_prefix_is_typed() {
        let path = tmp("length");
        Journal::create(&path, &binding()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::open(&path, &binding()),
            Err(JournalError::RecordTooLarge { seq: 0, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
