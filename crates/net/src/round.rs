//! The encrypted query round across real OS processes.
//!
//! [`mycelium::run_query_encrypted`] executes the round as function
//! calls and [`mycelium::run_query_simulated`] as actors on a virtual
//! clock; this module executes the *same* round (same planning and
//! cryptographic building blocks from `mycelium::plan`) as separate
//! processes exchanging BGV ciphertexts, ZKP transcripts, and threshold
//! decryption shares over encrypted loopback TCP channels.
//!
//! ## Topology
//!
//! The **aggregator** is the only server (a hub). Devices, origins,
//! committee members, and the driver are polling clients:
//!
//! * **Device processes** shard the per-vertex contribution duties:
//!   each encrypts its vertices' `x^e` monomials and pushes them
//!   (`PushContrib`) until acked, then exits.
//! * **Origin processes** shard the per-vertex origin work: each polls
//!   `PullOrigin` until the aggregator hands over the verified slot
//!   ciphertexts (or the contribution deadline passes and missing slots
//!   come back empty — the origin substitutes the neutral `Enc(x^0)`,
//!   §4.4), combines them, and submits.
//! * **Committee processes** poll `CommitteeCheckIn` (carrying their
//!   joint-noise seed); once the aggregate exists and the participant
//!   set is agreed, members receive a `CommitteeShareTask` and push
//!   their threshold decryption share.
//! * **The driver** spawns everyone, watches child exits (respawning a
//!   crashed origin once — all protocol state lives at the aggregator,
//!   so a respawned origin recovers by re-pulling), polls `PullStatus`,
//!   and merges every process's wire metrics into one JSON artifact.
//!
//! ## Durability
//!
//! The aggregator's [`AggState`] is crash-durable: every accepted,
//! state-mutating request and every wall-clock phase transition is
//! logged to a write-ahead [`Journal`] (fsync'd before the reply goes
//! out), so a `kill -9` at any protocol step loses nothing. A respawned
//! aggregator replays the journal, rebuilds bit-identical state
//! (verified against embedded state-digest checkpoints), rebinds a
//! fresh port, and publishes it via the `agg.addr` file; clients
//! re-resolve the address whenever their retries exhaust. The chaos
//! supervisor in [`crate::chaos`] exercises exactly this path.
//!
//! ## Determinism
//!
//! Every process rebuilds the population, keys, key shares, query plan,
//! and all transport identities from the shared `(seed, n, query)`
//! arguments — no key material ever crosses the wire. Decryption is
//! exact, so the decoded pre-noise histogram depends only on the
//! population and query, never on encryption randomness: the
//! multi-process round is bit-identical to the in-process executor.
//! All requests are idempotent (first write wins at the aggregator), so
//! the client layer's at-least-once retry is safe — including across
//! aggregator respawns.

use std::collections::{BTreeMap, BTreeSet};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mycelium::decode::decode_aggregate;
use mycelium::exec::{release_noisy, ExecStats, NoisyGroup};
use mycelium::params::SystemParams;
use mycelium::plan::{
    aggregate_and_audit, ciphertext_digest, combine_origin, origin_work, OriginWork, QueryPlan,
};
use mycelium_bgv::{Ciphertext, KeySet, Plaintext};
use mycelium_budget::{BudgetError, Composition, EntryState, Ledger, LedgerEntry, LedgerOp};
use mycelium_cert::{
    build_segments, commit_origin, noise_commitment, render_json, sign_transcript,
    verify_transcript_sig, CertSpec, CommitteeSig, OriginCommit, ReleasedGroup, RoundCertificate,
    SlotStatus,
};
use mycelium_crypto::sha256::{sha256, Digest};
use mycelium_graph::generate::{
    epidemic_population, ContactGraphConfig, EpidemicConfig, Population,
};
use mycelium_graph::graph::VertexId;
use mycelium_math::rng::{Rng, SeedableRng, StdRng};
use mycelium_query::analyze::cost_report;
use mycelium_query::ast::Query;
use mycelium_query::builtin::paper_query;
use mycelium_query::eval::PlainResult;
use mycelium_sharing::threshold::{
    combine, decryption_share, derive_joint_noise, DecryptionShare, KeyShareSet,
};

use crate::channel::Identity;
use crate::chaos::Supervised;
use crate::client::{Client, ClientConfig};
use crate::codec::{decode_plain_result, encode_plain_result, encode_share, CodecCtx};
use crate::error::NetError;
use crate::journal::{Journal, JournalError};
use crate::lock_recover;
use crate::metrics::NetMetrics;
use crate::proto::NetMsg;
use crate::server::{Server, ServerConfig};
use crate::wire::{Reader, Writer};

/// Transport role ids (feed [`Identity::derive`]).
pub mod role {
    /// The aggregator (the only server).
    pub const AGGREGATOR: u32 = 0;
    /// Device shard `i` is `DEVICE_BASE + i`.
    pub const DEVICE_BASE: u32 = 100;
    /// Origin shard `j` is `ORIGIN_BASE + j`.
    pub const ORIGIN_BASE: u32 = 200;
    /// Committee member `m` (1-based) is `COMMITTEE_BASE + m`.
    pub const COMMITTEE_BASE: u32 = 300;
    /// The driver.
    pub const DRIVER: u32 = 400;
    /// Aggregation shard `s` is `SHARD_BASE + s` (server towards
    /// devices/origins, client towards the coordinator).
    pub const SHARD_BASE: u32 = 500;
}

/// Rng stream bases (`StdRng::seed_from_u64(seed).with_stream(...)`).
///
/// Re-exported from [`mycelium::streams`]: the canonical stream layout is
/// shared with the simulated executor so both derive bit-identical
/// contributions, origin combines, and committee randomness — which is
/// what makes their round certificates byte-identical.
pub(crate) use mycelium::streams as stream;

/// The privacy-budget configuration of a multi-round session. Every
/// round of a session shares the same dataset, capacity, and
/// composition rule; the session write-ahead log at
/// [`RoundSpec::budget_wal`] carries the ledger across rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCfg {
    /// The dataset the ledger guards (the account name).
    pub dataset: String,
    /// Total epsilon capacity of the session.
    pub capacity: f64,
    /// Advanced-composition slack `δ` (ignored under basic composition).
    pub delta: f64,
    /// Whether to price homogeneous charge runs with advanced
    /// composition (`dp::composition::advanced_composition`).
    pub advanced: bool,
}

impl BudgetCfg {
    /// The composition rule this configuration selects.
    pub fn composition(&self) -> Composition {
        if self.advanced {
            Composition::Advanced { delta: self.delta }
        } else {
            Composition::Basic
        }
    }

    /// A fresh (empty) ledger for this configuration.
    pub fn ledger(&self) -> Result<Ledger, BudgetError> {
        Ledger::new(&self.dataset, self.capacity, self.composition())
    }

    /// Binding digest of the *session* budget WAL. Spans rounds, so it
    /// binds only the account parameters — never a round's seed, query,
    /// or index.
    pub fn wal_binding_digest(&self) -> Digest {
        let mut w = Writer::new();
        w.put_str("myc-budget-wal");
        w.put_str(&self.dataset);
        w.put_u64(self.capacity.to_bits());
        w.put_u64(self.delta.to_bits());
        w.put_u8(self.advanced as u8);
        sha256(&w.finish())
    }
}

/// Everything that defines one multi-process round; every process
/// derives identical state from it.
#[derive(Debug, Clone)]
pub struct RoundSpec {
    /// Master seed for population, keys, identities, and noise.
    pub seed: u64,
    /// Population size (every vertex is a device and an origin).
    pub n: usize,
    /// Paper query name (e.g. `Q4`).
    pub query: String,
    /// Number of device processes the contribution duties shard over.
    pub device_shards: usize,
    /// Number of origin processes the origin work shards over.
    pub origin_shards: usize,
    /// Number of aggregation-plane intake shards. `1` runs the classic
    /// single-hub aggregator; `>= 2` runs that many `AggShard` servers
    /// plus a thin coordinator that combines their sealed roots.
    pub agg_shards: usize,
    /// Whether contributions carry well-formedness proofs.
    pub with_proofs: bool,
    /// This round's index within its budget session (0 for standalone
    /// rounds). The ledger keys every admit/charge/refund/refuse
    /// decision by it.
    pub round: u32,
    /// The session budget configuration; `None` runs unmetered.
    pub budget: Option<BudgetCfg>,
    /// Path of the session budget WAL (defaults to `budget.wal` in the
    /// round's `--out` directory, which only suits single-round
    /// sessions — multi-round sessions with per-round out dirs must
    /// point every round at one shared file).
    pub budget_wal: Option<PathBuf>,
    /// How long origins may wait for missing contributions.
    pub contrib_deadline: Duration,
    /// Client poll interval.
    pub poll_interval: Duration,
    /// Hard wall-clock cap on the whole round.
    pub round_timeout: Duration,
}

impl Default for RoundSpec {
    fn default() -> Self {
        RoundSpec {
            seed: 7,
            n: 24,
            query: "Q4".into(),
            device_shards: 8,
            origin_shards: 2,
            agg_shards: 1,
            with_proofs: false,
            round: 0,
            budget: None,
            budget_wal: None,
            contrib_deadline: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
            round_timeout: Duration::from_secs(600),
        }
    }
}

impl RoundSpec {
    /// Renders the spec as CLI arguments (the driver → child interface).
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--seed".into(),
            self.seed.to_string(),
            "--n".into(),
            self.n.to_string(),
            "--query".into(),
            self.query.clone(),
            "--devices".into(),
            self.device_shards.to_string(),
            "--origins".into(),
            self.origin_shards.to_string(),
            "--shards".into(),
            self.agg_shards.to_string(),
            "--proofs".into(),
            (self.with_proofs as u8).to_string(),
            "--contrib-ms".into(),
            self.contrib_deadline.as_millis().to_string(),
            "--poll-ms".into(),
            self.poll_interval.as_millis().to_string(),
            "--timeout-ms".into(),
            self.round_timeout.as_millis().to_string(),
        ];
        if self.round != 0 {
            args.push("--round".into());
            args.push(self.round.to_string());
        }
        if let Some(b) = &self.budget {
            args.push("--budget-dataset".into());
            args.push(b.dataset.clone());
            args.push("--budget-capacity".into());
            args.push(b.capacity.to_string());
            args.push("--budget-delta".into());
            args.push(b.delta.to_string());
            args.push("--budget-advanced".into());
            args.push((b.advanced as u8).to_string());
        }
        if let Some(p) = &self.budget_wal {
            args.push("--budget-wal".into());
            args.push(p.display().to_string());
        }
        args
    }

    /// Digest binding a write-ahead journal to this round's *state*
    /// configuration. Timing knobs (deadlines, poll interval) are
    /// deliberately excluded: a respawn may retune them without
    /// invalidating the journaled protocol state.
    pub fn binding_digest(&self) -> Digest {
        let mut w = Writer::new();
        w.put_u64(self.seed);
        w.put_u64(self.n as u64);
        w.put_str(&self.query);
        w.put_u64(self.device_shards as u64);
        w.put_u64(self.origin_shards as u64);
        w.put_u8(self.with_proofs as u8);
        // Budget-session extension. A plain round 0 without a budget
        // appends nothing, so pre-budget journals stay byte-compatible.
        if self.round != 0 || self.budget.is_some() {
            w.put_u32(self.round);
            match &self.budget {
                None => w.put_u8(0),
                Some(b) => {
                    w.put_u8(1);
                    w.put_str(&b.dataset);
                    w.put_u64(b.capacity.to_bits());
                    w.put_u64(b.delta.to_bits());
                    w.put_u8(b.advanced as u8);
                }
            }
        }
        sha256(&w.finish())
    }

    /// Journal binding for aggregation shard `shard`: the round binding
    /// with the shard id *and* the shard count mixed in, so a journal
    /// partition can never be replayed into the wrong shard or into a
    /// run with a different shard layout.
    pub fn shard_binding_digest(&self, shard: u32) -> Digest {
        let mut w = Writer::new();
        w.put_bytes(&self.binding_digest());
        w.put_str("agg-shard");
        w.put_u32(shard);
        w.put_u64(self.agg_shards as u64);
        sha256(&w.finish())
    }

    /// Journal binding for the aggregation plane's hub process. At one
    /// shard this is the classic [`RoundSpec::binding_digest`] (the
    /// pre-refactor single-hub journal stays byte-compatible); above it
    /// the coordinator binds the shard count so a single-hub journal
    /// can never masquerade as a sharded-run coordinator journal.
    pub fn coordinator_binding_digest(&self) -> Digest {
        if self.agg_shards <= 1 {
            return self.binding_digest();
        }
        let mut w = Writer::new();
        w.put_bytes(&self.binding_digest());
        w.put_str("coordinator");
        w.put_u64(self.agg_shards as u64);
        sha256(&w.finish())
    }
}

pub use mycelium::summation::shard_of;

/// One outgoing contribution duty of a device vertex.
#[derive(Debug, Clone)]
pub struct Duty {
    /// The origin the contribution is addressed to.
    pub origin: VertexId,
    /// Slot in that origin's request list.
    pub slot: u32,
    /// The monomial exponent to encrypt.
    pub exp: usize,
}

/// Deterministically derived shared state.
pub struct RoundSetup {
    /// The spec everything is derived from.
    pub spec: RoundSpec,
    /// Figure-4 system parameters (committee size, BGV params, ε).
    pub params: SystemParams,
    /// The population under query.
    pub pop: Population,
    /// The parsed query.
    pub query: Query,
    /// BGV keys (every process derives the same set).
    pub keys: KeySet,
    /// Shamir shares of the secret key.
    pub key_shares: KeyShareSet,
    /// The query plan.
    pub plan: QueryPlan,
    /// Per-vertex origin work.
    pub works: Vec<OriginWork>,
    /// Per-vertex contribution duties (inverse of `works`).
    pub duties: Vec<Vec<Duty>>,
    /// Codec context for the plan's parameters.
    pub cc: CodecCtx,
    /// Committee size `c`.
    pub committee_size: usize,
    /// Shamir threshold `t` (`t + 1` participants decrypt).
    pub threshold: usize,
}

impl RoundSetup {
    /// The aggregator's transport identity.
    pub fn aggregator_identity(&self) -> Identity {
        Identity::derive(self.spec.seed, role::AGGREGATOR)
    }

    /// The full client roster (device, origin, committee, driver keys).
    pub fn roster(&self) -> std::collections::HashSet<[u8; 32]> {
        let mut r = std::collections::HashSet::new();
        for i in 0..self.spec.device_shards {
            r.insert(Identity::derive(self.spec.seed, role::DEVICE_BASE + i as u32).public);
        }
        for j in 0..self.spec.origin_shards {
            r.insert(Identity::derive(self.spec.seed, role::ORIGIN_BASE + j as u32).public);
        }
        for m in 1..=self.committee_size as u32 {
            r.insert(Identity::derive(self.spec.seed, role::COMMITTEE_BASE + m).public);
        }
        if self.spec.agg_shards > 1 {
            // Shards are clients of the coordinator.
            for s in 0..self.spec.agg_shards {
                r.insert(Identity::derive(self.spec.seed, role::SHARD_BASE + s as u32).public);
            }
        }
        r.insert(Identity::derive(self.spec.seed, role::DRIVER).public);
        r
    }

    /// Aggregation shard `s`'s transport identity.
    pub fn shard_identity(&self, shard: usize) -> Identity {
        Identity::derive(self.spec.seed, role::SHARD_BASE + shard as u32)
    }
}

/// Builds the population exactly as the repository's round tests do, so
/// oracle comparisons line up.
pub fn build_population(spec: &RoundSpec) -> Population {
    let cfg = ContactGraphConfig {
        n: spec.n,
        degree_bound: 4,
        mean_household: 3,
        community_edges: 2,
        subway_fraction: 0.2,
        days: 13,
    };
    let epi = EpidemicConfig {
        seed_fraction: 0.08,
        household_rate: 0.10,
        community_rate: 0.02,
        days: 13,
    };
    epidemic_population(&cfg, &epi, &mut StdRng::seed_from_u64(spec.seed))
}

/// Derives the full shared setup from a spec. Failures here are
/// configuration errors (unknown query, query too large for the ring),
/// not wire input, so they surface as [`NetError::Decode`].
pub fn build_setup(spec: &RoundSpec) -> Result<RoundSetup, NetError> {
    let params = SystemParams::simulation();
    let pop = build_population(spec);
    let query = paper_query(&spec.query)
        .ok_or_else(|| NetError::Decode(format!("unknown paper query {}", spec.query)))?;
    let mut keys_rng = StdRng::seed_from_u64(spec.seed).with_stream(stream::KEYS);
    let keys = KeySet::generate(&params.bgv, &mut keys_rng);
    let c = params.committee_size;
    let t = c / 2;
    let mut deal_rng = StdRng::seed_from_u64(spec.seed).with_stream(u64::MAX);
    let key_shares = KeyShareSet::deal(&keys.secret, t, c, &mut deal_rng);
    let plan = QueryPlan::new(&query, &pop, &params, spec.with_proofs)
        .map_err(|e| NetError::Decode(format!("query planning failed: {e}")))?;
    let n = pop.graph.len();
    let works: Vec<OriginWork> = (0..n)
        .map(|v| origin_work(&plan, &query, &params, &pop, v as VertexId))
        .collect();
    let mut duties: Vec<Vec<Duty>> = vec![Vec::new(); n];
    for work in &works {
        for (slot, &(w, exp)) in work.requests.iter().enumerate() {
            duties[w as usize].push(Duty {
                origin: work.origin,
                slot: slot as u32,
                exp,
            });
        }
    }
    // The codec must decode into the *same* RNS context the keys carry:
    // `RnsPoly` arithmetic requires pointer-identical contexts.
    let cc = CodecCtx::with_context(Arc::clone(keys.public.context()), &params.bgv);
    Ok(RoundSetup {
        spec: spec.clone(),
        params,
        pop,
        query,
        keys,
        key_shares,
        plan,
        works,
        duties,
        cc,
        committee_size: c,
        threshold: t,
    })
}

/// What the aggregator releases at the end of the round.
pub struct RoundOutcome {
    /// Decoded exact (pre-noise) result.
    pub exact: PlainResult,
    /// The released, noised result.
    pub released: Vec<NoisyGroup>,
    /// Devices whose contributions failed proof verification.
    pub rejected: Vec<VertexId>,
}

/// Serializes an outcome (the aggregator → driver/test file format).
pub fn encode_outcome(out: &Result<RoundOutcome, String>) -> Vec<u8> {
    let mut w = Writer::new();
    match out {
        Err(e) => {
            w.put_u8(0);
            w.put_str(e);
        }
        Ok(out) => {
            w.put_u8(1);
            encode_plain_result(&mut w, &out.exact);
            w.put_u32(out.released.len() as u32);
            for g in &out.released {
                w.put_str(&g.label);
                w.put_u32(g.histogram.len() as u32);
                for &v in &g.histogram {
                    w.put_i64(v);
                }
            }
            w.put_u32(out.rejected.len() as u32);
            for &v in &out.rejected {
                w.put_u32(v);
            }
        }
    }
    w.finish()
}

/// Deserializes an outcome file.
pub fn decode_outcome(bytes: &[u8]) -> Result<Result<RoundOutcome, String>, NetError> {
    let mut r = Reader::new(bytes);
    match r.get_u8()? {
        0 => Ok(Err(r.get_str()?)),
        1 => {
            let exact = decode_plain_result(&mut r)?;
            let ng = r.get_u32()? as usize;
            let mut released = Vec::with_capacity(ng);
            for _ in 0..ng {
                let label = r.get_str()?;
                let nh = r.get_u32()? as usize;
                let mut histogram = Vec::with_capacity(nh);
                for _ in 0..nh {
                    histogram.push(r.get_i64()?);
                }
                released.push(NoisyGroup { label, histogram });
            }
            let nr = r.get_u32()? as usize;
            let mut rejected = Vec::with_capacity(nr);
            for _ in 0..nr {
                rejected.push(r.get_u32()?);
            }
            Ok(Ok(RoundOutcome {
                exact,
                released,
                rejected,
            }))
        }
        v => Err(NetError::Decode(format!("bad outcome tag {v}"))),
    }
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

/// Journal record tags (first payload byte of every record).
mod rec {
    /// An accepted state-mutating request (body = `NetMsg` encoding).
    pub const REQ: u8 = 1;
    /// Wall-clock transition: form the aggregate (missing → `Enc(0)`).
    pub const AGGREGATE: u8 = 2;
    /// Wall-clock transition: select the decryption participants.
    pub const SELECT: u8 = 3;
    /// Wall-clock transition: reselect after share stragglers.
    pub const RESELECT: u8 = 4;
    /// Terminal typed failure (body = UTF-8 message).
    pub const FAIL: u8 = 5;
    /// State-digest checkpoint (body = 32-byte [`AggState::digest`]).
    pub const DIGEST: u8 = 6;
    /// Wall-clock transition: freeze the per-origin certificate
    /// commitments (body = 32-byte commitment-plane digest, so a replay
    /// that re-derives a different tree is a typed divergence). Always
    /// journaled *before* [`AGGREGATE`]: commitment-then-seal is the
    /// ordering that makes late contributions unable to move the tree.
    pub const COMMIT: u8 = 7;
    /// Wall-clock transition: seal the round certificate with whatever
    /// committee signatures arrived.
    pub const SEAL: u8 = 8;
    /// A privacy-budget ledger decision (body = canonical
    /// [`LedgerOp`](mycelium_budget::LedgerOp) encoding). Replay
    /// re-applies the op, so a recovered aggregator re-derives the
    /// bit-identical ledger — including refusals.
    pub const BUDGET: u8 = 9;
}

/// Append a digest checkpoint after this many undigested records.
const DIGEST_EVERY: u32 = 8;
/// How long a finished aggregator waits for committee members to observe
/// `Finished` before giving up on stragglers and exiting anyway.
const FINISH_GRACE: Duration = Duration::from_secs(10);

/// Deterministic fault injection knobs for [`run_aggregator`] — the
/// chaos drill's way of dying at an exact protocol step.
#[derive(Debug, Clone, Default)]
pub struct AggFaults {
    /// Abort (a `kill -9` stand-in: no cleanup, no flush) right after
    /// the `N`th successfully handled — journaled, applied, fsync'd,
    /// but **not yet answered** — message of the given kind.
    pub die_after: Option<(String, u32)>,
    /// Abort mid-`write(2)` of the `N`th journaled record, leaving a
    /// torn tail for the next incarnation to truncate.
    pub die_mid_journal: Option<u32>,
}

/// Which role in the aggregation plane an [`AggState`] is playing.
///
/// The refactor's pivot: the old single-hub aggregator state is the
/// *union* of per-origin intake state and committee protocol state, so
/// instead of two divergent copies, one state machine runs in three
/// modes that each enable a subset of the message set. `Hub` (the
/// one-shard layout) enables everything and is bit-identical — digest,
/// journal, and stderr included — to the pre-refactor aggregator.
pub enum AggMode {
    /// Classic single hub: intake + committee protocol in one process.
    Hub,
    /// One of `agg_shards` intake shards: verifies ZKPs and builds a
    /// partial summation tree over the origins it owns
    /// (`shard_of(v) == shard`); no committee state.
    Shard {
        /// This shard's index.
        shard: u32,
        /// `owned[v]`: whether origin `v` hashes to this shard.
        owned: Vec<bool>,
        /// Number of owned origins (the intake-complete target).
        owned_count: usize,
    },
    /// The thin coordinator: collects sealed shard roots (its
    /// "submissions" are per-shard partial aggregates, not per-origin
    /// rows), homomorphically combines them, and drives committee
    /// selection / threshold decryption exactly like the hub.
    Coordinator {
        /// Total shard count (the intake-complete target).
        shards: u32,
    },
}

/// The aggregator's entire protocol state. Crash-durable: every
/// mutation is journaled before the reply, and [`AggState::recover`]
/// rebuilds an identical state from the journal.
pub struct AggState {
    setup: Arc<RoundSetup>,
    mode: AggMode,
    who: String,
    started: Instant,
    // Contribution phase: verified per-(origin, slot) ciphertexts.
    contribs: Vec<Vec<Option<Ciphertext>>>,
    seen: BTreeSet<(u32, u32)>,
    rejected: Vec<VertexId>,
    // Submission phase.
    submissions: Vec<Option<Ciphertext>>,
    got_submissions: usize,
    aggregate: Option<Ciphertext>,
    // Committee phase.
    pongs: Vec<Option<[u8; 32]>>,
    share_round: u32,
    participants: Vec<u64>,
    reselected: bool,
    shares: Vec<Option<DecryptionShare>>,
    share_deadline: Option<Instant>,
    // Certificate plane: per-slot intake outcomes, frozen per-origin
    // commitments, and the signed round certificate.
    statuses: BTreeMap<(u32, u32), SlotStatus>,
    commits: Vec<Option<OriginCommit>>,
    commits_frozen: bool,
    cert: Option<RoundCertificate>,
    cert_sigs: Vec<Option<[u8; 64]>>,
    cert_sealed: bool,
    cert_bytes: Option<Vec<u8>>,
    cert_since: Option<Instant>,
    // Privacy budget (None when the round runs unmetered or in a
    // Shard-mode process, which never meters).
    ledger: Option<Ledger>,
    budget_wal: Option<Journal>,
    session_ops: BTreeSet<Vec<u8>>,
    round_budget_ops: Vec<Vec<u8>>,
    charged_epsilon: f64,
    // Result.
    outcome: Option<Result<RoundOutcome, String>>,
    finished_seen: BTreeSet<u64>,
    finished_shards: BTreeSet<u32>,
    driver_seen: bool,
    rng: StdRng,
    // Durability.
    journal: Option<Journal>,
    replaying: bool,
    dirty: bool,
    undigested: u32,
    digest_due: bool,
    mutating_appends: u32,
    die_mid_journal: Option<u32>,
}

impl AggState {
    /// Fresh (empty) state for this round's aggregation-plane hub
    /// process: the classic single hub at one shard, the coordinator
    /// above that.
    pub fn new(setup: Arc<RoundSetup>) -> Self {
        let mode = if setup.spec.agg_shards > 1 {
            AggMode::Coordinator {
                shards: setup.spec.agg_shards as u32,
            }
        } else {
            AggMode::Hub
        };
        Self::with_mode(setup, mode)
    }

    /// Fresh (empty) state for aggregation shard `shard`.
    pub fn new_shard(setup: Arc<RoundSetup>, shard: u32) -> Self {
        let n = setup.pop.graph.len();
        let shards = setup.spec.agg_shards;
        let owned: Vec<bool> = (0..n)
            .map(|v| shard_of(v as VertexId, shards) == shard as usize)
            .collect();
        let owned_count = owned.iter().filter(|&&b| b).count();
        Self::with_mode(
            setup,
            AggMode::Shard {
                shard,
                owned,
                owned_count,
            },
        )
    }

    fn with_mode(setup: Arc<RoundSetup>, mode: AggMode) -> Self {
        let n = setup.pop.graph.len();
        let c = setup.committee_size;
        // The coordinator's "submissions" are one sealed root per
        // shard; everyone else collects one row per origin.
        let (contribs, submissions): (Vec<Vec<Option<Ciphertext>>>, Vec<Option<Ciphertext>>) =
            match &mode {
                AggMode::Coordinator { shards } => (Vec::new(), vec![None; *shards as usize]),
                _ => (
                    setup
                        .works
                        .iter()
                        .map(|w| vec![None; w.requests.len()])
                        .collect(),
                    vec![None; n],
                ),
            };
        let (who, rng_stream) = match &mode {
            AggMode::Shard { shard, .. } => (
                format!("agg-shard-{shard}"),
                stream::AGGREGATOR + 1 + *shard as u64,
            ),
            _ => ("aggregator".to_string(), stream::AGGREGATOR),
        };
        let ledger = match &mode {
            AggMode::Shard { .. } => None,
            _ => setup.spec.budget.as_ref().and_then(|cfg| cfg.ledger().ok()),
        };
        AggState {
            mode,
            who,
            started: Instant::now(),
            contribs,
            seen: BTreeSet::new(),
            rejected: Vec::new(),
            submissions,
            got_submissions: 0,
            aggregate: None,
            pongs: vec![None; c],
            share_round: 0,
            participants: Vec::new(),
            reselected: false,
            shares: vec![None; c + 1],
            share_deadline: None,
            statuses: BTreeMap::new(),
            commits: vec![None; n],
            commits_frozen: false,
            cert: None,
            cert_sigs: vec![None; c + 1],
            cert_sealed: false,
            cert_bytes: None,
            cert_since: None,
            ledger,
            budget_wal: None,
            session_ops: BTreeSet::new(),
            round_budget_ops: Vec::new(),
            charged_epsilon: setup.params.epsilon,
            outcome: None,
            finished_seen: BTreeSet::new(),
            finished_shards: BTreeSet::new(),
            driver_seen: false,
            rng: StdRng::seed_from_u64(setup.spec.seed).with_stream(rng_stream),
            journal: None,
            replaying: false,
            dirty: false,
            undigested: 0,
            digest_due: false,
            mutating_appends: 0,
            die_mid_journal: None,
            setup,
        }
    }

    /// Opens (or creates) the journal at `path` and replays every
    /// recorded event, rebuilding the exact pre-crash state. Embedded
    /// digest checkpoints are verified along the way — a divergent
    /// replay is a typed [`JournalError::StateDiverged`], never a
    /// silently wrong round.
    pub fn recover(setup: Arc<RoundSetup>, path: &Path) -> Result<Self, NetError> {
        let binding = setup.spec.coordinator_binding_digest();
        Self::recover_as(AggState::new(setup), &binding, path)
    }

    /// [`AggState::recover`] for aggregation shard `shard`: same replay
    /// machinery against the shard's own WAL partition, whose binding
    /// digest carries the shard id and shard count.
    pub fn recover_shard(
        setup: Arc<RoundSetup>,
        shard: u32,
        path: &Path,
    ) -> Result<Self, NetError> {
        let binding = setup.spec.shard_binding_digest(shard);
        Self::recover_as(AggState::new_shard(setup, shard), &binding, path)
    }

    fn recover_as(mut st: AggState, binding: &Digest, path: &Path) -> Result<Self, NetError> {
        let (journal, records) = Journal::open_or_create(path, binding)?;
        st.replaying = true;
        for (seq, record) in records.iter().enumerate() {
            st.apply_record(record, seq as u64)?;
        }
        st.replaying = false;
        st.journal = Some(journal);
        // Wall-clock deadlines do not survive a crash: restart them so
        // straggler detection (and the one reselect) still fires.
        st.started = Instant::now();
        if !st.participants.is_empty() && st.outcome.is_none() {
            st.share_deadline = Some(Instant::now() + st.share_wait());
        }
        if !records.is_empty() {
            eprintln!("{}: replayed {} journal records", st.who, records.len());
        }
        Ok(st)
    }

    /// This process's log label (`aggregator` or `agg-shard-N`).
    pub fn who(&self) -> &str {
        &self.who
    }

    /// Installs the chaos fault knobs (see [`AggFaults`]).
    pub fn set_faults(&mut self, faults: &AggFaults) {
        self.die_mid_journal = faults.die_mid_journal;
    }

    /// Digest of the protocol state: everything replay must reproduce.
    ///
    /// Wall-clock fields (`started`, `share_deadline`) and liveness
    /// bookkeeping (`finished_seen`, `driver_seen`) are excluded — they
    /// are legitimately different after a restart.
    pub fn digest(&self) -> Digest {
        let mut w = Writer::new();
        let put_opt_ct = |w: &mut Writer, ct: &Option<Ciphertext>| match ct {
            None => w.put_u8(0),
            Some(ct) => {
                w.put_u8(1);
                w.put_bytes(&ciphertext_digest(ct));
            }
        };
        for slots in &self.contribs {
            for s in slots {
                put_opt_ct(&mut w, s);
            }
        }
        w.put_u32(self.seen.len() as u32);
        for &(o, s) in &self.seen {
            w.put_u32(o);
            w.put_u32(s);
        }
        w.put_u32(self.rejected.len() as u32);
        for &v in &self.rejected {
            w.put_u32(v);
        }
        for s in &self.submissions {
            put_opt_ct(&mut w, s);
        }
        w.put_u64(self.got_submissions as u64);
        put_opt_ct(&mut w, &self.aggregate);
        for p in &self.pongs {
            match p {
                None => w.put_u8(0),
                Some(seed) => {
                    w.put_u8(1);
                    w.put_bytes(seed);
                }
            }
        }
        w.put_u32(self.share_round);
        w.put_u32(self.participants.len() as u32);
        for &m in &self.participants {
            w.put_u64(m);
        }
        w.put_u8(self.reselected as u8);
        for s in &self.shares {
            match s {
                None => w.put_u8(0),
                Some(share) => {
                    w.put_u8(1);
                    encode_share(&mut w, share);
                }
            }
        }
        match &self.outcome {
            None => w.put_u8(0),
            Some(out) => {
                w.put_u8(1);
                let bytes = encode_outcome(out);
                w.put_bytes(&bytes);
            }
        }
        w.put_u32(self.statuses.len() as u32);
        for (&(o, s), status) in &self.statuses {
            w.put_u32(o);
            w.put_u32(s);
            match status {
                SlotStatus::Missing => w.put_u8(0),
                SlotStatus::Rejected => w.put_u8(1),
                SlotStatus::Accepted(d) => {
                    w.put_u8(2);
                    w.put_bytes(d);
                }
            }
        }
        w.put_u8(self.commits_frozen as u8);
        w.put_bytes(&self.commit_digest());
        match &self.cert {
            None => w.put_u8(0),
            Some(cert) => {
                w.put_u8(1);
                w.put_bytes(&cert.transcript);
            }
        }
        for s in &self.cert_sigs {
            match s {
                None => w.put_u8(0),
                Some(sig) => {
                    w.put_u8(1);
                    w.put_bytes(sig);
                }
            }
        }
        w.put_u8(self.cert_sealed as u8);
        match &self.cert_bytes {
            None => w.put_u8(0),
            Some(bytes) => {
                w.put_u8(1);
                w.put_bytes(&sha256(bytes));
            }
        }
        // Ledger state rides the same digest chain: a replay that
        // re-derives a different budget decision is a typed divergence,
        // exactly like any other protocol-state mismatch. Absent ledger
        // appends nothing, keeping pre-budget journals byte-compatible.
        if let Some(ledger) = &self.ledger {
            w.put_u8(1);
            w.put_bytes(&ledger.digest());
            w.put_u64(self.charged_epsilon.to_bits());
        }
        sha256(&w.finish())
    }

    /// Digest of the frozen commitment plane (the [`rec::COMMIT`] record
    /// body): replay re-derives the commitments from the journaled
    /// intake and must land on the same tree.
    fn commit_digest(&self) -> Digest {
        let mut w = Writer::new();
        w.put_u32(self.commits.len() as u32);
        for cmt in &self.commits {
            match cmt {
                None => w.put_u8(0),
                Some(cm) => {
                    w.put_u8(1);
                    w.put_u32(cm.origin);
                    w.put_bytes(&cm.leaf);
                    w.put_u32(cm.accepted);
                    w.put_u32(cm.rejected);
                }
            }
        }
        sha256(&w.finish())
    }

    fn share_wait(&self) -> Duration {
        self.setup
            .spec
            .contrib_deadline
            .max(Duration::from_secs(10))
    }

    fn contrib_deadline_passed(&self) -> bool {
        self.started.elapsed() >= self.setup.spec.contrib_deadline
    }

    fn fail(&mut self, msg: String) {
        if self.outcome.is_none() {
            self.outcome = Some(Err(msg));
        }
    }

    // --- journaling ------------------------------------------------------

    /// Appends one record (not yet durable; see [`AggState::flush`]).
    fn append_record(&mut self, record: &[u8]) -> Result<(), NetError> {
        if self.replaying {
            return Ok(());
        }
        let Some(j) = self.journal.as_mut() else {
            return Ok(());
        };
        self.mutating_appends += 1;
        if self.die_mid_journal == Some(self.mutating_appends) {
            // Chaos: die mid-write(2). Persist a record prefix, then
            // abort without flushing anything else — the next
            // incarnation must truncate the torn tail.
            j.arm_torn_write(record.len() / 2 + 2);
            let _ = j.append(record);
            eprintln!(
                "{}: chaos kill mid-journal-write (record {})",
                self.who, self.mutating_appends
            );
            std::process::abort();
        }
        j.append(record)?;
        self.dirty = true;
        self.undigested += 1;
        Ok(())
    }

    fn append_req(&mut self, raw: &[u8]) -> Result<(), NetError> {
        let mut record = Vec::with_capacity(1 + raw.len());
        record.push(rec::REQ);
        record.extend_from_slice(raw);
        self.append_record(&record)
    }

    fn append_mark(&mut self, tag: u8) -> Result<(), NetError> {
        self.digest_due = true;
        self.append_record(&[tag])
    }

    fn append_fail(&mut self, msg: &str) -> Result<(), NetError> {
        let mut record = Vec::with_capacity(1 + msg.len());
        record.push(rec::FAIL);
        record.extend_from_slice(msg.as_bytes());
        self.digest_due = true;
        self.append_record(&record)
    }

    /// Makes every appended record durable, inserting a state-digest
    /// checkpoint at phase transitions and every [`DIGEST_EVERY`]
    /// records. Called once per handled request — one fsync covers the
    /// request plus any transitions it unlocked.
    fn flush(&mut self) -> Result<(), NetError> {
        if self.replaying || !self.dirty {
            return Ok(());
        }
        if self.digest_due || self.undigested >= DIGEST_EVERY {
            let mut record = Vec::with_capacity(33);
            record.push(rec::DIGEST);
            record.extend_from_slice(&self.digest());
            self.append_record(&record)?;
            self.undigested = 0;
            self.digest_due = false;
        }
        if let Some(j) = self.journal.as_mut() {
            j.commit()?;
        }
        self.dirty = false;
        Ok(())
    }

    /// Replays one journal record during [`AggState::recover`].
    fn apply_record(&mut self, record: &[u8], seq: u64) -> Result<(), NetError> {
        let Some((&tag, body)) = record.split_first() else {
            return Err(JournalError::Replay {
                seq,
                why: "empty record".into(),
            }
            .into());
        };
        match tag {
            rec::REQ => {
                let msg = NetMsg::decode(body, &self.setup.cc)?;
                self.apply(msg).map_err(|e| JournalError::Replay {
                    seq,
                    why: e.to_string(),
                })?;
            }
            rec::AGGREGATE => self.do_aggregate(),
            rec::SELECT => self.do_select(),
            rec::RESELECT => self.do_reselect(),
            rec::COMMIT => {
                let want: Digest = body.try_into().map_err(|_| JournalError::Replay {
                    seq,
                    why: format!("commitment freeze of {} bytes", body.len()),
                })?;
                self.do_commit();
                let got = self.commit_digest();
                if got != want {
                    return Err(JournalError::StateDiverged {
                        at_records: seq,
                        want,
                        got,
                    }
                    .into());
                }
            }
            rec::SEAL => self.do_seal(),
            rec::BUDGET => {
                let op = LedgerOp::decode(body).map_err(|e| JournalError::Replay {
                    seq,
                    why: format!("budget record: {e}"),
                })?;
                self.apply_budget_op(&op)
                    .map_err(|e| JournalError::Replay {
                        seq,
                        why: format!("budget record: {e}"),
                    })?;
                self.round_budget_ops.push(body.to_vec());
            }
            rec::FAIL => {
                let msg = String::from_utf8_lossy(body).into_owned();
                self.fail(msg);
            }
            rec::DIGEST => {
                let want: Digest = body.try_into().map_err(|_| JournalError::Replay {
                    seq,
                    why: format!("digest checkpoint of {} bytes", body.len()),
                })?;
                let got = self.digest();
                if got != want {
                    return Err(JournalError::StateDiverged {
                        at_records: seq,
                        want,
                        got,
                    }
                    .into());
                }
            }
            other => {
                return Err(JournalError::Replay {
                    seq,
                    why: format!("unknown record tag {other}"),
                }
                .into())
            }
        }
        Ok(())
    }

    // --- privacy budget --------------------------------------------------

    /// Applies one ledger decision to in-memory state, mirroring its
    /// round-local side effects: an `Admit` of *this* round pins the
    /// epsilon the certificate will carry; a `Refuse` of this round is
    /// the round's terminal failure. Decisions about other rounds of
    /// the session only move the ledger.
    fn apply_budget_op(&mut self, op: &LedgerOp) -> Result<(), BudgetError> {
        let Some(ledger) = self.ledger.as_mut() else {
            return Err(BudgetError::InvalidParameter(
                "budget op without a ledger".into(),
            ));
        };
        ledger.apply(op)?;
        match op {
            LedgerOp::Admit(entry) if entry.round == self.setup.spec.round => {
                self.charged_epsilon = entry.cost.epsilon;
            }
            LedgerOp::Refuse { entry, remaining } if entry.round == self.setup.spec.round => {
                self.fail(format!(
                    "budget exhausted: requested epsilon {}, remaining {}",
                    entry.cost.epsilon, remaining
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// Journals one ledger decision into the round journal (live only)
    /// and remembers its bytes for session-WAL reconciliation. The
    /// record forces a digest checkpoint, so replay divergence in the
    /// ledger is caught at the very next flush.
    fn record_budget_op(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        let mut record = Vec::with_capacity(1 + bytes.len());
        record.push(rec::BUDGET);
        record.extend_from_slice(bytes);
        self.digest_due = true;
        self.append_record(&record)?;
        self.round_budget_ops.push(bytes.to_vec());
        Ok(())
    }

    /// Opens the session budget WAL, reconciles it with this round's
    /// replayed journal (the union of their ledger decisions — a crash
    /// between the two fsyncs can leave either side ahead), and decides
    /// this round's admission against the reconciled ledger.
    ///
    /// Idempotent across recoveries: [`Ledger::decide`] re-proposes a
    /// byte-identical op for an already-decided round, and both logs
    /// deduplicate by exact record bytes.
    pub fn install_budget(&mut self, wal_path: &Path) -> Result<(), NetError> {
        let Some(cfg) = self.setup.spec.budget.clone() else {
            return Ok(());
        };
        if matches!(self.mode, AggMode::Shard { .. }) {
            return Ok(());
        }
        let budget_err = |e: BudgetError| NetError::Decode(format!("budget: {e}"));
        // Re-validate the configuration with a typed error (state
        // construction swallowed it to stay infallible).
        if self.ledger.is_none() {
            cfg.ledger().map_err(budget_err)?;
        }
        let (mut wal, records) = Journal::open_or_create(wal_path, &cfg.wal_binding_digest())?;
        let mut session_ops: BTreeSet<Vec<u8>> = BTreeSet::new();
        {
            // Replay the session WAL into a scratch ledger purely to
            // reject a corrupt or foreign log with a typed error.
            let mut session = cfg.ledger().map_err(budget_err)?;
            for bytes in &records {
                let op = LedgerOp::decode(bytes).map_err(budget_err)?;
                session.apply(&op).map_err(budget_err)?;
                session_ops.insert(bytes.clone());
            }
        }
        // Ops this round journaled that the WAL lost (crash between the
        // round-journal fsync and the WAL fsync): push them back.
        for bytes in self.round_budget_ops.clone() {
            if session_ops.contains(&bytes) {
                continue;
            }
            wal.append(&bytes)?;
            session_ops.insert(bytes);
        }
        // Ops earlier session rounds recorded that this round's journal
        // has not seen: seed them in, journaled, so replay of this
        // round's journal stays self-contained.
        let round_ops: BTreeSet<Vec<u8>> = self.round_budget_ops.iter().cloned().collect();
        for bytes in &records {
            if round_ops.contains(bytes) {
                continue;
            }
            let op = LedgerOp::decode(bytes).map_err(budget_err)?;
            self.apply_budget_op(&op).map_err(budget_err)?;
            self.record_budget_op(bytes)?;
        }
        // Decide this round's admission. For a round the logs already
        // decided this re-proposes the identical op and deduplicates.
        let report = cost_report(
            &self.setup.query,
            &self.setup.params.schema,
            self.setup.params.epsilon,
            0.0,
        )
        .map_err(|e| NetError::Decode(format!("budget: query cost: {e}")))?;
        let entry = LedgerEntry::from_report(self.setup.spec.round, &report);
        let op = self
            .ledger
            .as_ref()
            .ok_or_else(|| NetError::Decode("budget: ledger missing".into()))?
            .decide(&entry)
            .map_err(budget_err)?;
        let bytes = op.encode();
        if !self.round_budget_ops.iter().any(|b| b == &bytes) {
            self.apply_budget_op(&op).map_err(budget_err)?;
            self.record_budget_op(&bytes)?;
        }
        if session_ops.insert(bytes.clone()) {
            wal.append(&bytes)?;
        }
        wal.commit()?;
        self.flush()?;
        self.budget_wal = Some(wal);
        self.session_ops = session_ops;
        Ok(())
    }

    /// Settles this round's reserved charge once the outcome is known:
    /// a successful round charges its admitted epsilon, a failed one
    /// refunds the reservation. Journals the op (replay re-settles from
    /// the record, not from wall-clock state) and mirrors it into the
    /// session WAL for later rounds.
    fn settle_budget(&mut self) -> Result<(), NetError> {
        if self.replaying || self.outcome.is_none() {
            return Ok(());
        }
        let round = self.setup.spec.round;
        let reserved = self
            .ledger
            .as_ref()
            .and_then(|l| l.entry(round))
            .is_some_and(|(_, st)| st == EntryState::Reserved);
        if !reserved {
            return Ok(());
        }
        let op = match &self.outcome {
            Some(Ok(_)) => LedgerOp::Charge { round },
            _ => LedgerOp::Refund { round },
        };
        let bytes = op.encode();
        self.apply_budget_op(&op)
            .map_err(|e| NetError::Decode(format!("budget: {e}")))?;
        self.record_budget_op(&bytes)?;
        if self.session_ops.insert(bytes.clone()) {
            if let Some(wal) = self.budget_wal.as_mut() {
                wal.append(&bytes)?;
                wal.commit()?;
            }
        }
        Ok(())
    }

    // --- phase transitions ----------------------------------------------

    /// Freezes the per-origin certificate commitments from the slot
    /// statuses recorded at intake. Runs right before the aggregate is
    /// sealed (and is journaled before it), so late contributions can no
    /// longer move the tree. The coordinator's commitments arrive inside
    /// `ShardRoot` requests instead; its freeze just pins whatever the
    /// shards delivered by intake-done.
    fn do_commit(&mut self) {
        if self.commits_frozen {
            return;
        }
        self.commits_frozen = true;
        let setup = Arc::clone(&self.setup);
        let mine: Vec<usize> = match &self.mode {
            AggMode::Hub => (0..setup.pop.graph.len()).collect(),
            AggMode::Shard { owned, .. } => owned
                .iter()
                .enumerate()
                .filter(|&(_, &own)| own)
                .map(|(v, _)| v)
                .collect(),
            AggMode::Coordinator { .. } => Vec::new(),
        };
        for v in mine {
            let slots: Vec<(u32, SlotStatus)> = setup.works[v]
                .requests
                .iter()
                .enumerate()
                .map(|(s, &(d, _))| {
                    let status = self
                        .statuses
                        .get(&(v as u32, s as u32))
                        .copied()
                        .unwrap_or(SlotStatus::Missing);
                    (d, status)
                })
                .collect();
            self.commits[v] = Some(commit_origin(v as u32, &slots));
        }
    }

    /// Assembles the round certificate once the outcome is decided.
    /// Mirrors the simulated executor's construction field for field —
    /// the two executors must emit byte-identical certificates for the
    /// same round spec.
    fn build_certificate(&mut self) {
        let Some(Ok(out)) = &self.outcome else { return };
        if !self.commits_frozen || self.commits.iter().any(|c| c.is_none()) {
            if !self.replaying {
                eprintln!(
                    "{}: certificate skipped: incomplete commitment plane",
                    self.who
                );
            }
            return;
        }
        let leaves: Vec<Digest> = self
            .commits
            .iter()
            .map(|c| c.as_ref().expect("checked").leaf)
            .collect();
        let counts: Vec<(u32, u32)> = self
            .commits
            .iter()
            .map(|c| {
                let c = c.as_ref().expect("checked");
                (c.accepted, c.rejected)
            })
            .collect();
        let (segments, contrib_root) = build_segments(&leaves, &counts);
        let mut rejected: Vec<u32> = out.rejected.clone();
        rejected.sort_unstable();
        rejected.dedup();
        let spec = CertSpec {
            seed: self.setup.spec.seed,
            devices: self.setup.pop.graph.len() as u32,
            query: self.setup.spec.query.clone(),
            with_proofs: self.setup.spec.with_proofs,
        };
        let seeds: Vec<[u8; 32]> = self.pongs.iter().filter_map(|p| *p).collect();
        let mut cert = RoundCertificate {
            spec_digest: spec.digest(),
            spec,
            committee: self.setup.committee_size as u32,
            threshold: self.setup.threshold as u32,
            share_round: self.share_round,
            participants: self.participants.iter().map(|&m| m as u32).collect(),
            leaves,
            segments,
            contrib_root,
            rejected,
            aggregate_digest: ciphertext_digest(self.aggregate.as_ref().expect("aggregated")),
            noise_commitment: noise_commitment(&seeds),
            charged_epsilon_bits: self.charged_epsilon.to_bits(),
            released: out
                .released
                .iter()
                .map(|g| ReleasedGroup {
                    label: g.label.clone(),
                    histogram: g.histogram.clone(),
                })
                .collect(),
            transcript: [0u8; 32],
            signatures: Vec::new(),
        };
        cert.transcript = cert.compute_transcript();
        self.cert = Some(cert);
    }

    /// Attaches whatever valid committee signatures arrived and seals
    /// the certificate. Fewer than `t + 1` signatures means no
    /// certificate bytes — the round result stands, but it is not
    /// independently checkable.
    fn do_seal(&mut self) {
        if self.cert_sealed {
            return;
        }
        self.cert_sealed = true;
        let threshold = self.setup.threshold;
        let Some(cert) = self.cert.as_mut() else {
            return;
        };
        cert.signatures = (1..=self.setup.committee_size as u64)
            .filter_map(|m| self.cert_sigs[m as usize].map(|sig| CommitteeSig { member: m, sig }))
            .collect();
        if cert.signatures.len() > threshold {
            self.cert_bytes = Some(cert.encode());
        } else if !self.replaying {
            eprintln!(
                "{}: certificate unsigned: {} of {} needed signatures",
                self.who,
                cert.signatures.len(),
                threshold + 1
            );
        }
    }

    /// Forms this process's aggregate.
    ///
    /// * Hub: sum over every origin row, missing origins contribute
    ///   `Enc(0)`.
    /// * Shard: partial summation tree over the *owned* origins only
    ///   (same `Enc(0)` substitution — homomorphic addition is
    ///   associative, so the per-shard grouping cannot change the sum).
    /// * Coordinator: sum of the sealed shard roots; `tick` only fires
    ///   this once every root arrived, so a missing shard delays the
    ///   combine rather than silently contributing zero.
    fn do_aggregate(&mut self) {
        if self.aggregate.is_some() {
            return;
        }
        let (n_ring, t_pt) = (self.setup.plan.n_ring, self.setup.plan.t_pt);
        let keys = &self.setup.keys;
        let rng = &mut self.rng;
        let mut enc_zero = |s: &Option<Ciphertext>| match s {
            Some(ct) => Ok(ct.clone()),
            None => Ciphertext::encrypt(&keys.public, &Plaintext::zero(n_ring, t_pt), rng),
        };
        let cts: Result<Vec<Ciphertext>, String> = match &self.mode {
            AggMode::Hub => self
                .submissions
                .iter()
                .map(&mut enc_zero)
                .collect::<Result<_, _>>()
                .map_err(|e| format!("substitute encryption failed: {e}")),
            AggMode::Shard { owned, .. } => {
                let mut cts = self
                    .submissions
                    .iter()
                    .zip(owned.iter())
                    .filter(|(_, &own)| own)
                    .map(|(s, _)| enc_zero(s))
                    .collect::<Result<Vec<_>, _>>();
                // A shard that owns no origins still seals one neutral
                // Enc(0) so the coordinator's tree stays total over shards.
                if matches!(&cts, Ok(v) if v.is_empty()) {
                    cts = enc_zero(&None).map(|ct| vec![ct]);
                }
                cts.map_err(|e| format!("substitute encryption failed: {e}"))
            }
            AggMode::Coordinator { .. } => self
                .submissions
                .iter()
                .enumerate()
                .map(|(s, ct)| ct.clone().ok_or(format!("shard {s} root missing")))
                .collect(),
        };
        match cts.and_then(|cts| {
            aggregate_and_audit(cts).map_err(|e| format!("aggregation failed: {e}"))
        }) {
            Ok(agg) => self.aggregate = Some(agg),
            Err(e) => self.fail(e),
        }
    }

    /// Picks the first `t + 1` alive members as decryption participants.
    fn do_select(&mut self) {
        let alive = self.alive_members();
        let need = self.setup.threshold + 1;
        if alive.len() < need {
            return self.fail(format!(
                "committee unavailable: {} alive, {need} needed",
                alive.len()
            ));
        }
        self.share_round += 1;
        self.participants = alive[..need].to_vec();
        self.shares = vec![None; self.setup.committee_size + 1];
        self.share_deadline = Some(Instant::now() + self.share_wait());
    }

    /// Drops the straggling participants' pongs and selects again.
    fn do_reselect(&mut self) {
        self.reselected = true;
        let missing: Vec<u64> = self
            .participants
            .iter()
            .copied()
            .filter(|&m| self.shares[m as usize].is_none())
            .collect();
        for m in missing {
            self.pongs[m as usize - 1] = None;
        }
        self.do_select();
    }

    fn alive_members(&self) -> Vec<u64> {
        (1..=self.setup.committee_size as u64)
            .filter(|&m| self.pongs[m as usize - 1].is_some())
            .collect()
    }

    fn finish_committee(&mut self) {
        let aggregate = self.aggregate.as_ref().expect("aggregated");
        let shares: Vec<DecryptionShare> = self
            .participants
            .iter()
            .map(|&m| self.shares[m as usize].clone().expect("share collected"))
            .collect();
        let plaintext = match combine(aggregate, &shares, self.setup.threshold) {
            Ok(pt) => pt,
            Err(e) => return self.fail(format!("threshold combine failed: {e}")),
        };
        let exact = decode_aggregate(&plaintext, &self.setup.query, &self.setup.plan.analysis);
        let seeds: Vec<[u8; 32]> = self.pongs.iter().filter_map(|p| *p).collect();
        let noise_scale = self.setup.plan.analysis.sensitivity / self.setup.params.epsilon;
        let noise = derive_joint_noise(&seeds, noise_scale, self.setup.plan.released_values());
        let released = release_noisy(&exact, &noise, self.setup.plan.released_len);
        let mut rejected = self.rejected.clone();
        rejected.sort_unstable();
        self.outcome = Some(Ok(RoundOutcome {
            exact,
            released,
            rejected,
        }));
        // The result is decided; what remains is collecting committee
        // signatures over the certificate transcript. Building the
        // certificate here — inside the journaled request that delivered
        // the last share — makes replay re-derive it bit-identically.
        self.build_certificate();
    }

    /// Lazy wall-clock phase transitions, run around every request and
    /// by the server's idle loop. Each transition is journaled as a
    /// mark record *before* it is applied, so replay re-applies it at
    /// the same point in the event order instead of re-evaluating
    /// wall-clock conditions.
    fn tick(&mut self) -> Result<(), NetError> {
        if self.replaying {
            return Ok(());
        }
        if self.outcome.is_none() {
            self.tick_round()?;
        }
        self.settle_budget()?;
        self.tick_cert()
    }

    /// The pre-outcome transitions: commitment freeze, aggregate,
    /// participant selection, reselect-or-fail.
    fn tick_round(&mut self) -> Result<(), NetError> {
        // Aggregate once every expected input arrived — origin rows for
        // the hub / a shard, sealed roots for the coordinator. Hub and
        // shard also fire on the extended deadline (missing origins
        // contribute Enc(0)); the coordinator never does: a shard root
        // is a whole subpopulation, so it waits (bounded by the round
        // timeout) for the chaos supervisor to respawn the shard.
        let submit_deadline = self.setup.spec.contrib_deadline * 2;
        let intake_done = match &self.mode {
            AggMode::Hub => {
                self.got_submissions == self.setup.pop.graph.len()
                    || self.started.elapsed() >= submit_deadline
            }
            AggMode::Shard { owned_count, .. } => {
                self.got_submissions == *owned_count || self.started.elapsed() >= submit_deadline
            }
            AggMode::Coordinator { shards } => self.got_submissions == *shards as usize,
        };
        if self.aggregate.is_none() && intake_done {
            // Commitment-then-seal: freeze (and journal) the per-origin
            // certificate commitments before the aggregate exists, so
            // nothing that arrives later can move the committed tree.
            if !self.commits_frozen {
                self.do_commit();
                let mut record = Vec::with_capacity(33);
                record.push(rec::COMMIT);
                record.extend_from_slice(&self.commit_digest());
                self.digest_due = true;
                self.append_record(&record)?;
            }
            self.append_mark(rec::AGGREGATE)?;
            self.do_aggregate();
        }
        // A shard's round ends at its sealed root: no committee phases.
        if matches!(self.mode, AggMode::Shard { .. }) {
            return Ok(());
        }
        // Select participants once the aggregate exists and the whole
        // committee checked in (or the grace period expires).
        if self.outcome.is_none() && self.aggregate.is_some() && self.participants.is_empty() {
            let alive = self.alive_members();
            let all_in = alive.len() == self.setup.committee_size;
            let grace_over = self.started.elapsed() >= submit_deadline + Duration::from_secs(5);
            if all_in || grace_over {
                self.append_mark(rec::SELECT)?;
                self.do_select();
            }
        }
        // Reselect once if a chosen member never delivered its share.
        if let Some(deadline) = self.share_deadline {
            if self.outcome.is_none() && Instant::now() >= deadline {
                let missing = self
                    .participants
                    .iter()
                    .any(|&m| self.shares[m as usize].is_none());
                if missing {
                    if self.reselected {
                        let msg = format!(
                            "committee unavailable: {} alive, {} needed",
                            self.alive_members().len(),
                            self.setup.threshold + 1
                        );
                        self.append_fail(&msg)?;
                        self.fail(msg);
                    } else {
                        self.append_mark(rec::RESELECT)?;
                        self.do_reselect();
                    }
                }
            }
        }
        Ok(())
    }

    /// The post-outcome transition: seal the certificate once every
    /// committee member signed its transcript, or once the grace period
    /// expires (quorum then decides whether certificate bytes exist).
    fn tick_cert(&mut self) -> Result<(), NetError> {
        if self.cert_sealed || self.cert.is_none() || !matches!(self.outcome, Some(Ok(_))) {
            return Ok(());
        }
        let c = self.setup.committee_size;
        let all_signed = (1..=c).all(|m| self.cert_sigs[m].is_some());
        let since = *self.cert_since.get_or_insert_with(Instant::now);
        if all_signed || since.elapsed() >= self.share_wait() {
            self.append_mark(rec::SEAL)?;
            self.do_seal();
        }
        Ok(())
    }

    /// Whether the round is fully over from a client's point of view:
    /// the outcome exists *and* the certificate (when one was built) is
    /// sealed. `Finished` replies wait for this, so no role can exit
    /// while its certificate signature is still wanted.
    fn round_done(&self) -> bool {
        match &self.outcome {
            None => false,
            Some(Err(_)) => true,
            Some(Ok(_)) => self.cert.is_none() || self.cert_sealed,
        }
    }

    /// Whether this process accepts intake traffic for origin `v`.
    fn owns_origin(&self, origin: u32) -> bool {
        match &self.mode {
            AggMode::Hub => true,
            AggMode::Shard { owned, .. } => owned.get(origin as usize).copied().unwrap_or(false),
            AggMode::Coordinator { .. } => false,
        }
    }

    /// Whether this process runs the committee protocol (shards don't).
    fn committee_enabled(&self) -> bool {
        !matches!(self.mode, AggMode::Shard { .. })
    }

    /// Whether `msg` would mutate protocol state right now — the
    /// journal-before-reply predicate. Liveness bookkeeping
    /// (`finished_seen`, `finished_shards`, `driver_seen`) does not
    /// count: it is not replayed state.
    fn mutates(&self, msg: &NetMsg) -> bool {
        let n = self.setup.pop.graph.len() as u32;
        let c = self.setup.committee_size as u64;
        match msg {
            NetMsg::PushContrib { origin, slot, .. } => {
                !self.round_done()
                    && *origin < n
                    && self.owns_origin(*origin)
                    && (*slot as usize) < self.contribs[*origin as usize].len()
                    && !self.seen.contains(&(*origin, *slot))
            }
            NetMsg::SubmitOrigin { origin, .. } => {
                !self.round_done()
                    && *origin < n
                    && self.owns_origin(*origin)
                    && self.submissions[*origin as usize].is_none()
            }
            NetMsg::ShardRoot { shard, .. } => {
                !self.round_done()
                    && matches!(&self.mode, AggMode::Coordinator { shards } if *shard < *shards)
                    && self.submissions[*shard as usize].is_none()
            }
            NetMsg::CommitteeCheckIn { member, .. } => {
                self.committee_enabled()
                    && *member >= 1
                    && *member <= c
                    && self.pongs[*member as usize - 1].is_none()
            }
            NetMsg::PushShare { member, round, .. } => {
                self.committee_enabled()
                    && *member >= 1
                    && *member <= c
                    && self.outcome.is_none()
                    && *round == self.share_round
                    && self.participants.contains(member)
                    && self.shares[*member as usize].is_none()
            }
            NetMsg::PushCertSig { member, sig } => {
                self.committee_enabled()
                    && *member >= 1
                    && *member <= c
                    && !self.cert_sealed
                    && self.cert_sigs[*member as usize].is_none()
                    && self.cert.as_ref().is_some_and(|cert| {
                        verify_transcript_sig(self.setup.spec.seed, *member, &cert.transcript, sig)
                    })
            }
            _ => false,
        }
    }

    /// Applies one request to the state and computes the reply. Pure
    /// protocol logic: no journaling, no wall-clock reads — this is the
    /// function journal replay re-runs.
    fn apply(&mut self, msg: NetMsg) -> Result<NetMsg, NetError> {
        let n = self.setup.pop.graph.len() as u32;
        let c = self.setup.committee_size as u64;
        Ok(match msg {
            NetMsg::PushContrib { origin, slot, sc } => {
                if origin >= n
                    || !self.owns_origin(origin)
                    || slot as usize >= self.contribs[origin as usize].len()
                {
                    return Err(NetError::Decode(format!(
                        "contribution for origin {origin} slot {slot} out of range"
                    )));
                }
                // A decided round (including a budget-refused one)
                // takes no more intake: tell the client to stand down.
                if self.round_done() {
                    return Ok(NetMsg::Finished);
                }
                if self.seen.insert((origin, slot)) {
                    // §4.6–§4.7: verify the proof; substitute the neutral
                    // Enc(x^0) for offenders and remember them. The slot
                    // outcome is recorded for the certificate commitment
                    // — accepted slots with the digest of the ciphertext
                    // *as verified*, before any substitution.
                    let ct = if self.setup.plan.verify_contribution(&sc) {
                        self.statuses.insert(
                            (origin, slot),
                            SlotStatus::Accepted(ciphertext_digest(&sc.ct)),
                        );
                        sc.ct
                    } else {
                        self.statuses.insert((origin, slot), SlotStatus::Rejected);
                        if !self.rejected.contains(&sc.device) {
                            self.rejected.push(sc.device);
                        }
                        self.setup
                            .plan
                            .neutral_ct(&self.setup.keys, &mut self.rng)
                            .map_err(|e| {
                                NetError::Decode(format!("neutral encryption failed: {e}"))
                            })?
                    };
                    self.contribs[origin as usize][slot as usize] = Some(ct);
                }
                NetMsg::Ack
            }
            NetMsg::PullOrigin { origin } => {
                if origin >= n || !self.owns_origin(origin) {
                    return Err(NetError::Decode(format!("origin {origin} out of range")));
                }
                if self.round_done() {
                    return Ok(NetMsg::Finished);
                }
                let slots = &self.contribs[origin as usize];
                let have = slots.iter().filter(|s| s.is_some()).count();
                if have == slots.len() || (!self.replaying && self.contrib_deadline_passed()) {
                    NetMsg::OriginJob { cts: slots.clone() }
                } else {
                    NetMsg::OriginPending {
                        have: have as u32,
                        need: slots.len() as u32,
                    }
                }
            }
            NetMsg::SubmitOrigin { origin, ct } => {
                if origin >= n || !self.owns_origin(origin) {
                    return Err(NetError::Decode(format!("origin {origin} out of range")));
                }
                if self.round_done() {
                    return Ok(NetMsg::Finished);
                }
                if self.submissions[origin as usize].is_none() {
                    self.submissions[origin as usize] = Some(*ct);
                    self.got_submissions += 1;
                }
                NetMsg::Ack
            }
            NetMsg::CommitteeCheckIn { member, seed } => {
                if !self.committee_enabled() || member < 1 || member > c {
                    return Err(NetError::Decode(format!("member {member} out of range")));
                }
                if self.pongs[member as usize - 1].is_none() {
                    self.pongs[member as usize - 1] = Some(seed);
                }
                if self.round_done() {
                    if !self.replaying {
                        self.finished_seen.insert(member);
                    }
                    NetMsg::Finished
                } else if let (Some(Ok(_)), Some(cert)) = (&self.outcome, &self.cert) {
                    // The result is decided; the only thing left to
                    // collect is this member's certificate signature.
                    if self.cert_sigs[member as usize].is_none() {
                        NetMsg::CertSignTask {
                            transcript: cert.transcript,
                        }
                    } else {
                        NetMsg::CommitteeWait
                    }
                } else if self.participants.contains(&member)
                    && self.shares[member as usize].is_none()
                {
                    NetMsg::CommitteeShareTask {
                        round: self.share_round,
                        participants: self.participants.clone(),
                        ct: Box::new(self.aggregate.clone().expect("selection implies aggregate")),
                    }
                } else {
                    NetMsg::CommitteeWait
                }
            }
            NetMsg::PushShare {
                member,
                round,
                share,
            } => {
                if !self.committee_enabled() || member < 1 || member > c {
                    return Err(NetError::Decode(format!("member {member} out of range")));
                }
                if self.outcome.is_none()
                    && round == self.share_round
                    && self.participants.contains(&member)
                    && self.shares[member as usize].is_none()
                {
                    self.shares[member as usize] = Some(*share);
                    let done = self
                        .participants
                        .iter()
                        .all(|&m| self.shares[m as usize].is_some());
                    if done {
                        self.finish_committee();
                    }
                }
                NetMsg::Ack
            }
            NetMsg::PullStatus => {
                if self.round_done() {
                    if !self.replaying {
                        self.driver_seen = true;
                    }
                    NetMsg::Finished
                } else {
                    NetMsg::CommitteeWait
                }
            }
            NetMsg::PushCertSig { member, sig } => {
                if !self.committee_enabled() || member < 1 || member > c {
                    return Err(NetError::Decode(format!("member {member} out of range")));
                }
                if let Some(cert) = &self.cert {
                    // A forged or corrupted signature is simply not
                    // counted; the seal grace decides the quorum.
                    if !self.cert_sealed
                        && self.cert_sigs[member as usize].is_none()
                        && verify_transcript_sig(
                            self.setup.spec.seed,
                            member,
                            &cert.transcript,
                            &sig,
                        )
                    {
                        self.cert_sigs[member as usize] = Some(sig);
                    }
                }
                NetMsg::Ack
            }
            NetMsg::ShardRoot {
                shard,
                rejected,
                commits,
                root,
            } => {
                let AggMode::Coordinator { shards } = &self.mode else {
                    return Err(NetError::Decode(
                        "shard root pushed at a non-coordinator".into(),
                    ));
                };
                let shards = *shards;
                if shard >= shards {
                    return Err(NetError::Decode(format!("shard {shard} out of range")));
                }
                if rejected.iter().any(|&v| v >= n) {
                    return Err(NetError::Decode(format!(
                        "shard {shard} rejected a device outside the population"
                    )));
                }
                if commits.iter().any(|c| c.origin >= n) {
                    return Err(NetError::Decode(format!(
                        "shard {shard} committed an origin outside the population"
                    )));
                }
                if self.round_done() {
                    if !self.replaying {
                        self.finished_shards.insert(shard);
                    }
                    return Ok(NetMsg::Finished);
                }
                if self.submissions[shard as usize].is_none() {
                    self.submissions[shard as usize] = Some(*root);
                    self.got_submissions += 1;
                    for v in rejected {
                        if !self.rejected.contains(&v) {
                            self.rejected.push(v);
                        }
                    }
                    for cmt in commits {
                        let o = cmt.origin as usize;
                        if self.commits[o].is_none() {
                            self.commits[o] = Some(cmt);
                        }
                    }
                }
                if self.round_done() {
                    if !self.replaying {
                        self.finished_shards.insert(shard);
                    }
                    NetMsg::Finished
                } else {
                    NetMsg::Ack
                }
            }
            NetMsg::PullShardStatus { shard } => {
                if self.round_done() {
                    if !self.replaying {
                        self.finished_shards.insert(shard);
                    }
                    NetMsg::Finished
                } else {
                    NetMsg::CommitteeWait
                }
            }
            _ => return Err(NetError::Decode("request expected, got a reply".into())),
        })
    }

    /// Handles one live request: runs due transitions, journals the
    /// request if it mutates state, applies it, journals any transition
    /// it unlocked, and fsyncs everything **before** the reply goes
    /// out — an acknowledged mutation is always on disk. `raw` is the
    /// request's wire encoding (what the journal stores).
    pub fn handle(&mut self, msg: NetMsg, raw: &[u8]) -> Result<NetMsg, NetError> {
        self.tick()?;
        if self.mutates(&msg) {
            self.append_req(raw)?;
        }
        let reply = self.apply(msg)?;
        self.tick()?;
        self.flush()?;
        Ok(reply)
    }

    /// Whether the round has produced an outcome (success or typed
    /// failure).
    pub fn is_finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// How many records the journal currently holds (tests).
    pub fn journal_records(&self) -> u64 {
        self.journal.as_ref().map_or(0, Journal::record_count)
    }

    /// The shard's sealed `ShardRoot` message once the partial tree is
    /// formed (`None` before that, and always in the other modes).
    pub fn shard_root_msg(&self) -> Option<NetMsg> {
        let AggMode::Shard { shard, owned, .. } = &self.mode else {
            return None;
        };
        self.aggregate.as_ref().map(|root| {
            let mut rejected = self.rejected.clone();
            rejected.sort_unstable();
            // The aggregate only exists after the commitment freeze, so
            // every owned origin's commitment is present.
            let commits: Vec<OriginCommit> = self
                .commits
                .iter()
                .zip(owned.iter())
                .filter(|(_, &own)| own)
                .map(|(c, _)| c.clone().expect("commits freeze before the root seals"))
                .collect();
            NetMsg::ShardRoot {
                shard: *shard,
                rejected,
                commits,
                root: Box::new(root.clone()),
            }
        })
    }

    /// The sealed round certificate's canonical bytes, once the seal
    /// happened and the signature quorum was reached (`None` before the
    /// seal, below quorum, and always on shards).
    pub fn certificate(&self) -> Option<&[u8]> {
        self.cert_bytes.as_deref()
    }

    /// The sealed certificate rendered as the `ROUND_cert.json` artifact
    /// (human-readable fields plus the canonical bytes hex-embedded).
    pub fn certificate_json(&self) -> Option<String> {
        self.certificate().and_then(|bytes| {
            RoundCertificate::decode(bytes)
                .ok()
                .map(|cert| render_json(&cert, bytes) + "\n")
        })
    }

    /// A typed terminal failure, if the round recorded one.
    pub fn failure(&self) -> Option<String> {
        match &self.outcome {
            Some(Err(e)) => Some(e.clone()),
            _ => None,
        }
    }
}

/// File names the roles and driver agree on inside the `--out` directory.
pub mod files {
    /// The aggregator's outcome (see [`super::decode_outcome`]).
    pub const OUTCOME: &str = "outcome.bin";
    /// Merged metrics, binary (see `NetMetrics::decode`).
    pub const METRICS_MERGED: &str = "metrics-merged.bin";
    /// Merged metrics, JSON artifact.
    pub const METRICS_JSON: &str = "NET_round.json";
    /// The aggregator's write-ahead journal.
    pub const JOURNAL: &str = "journal.bin";
    /// The aggregator's current address (rewritten on every respawn;
    /// clients re-read it when their retries exhaust).
    pub const AGG_ADDR: &str = "agg.addr";
    /// The chaos supervisor's per-seed report artifact.
    pub const CHAOS_JSON: &str = "CHAOS_report.json";
    /// The sealed round certificate (JSON envelope with the canonical
    /// bytes hex-embedded; feed it to `myc_verify`).
    pub const CERT_JSON: &str = "ROUND_cert.json";
    /// The session privacy-budget WAL (default location when
    /// `--budget-wal` is not given; multi-round sessions share one file
    /// across their per-round out dirs).
    pub const BUDGET_WAL: &str = "budget.wal";

    /// Per-role metrics file name.
    pub fn role_metrics(name: &str) -> String {
        format!("metrics-{name}.bin")
    }

    /// Aggregation shard `s`'s WAL partition.
    pub fn shard_journal(shard: usize) -> String {
        format!("journal-shard-{shard}.bin")
    }

    /// Aggregation shard `s`'s published address (same atomic
    /// rewrite-on-respawn protocol as [`AGG_ADDR`]).
    pub fn shard_addr(shard: usize) -> String {
        format!("shard-{shard}.addr")
    }
}

fn write_metrics(out_dir: &Path, name: &str, metrics: &NetMetrics) -> Result<(), NetError> {
    std::fs::write(out_dir.join(files::role_metrics(name)), metrics.encode())?;
    Ok(())
}

/// Atomically publishes a server's current address (temp file + rename,
/// so a concurrent reader never sees a partial write).
fn write_named_addr_file(out_dir: &Path, name: &str, addr: SocketAddr) -> Result<(), NetError> {
    let tmp = out_dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, addr.to_string())?;
    std::fs::rename(&tmp, out_dir.join(name))?;
    Ok(())
}

fn write_addr_file(out_dir: &Path, addr: SocketAddr) -> Result<(), NetError> {
    write_named_addr_file(out_dir, files::AGG_ADDR, addr)
}

/// Reads a published server address by file name, if any.
pub fn read_named_addr_file(out_dir: &Path, name: &str) -> Option<SocketAddr> {
    let s = std::fs::read_to_string(out_dir.join(name)).ok()?;
    s.trim().parse().ok()
}

/// Reads the aggregator's published address, if any.
pub fn read_addr_file(out_dir: &Path) -> Option<SocketAddr> {
    read_named_addr_file(out_dir, files::AGG_ADDR)
}

/// Runs the aggregator: recovers state from the journal (fresh on the
/// first incarnation), binds a loopback port, publishes it via the
/// `agg.addr` file and a `LISTENING <addr>` banner on stdout, serves
/// the round, writes the outcome and its metrics into `out_dir`, and
/// exits once the round is over and observed.
pub fn run_aggregator(
    spec: &RoundSpec,
    out_dir: &Path,
    faults: &AggFaults,
) -> Result<(), NetError> {
    std::fs::create_dir_all(out_dir)?;
    let setup = Arc::new(build_setup(spec)?);
    let mut st = AggState::recover(Arc::clone(&setup), &out_dir.join(files::JOURNAL))?;
    st.set_faults(faults);
    if spec.budget.is_some() {
        let wal_path = spec
            .budget_wal
            .clone()
            .unwrap_or_else(|| out_dir.join(files::BUDGET_WAL));
        st.install_budget(&wal_path)?;
    }
    let state = Arc::new(Mutex::new(st));
    let handler_state = Arc::clone(&state);
    let handler_setup = Arc::clone(&setup);
    let die_after = faults.die_after.clone();
    let die_count = Arc::new(Mutex::new(0u32));
    let handler = Arc::new(
        move |_peer: [u8; 32], request: &[u8]| -> Result<Vec<u8>, NetError> {
            let msg = NetMsg::decode(request, &handler_setup.cc)?;
            let kind = msg.kind();
            let reply = lock_recover(&handler_state).handle(msg, request)?;
            if let Some((k, n)) = &die_after {
                if kind == k.as_str() {
                    let mut count = lock_recover(&die_count);
                    *count += 1;
                    if *count == *n {
                        // Chaos: the mutation is journaled and fsync'd but
                        // the client never sees the reply — it must retry
                        // into the respawned aggregator's idempotent path.
                        eprintln!("aggregator: chaos kill after {n} {k}");
                        std::process::abort();
                    }
                }
            }
            Ok(reply.encode())
        },
    );
    let config = ServerConfig {
        workers: spec.device_shards
            + spec.origin_shards
            + setup.committee_size
            + spec.agg_shards
            + 3,
        roster: Some(setup.roster()),
        ..ServerConfig::default()
    };
    let server = Server::spawn(
        "127.0.0.1:0",
        setup.aggregator_identity(),
        config,
        handler,
        spec.seed,
    )?;
    write_addr_file(out_dir, server.local_addr())?;
    println!("LISTENING {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;

    let started = Instant::now();
    let mut outcome_since: Option<Instant> = None;
    let (result, cert_json) = loop {
        std::thread::sleep(Duration::from_millis(20));
        let mut s = lock_recover(&state);
        if let Err(e) = s.tick().and_then(|_| s.flush()) {
            s.fail(format!("journal failure: {e}"));
        }
        if s.round_done() {
            let since = *outcome_since.get_or_insert_with(Instant::now);
            // Committee members (and shards) that died after the
            // outcome formed can never poll `Finished`; a grace period
            // keeps their absence from wedging the exit.
            let shards_expected = if spec.agg_shards > 1 {
                spec.agg_shards
            } else {
                0
            };
            let all_observed = s.finished_seen.len() == setup.committee_size
                && s.finished_shards.len() == shards_expected;
            if s.driver_seen && (all_observed || since.elapsed() >= FINISH_GRACE) {
                let json = s.certificate_json();
                break (s.outcome.take().expect("checked"), json);
            }
        }
        if started.elapsed() >= spec.round_timeout {
            let json = s.certificate_json();
            break (
                s.outcome.take().unwrap_or_else(|| {
                    Err(format!(
                        "round did not converge within {:?}",
                        spec.round_timeout
                    ))
                }),
                json,
            );
        }
    };
    // The certificate lands on disk *before* the outcome file: the
    // outcome is the durable end-of-round signal lingering roles watch,
    // so nobody can observe a finished round with a missing certificate.
    if let Some(json) = cert_json {
        std::fs::write(out_dir.join(files::CERT_JSON), json)?;
    }
    std::fs::write(out_dir.join(files::OUTCOME), encode_outcome(&result))?;
    let metrics = lock_recover(&server.metrics()).clone();
    write_metrics(out_dir, "aggregator", &metrics)?;
    server.shutdown();
    match result {
        Ok(_) => Ok(()),
        Err(e) => Err(NetError::Decode(format!("round failed: {e}"))),
    }
}

/// Runs aggregation shard `shard`: recovers its own WAL partition,
/// binds a loopback port published via `shard-N.addr` (plus a
/// `LISTENING` banner for the piped supervisor), serves intake for the
/// origins it owns, pushes its sealed root to the coordinator at
/// `addr`, and lingers — acking late client retries — until the
/// coordinator reports the round finished (or the outcome file appears,
/// covering a coordinator that exited before this shard's poll).
pub fn run_shard(
    spec: &RoundSpec,
    shard: usize,
    addr: SocketAddr,
    out_dir: &Path,
    faults: &AggFaults,
) -> Result<(), NetError> {
    std::fs::create_dir_all(out_dir)?;
    let setup = Arc::new(build_setup(spec)?);
    let mut st = AggState::recover_shard(
        Arc::clone(&setup),
        shard as u32,
        &out_dir.join(files::shard_journal(shard)),
    )?;
    st.set_faults(faults);
    let who = st.who().to_string();
    let state = Arc::new(Mutex::new(st));
    let handler_state = Arc::clone(&state);
    let handler_setup = Arc::clone(&setup);
    let die_after = faults.die_after.clone();
    let die_count = Arc::new(Mutex::new(0u32));
    let handler = Arc::new(
        move |_peer: [u8; 32], request: &[u8]| -> Result<Vec<u8>, NetError> {
            let msg = NetMsg::decode(request, &handler_setup.cc)?;
            let kind = msg.kind();
            let reply = lock_recover(&handler_state).handle(msg, request)?;
            if let Some((k, n)) = &die_after {
                if kind == k.as_str() {
                    let mut count = lock_recover(&die_count);
                    *count += 1;
                    if *count == *n {
                        eprintln!("{who}: chaos kill after {n} {k}");
                        std::process::abort();
                    }
                }
            }
            Ok(reply.encode())
        },
    );
    let config = ServerConfig {
        workers: spec.device_shards + spec.origin_shards + 3,
        roster: Some(setup.roster()),
        ..ServerConfig::default()
    };
    let server = Server::spawn(
        "127.0.0.1:0",
        setup.shard_identity(shard),
        config,
        handler,
        spec.seed ^ (0x5a5a + shard as u64),
    )?;
    write_named_addr_file(out_dir, &files::shard_addr(shard), server.local_addr())?;
    println!("LISTENING {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;

    // Client half towards the coordinator.
    let mut coord = HubClient::new(&setup, role::SHARD_BASE + shard as u32, addr, out_dir);
    let started = Instant::now();
    let mut root_msg: Option<NetMsg> = None;
    let mut root_acked = false;
    let result = loop {
        std::thread::sleep(Duration::from_millis(20));
        {
            let mut s = lock_recover(&state);
            if let Err(e) = s.tick().and_then(|_| s.flush()) {
                s.fail(format!("journal failure: {e}"));
            }
            if let Some(e) = s.failure() {
                break Err(NetError::Decode(format!("shard {shard} failed: {e}")));
            }
            if root_msg.is_none() && !root_acked {
                root_msg = s.shard_root_msg();
            }
        }
        if let Some(msg) = &root_msg {
            match coord.poll_once(&setup, msg) {
                Ok(NetMsg::Ack) => {
                    root_acked = true;
                    root_msg = None;
                }
                Ok(NetMsg::Finished) => break Ok(()),
                _ => {}
            }
        } else if root_acked {
            if let Ok(NetMsg::Finished) = coord.poll_once(
                &setup,
                &NetMsg::PullShardStatus {
                    shard: shard as u32,
                },
            ) {
                break Ok(());
            }
            // The coordinator may have exited (finish grace elapsed)
            // before this shard's poll saw Finished; the outcome file
            // is the durable end-of-round signal.
            if out_dir.join(files::OUTCOME).exists() {
                break Ok(());
            }
        }
        if started.elapsed() >= spec.round_timeout {
            break Err(NetError::Decode(format!(
                "shard {shard} round did not converge within {:?}",
                spec.round_timeout
            )));
        }
    };
    let mut metrics = lock_recover(&server.metrics()).clone();
    metrics.merge(&coord.metrics());
    write_metrics(out_dir, &format!("shard-{shard}"), &metrics)?;
    server.shutdown();
    result
}

fn round_client(
    setup: &RoundSetup,
    role_id: u32,
    addr: SocketAddr,
    server_pub: [u8; 32],
) -> Client {
    let identity = Identity::derive(setup.spec.seed, role_id);
    let mut config = ClientConfig::new(identity, Some(server_pub));
    config.read_timeout = Duration::from_secs(20);
    // Short inner budget (~0.75 s of backoff): after an aggregator
    // crash the address changes, so burning the full schedule against
    // the dead port only delays the HubClient's re-resolution.
    config.backoff = crate::BackoffPolicy::new(50, 4);
    Client::new(
        addr,
        config,
        StdRng::seed_from_u64(setup.spec.seed ^ 0xd1a1).with_stream(role_id as u64),
    )
}

fn expect_ack(reply: &NetMsg) -> Result<(), NetError> {
    match reply {
        NetMsg::Ack => Ok(()),
        other => Err(NetError::Decode(format!(
            "expected Ack, got {}",
            other.kind()
        ))),
    }
}

fn request_msg(client: &mut Client, cc: &CodecCtx, msg: &NetMsg) -> Result<NetMsg, NetError> {
    let reply = client.request(msg.kind(), &msg.encode())?;
    NetMsg::decode(&reply, cc)
}

/// A client of the aggregator hub that survives aggregator respawns:
/// when the inner [`Client`]'s retries exhaust, it re-reads the
/// `agg.addr` file — a respawned aggregator binds a fresh port and
/// republishes it there — and redials, bounded by the round timeout so
/// a dead hub is a typed [`NetError`], never a hang.
pub(crate) struct HubClient {
    client: Client,
    role_id: u32,
    out_dir: PathBuf,
    addr_file: String,
    server_pub: [u8; 32],
    addr: SocketAddr,
    deadline: Instant,
    poll: Duration,
}

impl HubClient {
    pub(crate) fn new(setup: &RoundSetup, role_id: u32, addr: SocketAddr, out_dir: &Path) -> Self {
        // Prefer the published address: this process may have been
        // (re)spawned after the aggregator already moved ports.
        let addr = read_addr_file(out_dir).unwrap_or(addr);
        let server_pub = setup.aggregator_identity().public;
        HubClient {
            client: round_client(setup, role_id, addr, server_pub),
            role_id,
            out_dir: out_dir.to_path_buf(),
            addr_file: files::AGG_ADDR.to_string(),
            server_pub,
            addr,
            deadline: Instant::now() + setup.spec.round_timeout,
            poll: setup.spec.poll_interval.max(Duration::from_millis(50)),
        }
    }

    /// A client of aggregation shard `shard`. Shards publish their
    /// address only through the `shard-N.addr` file (they have no
    /// spawning parent reading a banner), so this waits — bounded by
    /// the round timeout — for the file to appear.
    pub(crate) fn new_to_shard(
        setup: &RoundSetup,
        role_id: u32,
        shard: usize,
        out_dir: &Path,
    ) -> Result<Self, NetError> {
        let addr_file = files::shard_addr(shard);
        let deadline = Instant::now() + setup.spec.round_timeout;
        let addr = loop {
            if let Some(addr) = read_named_addr_file(out_dir, &addr_file) {
                break addr;
            }
            if Instant::now() >= deadline {
                return Err(NetError::Decode(format!(
                    "shard {shard} never published {addr_file}"
                )));
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        let server_pub = setup.shard_identity(shard).public;
        Ok(HubClient {
            client: round_client(setup, role_id, addr, server_pub),
            role_id,
            out_dir: out_dir.to_path_buf(),
            addr_file,
            server_pub,
            addr,
            deadline,
            poll: setup.spec.poll_interval.max(Duration::from_millis(50)),
        })
    }

    /// One request attempt (the inner client's short retry schedule
    /// only). On failure, re-resolves the published address for the
    /// *next* attempt and returns the error — never blocks the caller's
    /// loop. The chaos supervisor polls through this so it can keep
    /// respawning the aggregator it is waiting on.
    pub(crate) fn poll_once(
        &mut self,
        setup: &RoundSetup,
        msg: &NetMsg,
    ) -> Result<NetMsg, NetError> {
        match request_msg(&mut self.client, &setup.cc, msg) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                match read_named_addr_file(&self.out_dir, &self.addr_file) {
                    Some(new_addr) if new_addr != self.addr => {
                        self.addr = new_addr;
                        self.client = round_client(setup, self.role_id, new_addr, self.server_pub);
                    }
                    _ => self.client.disconnect(),
                }
                Err(e)
            }
        }
    }

    fn request_msg(&mut self, setup: &RoundSetup, msg: &NetMsg) -> Result<NetMsg, NetError> {
        loop {
            match request_msg(&mut self.client, &setup.cc, msg) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_retryable() || matches!(e, NetError::RetriesExhausted { .. }) => {
                    if Instant::now() >= self.deadline {
                        return Err(e);
                    }
                    if let Some(new_addr) = read_named_addr_file(&self.out_dir, &self.addr_file) {
                        if new_addr != self.addr {
                            self.addr = new_addr;
                            self.client =
                                round_client(setup, self.role_id, new_addr, self.server_pub);
                            continue;
                        }
                    }
                    self.client.disconnect();
                    std::thread::sleep(self.poll);
                }
                Err(e) => return Err(e),
            }
        }
    }

    pub(crate) fn metrics(&self) -> NetMetrics {
        lock_recover(&self.client.metrics()).clone()
    }

    /// Closes the underlying connection (the next request redials).
    pub(crate) fn hangup(&mut self) {
        self.client.disconnect();
    }
}

/// Lazily-built per-aggregation-shard clients for one worker process.
/// At one shard every target resolves to the classic hub client; above
/// that, entry `s` dials shard `s` via its published address file.
struct ShardedHub {
    hubs: std::collections::BTreeMap<usize, HubClient>,
    role_id: u32,
    addr: SocketAddr,
    out_dir: PathBuf,
}

impl ShardedHub {
    fn new(role_id: u32, addr: SocketAddr, out_dir: &Path) -> Self {
        ShardedHub {
            hubs: std::collections::BTreeMap::new(),
            role_id,
            addr,
            out_dir: out_dir.to_path_buf(),
        }
    }

    /// The client for the aggregation shard owning origin `v`.
    fn for_origin(&mut self, setup: &RoundSetup, v: VertexId) -> Result<&mut HubClient, NetError> {
        let target = shard_of(v, setup.spec.agg_shards);
        if let std::collections::btree_map::Entry::Vacant(e) = self.hubs.entry(target) {
            e.insert(if setup.spec.agg_shards > 1 {
                HubClient::new_to_shard(setup, self.role_id, target, &self.out_dir)?
            } else {
                HubClient::new(setup, self.role_id, self.addr, &self.out_dir)
            });
        }
        Ok(self.hubs.get_mut(&target).expect("just inserted"))
    }

    fn metrics(&self) -> NetMetrics {
        let mut merged = NetMetrics::default();
        for hub in self.hubs.values() {
            merged.merge(&hub.metrics());
        }
        merged
    }
}

/// Runs one device process: encrypts and pushes the contribution duties
/// of every vertex in its shard (each duty to the aggregation shard
/// owning its destination origin), then exits.
pub fn run_device(
    spec: &RoundSpec,
    shard: usize,
    addr: SocketAddr,
    out_dir: &Path,
) -> Result<(), NetError> {
    let setup = build_setup(spec)?;
    let mut hubs = ShardedHub::new(role::DEVICE_BASE + shard as u32, addr, out_dir);
    'vertices: for v in 0..setup.pop.graph.len() {
        if v % spec.device_shards != shard {
            continue;
        }
        // Per-vertex randomness streams make the ciphertexts independent
        // of how vertices shard across processes.
        let mut rng = StdRng::seed_from_u64(spec.seed).with_stream(stream::CONTRIB + v as u64);
        for duty in &setup.duties[v] {
            let sc = setup
                .plan
                .build_contribution(&setup.keys, v as VertexId, duty.exp, false, &mut rng)
                .map_err(|e| NetError::Decode(format!("contribution encryption: {e}")))?;
            let msg = NetMsg::PushContrib {
                origin: duty.origin,
                slot: duty.slot,
                sc: Box::new(sc),
            };
            let hub = hubs.for_origin(&setup, duty.origin)?;
            match hub.request_msg(&setup, &msg)? {
                NetMsg::Ack => {}
                // The round is over (possibly refused by the budget
                // ledger before any intake): nothing left to push.
                NetMsg::Finished => break 'vertices,
                other => {
                    return Err(NetError::Decode(format!(
                        "unexpected PushContrib reply {}",
                        other.kind()
                    )))
                }
            }
        }
    }
    write_metrics(out_dir, &format!("device-{shard}"), &hubs.metrics())?;
    Ok(())
}

/// Runs one origin process: for each vertex in its shard, polls the
/// aggregator for the verified slot ciphertexts, substitutes the neutral
/// `Enc(x^0)` for slots that never arrived, combines, and submits.
///
/// `crash_after`: exit with code 17 after that many vertices have been
/// submitted — the driver's watchdog respawns the shard, which recovers
/// by re-pulling (all protocol state lives at the aggregator).
pub fn run_origin(
    spec: &RoundSpec,
    shard: usize,
    addr: SocketAddr,
    out_dir: &Path,
    crash_after: Option<usize>,
) -> Result<(), NetError> {
    let setup = build_setup(spec)?;
    let mut hubs = ShardedHub::new(role::ORIGIN_BASE + shard as u32, addr, out_dir);
    let mut submitted = 0usize;
    'vertices: for v in 0..setup.pop.graph.len() {
        if v % spec.origin_shards != shard {
            continue;
        }
        if crash_after == Some(submitted) {
            std::process::exit(17);
        }
        let hub = hubs.for_origin(&setup, v as VertexId)?;
        let slots = loop {
            match hub.request_msg(&setup, &NetMsg::PullOrigin { origin: v as u32 })? {
                NetMsg::OriginJob { cts } => break cts,
                NetMsg::OriginPending { .. } => std::thread::sleep(spec.poll_interval),
                // The round is over (possibly refused by the budget
                // ledger): no origin work left to do.
                NetMsg::Finished => break 'vertices,
                other => {
                    return Err(NetError::Decode(format!(
                        "unexpected PullOrigin reply {}",
                        other.kind()
                    )))
                }
            }
        };
        let work = &setup.works[v];
        if slots.len() != work.requests.len() {
            return Err(NetError::Decode("origin job slot count mismatch".into()));
        }
        let mut rng = StdRng::seed_from_u64(spec.seed).with_stream(stream::ORIGIN + v as u64);
        let cts: Vec<Ciphertext> = slots
            .into_iter()
            .map(|slot| match slot {
                Some(ct) => Ok(ct),
                None => setup.plan.neutral_ct(&setup.keys, &mut rng),
            })
            .collect::<Result<_, _>>()
            .map_err(|e| NetError::Decode(format!("neutral encryption: {e}")))?;
        let mut stats = ExecStats::default();
        let out = combine_origin(&setup.plan, &setup.keys, work, &cts, &mut stats, &mut rng)
            .map_err(|e| NetError::Decode(format!("origin combine: {e}")))?;
        let msg = NetMsg::SubmitOrigin {
            origin: v as u32,
            ct: Box::new(out),
        };
        match hub.request_msg(&setup, &msg)? {
            NetMsg::Ack => {}
            NetMsg::Finished => break 'vertices,
            other => {
                return Err(NetError::Decode(format!(
                    "unexpected SubmitOrigin reply {}",
                    other.kind()
                )))
            }
        }
        submitted += 1;
    }
    write_metrics(out_dir, &format!("origin-{shard}"), &hubs.metrics())?;
    Ok(())
}

/// Runs one committee member: polls check-ins (carrying its joint-noise
/// seed), answers share tasks, and exits once the aggregator reports the
/// round finished.
pub fn run_committee(
    spec: &RoundSpec,
    member: u64,
    addr: SocketAddr,
    out_dir: &Path,
) -> Result<(), NetError> {
    let setup = build_setup(spec)?;
    let mut hub = HubClient::new(&setup, role::COMMITTEE_BASE + member as u32, addr, out_dir);
    let mut rng = StdRng::seed_from_u64(spec.seed).with_stream(stream::COMMITTEE + member);
    let mut seed = [0u8; 32];
    rng.fill(&mut seed);
    let mut computed: std::collections::HashMap<u32, DecryptionShare> =
        std::collections::HashMap::new();
    loop {
        let reply = hub.request_msg(&setup, &NetMsg::CommitteeCheckIn { member, seed })?;
        match reply {
            NetMsg::Finished => break,
            NetMsg::CommitteeWait => std::thread::sleep(spec.poll_interval),
            NetMsg::CommitteeShareTask {
                round,
                participants,
                ct,
            } => {
                if !participants.contains(&member) {
                    return Err(NetError::Decode(
                        "share task for a set excluding this member".into(),
                    ));
                }
                if let std::collections::hash_map::Entry::Vacant(slot) = computed.entry(round) {
                    let share = decryption_share(
                        &ct,
                        &setup.key_shares,
                        member,
                        &participants,
                        setup.plan.t_pt as i64,
                        &mut rng,
                    )
                    .map_err(|e| NetError::Decode(format!("share computation: {e}")))?;
                    slot.insert(share);
                }
                let msg = NetMsg::PushShare {
                    member,
                    round,
                    share: Box::new(computed[&round].clone()),
                };
                expect_ack(&hub.request_msg(&setup, &msg)?)?;
            }
            NetMsg::CertSignTask { transcript } => {
                // Endorse the round certificate: a detached ed25519
                // signature over its transcript digest. Deterministic,
                // so a respawned member re-signs identically.
                let sig = sign_transcript(spec.seed, member, &transcript);
                let msg = NetMsg::PushCertSig { member, sig };
                expect_ack(&hub.request_msg(&setup, &msg)?)?;
            }
            other => {
                return Err(NetError::Decode(format!(
                    "unexpected check-in reply {}",
                    other.kind()
                )))
            }
        }
    }
    write_metrics(out_dir, &format!("committee-{member}"), &hub.metrics())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Driver options.
#[derive(Debug, Clone, Default)]
pub struct DriverOpts {
    /// Kill origin shard `.0` after `.1` submitted vertices (exit 17);
    /// the watchdog respawns it once.
    pub crash_origin: Option<(usize, usize)>,
}

/// Reads the `LISTENING <addr>` banner from a piped aggregator child
/// and keeps draining the pipe so the child can never block on stdout.
pub(crate) fn read_agg_banner(agg: &mut Supervised) -> Result<SocketAddr, NetError> {
    let stdout = agg
        .take_stdout()
        .ok_or_else(|| NetError::Decode("aggregator stdout was not piped".into()))?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("LISTENING ")
        .ok_or_else(|| NetError::Decode(format!("bad aggregator banner: {line:?}")))?
        .parse()
        .map_err(|e| NetError::Decode(format!("bad aggregator address: {e}")))?;
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok(addr)
}

/// Orchestrates the whole multi-process round: spawns the aggregator,
/// device/origin shards, and committee members as child processes of
/// `exe` (normally `current_exe()`), watches for crashed origins and
/// respawns each once (through the shared [`Supervised`] restart
/// mechanism the chaos supervisor also uses), waits for completion, and
/// merges all metrics files into `NET_round.json`.
pub fn run_driver(
    exe: &Path,
    spec: &RoundSpec,
    out_dir: &Path,
    opts: &DriverOpts,
) -> Result<(), NetError> {
    std::fs::create_dir_all(out_dir)?;
    let setup = build_setup(spec)?;
    let out_arg = out_dir.display().to_string();
    let base = spec.to_args();
    let with_base = |mut v: Vec<String>| -> Vec<String> {
        v.extend(base.iter().cloned());
        v.extend(["--out".to_string(), out_arg.clone()]);
        v
    };

    // Aggregator first; its stdout announces the bound port.
    let mut agg = Supervised::spawn(
        exe,
        "aggregator",
        with_base(vec!["aggregator".into()]),
        true,
    )?;
    let addr = read_agg_banner(&mut agg)?;

    let addr_arg = addr.to_string();
    let mut children: Vec<Supervised> = Vec::new();
    // Aggregation shards next (sharded layout only): they publish their
    // own addresses via `shard-N.addr` files, which device and origin
    // clients wait on, so everyone can start concurrently.
    if spec.agg_shards > 1 {
        for s in 0..spec.agg_shards {
            let args = with_base(vec![
                "shard".into(),
                "--shard".into(),
                s.to_string(),
                "--addr".into(),
                addr_arg.clone(),
            ]);
            children.push(Supervised::spawn(exe, &format!("shard-{s}"), args, false)?);
        }
    }
    for i in 0..spec.device_shards {
        let args = with_base(vec![
            "device".into(),
            "--shard".into(),
            i.to_string(),
            "--addr".into(),
            addr_arg.clone(),
        ]);
        children.push(Supervised::spawn(exe, &format!("device-{i}"), args, false)?);
    }
    for j in 0..spec.origin_shards {
        let mut args = with_base(vec![
            "origin".into(),
            "--shard".into(),
            j.to_string(),
            "--addr".into(),
            addr_arg.clone(),
        ]);
        let respawn = args.clone();
        if let Some((shard, after)) = opts.crash_origin {
            if shard == j {
                args.extend(["--crash-after".into(), after.to_string()]);
            }
        }
        children.push(
            Supervised::spawn(exe, &format!("origin-{j}"), args, false)?.with_respawn(respawn, 1),
        );
    }
    for m in 1..=setup.committee_size as u64 {
        let args = with_base(vec![
            "committee".into(),
            "--member".into(),
            m.to_string(),
            "--addr".into(),
            addr_arg.clone(),
        ]);
        children.push(Supervised::spawn(
            exe,
            &format!("committee-{m}"),
            args,
            false,
        )?);
    }

    // Watchdog + status poll until the aggregator reports Finished.
    let mut driver = HubClient::new(&setup, role::DRIVER, addr, out_dir);
    let started = Instant::now();
    let finished = loop {
        if started.elapsed() >= spec.round_timeout {
            break false;
        }
        // Respawn crashed origins (nonzero exit before completion).
        for cp in children.iter_mut() {
            cp.watch()?;
        }
        match driver.request_msg(&setup, &NetMsg::PullStatus) {
            Ok(NetMsg::Finished) => break true,
            Ok(_) => {}
            // The aggregator may be briefly unreachable while saturated;
            // the client already retried, so just keep polling.
            Err(_) => {}
        }
        std::thread::sleep(spec.poll_interval.max(Duration::from_millis(50)));
    };

    // Drain every child, then the aggregator itself.
    let mut failures: Vec<String> = Vec::new();
    for cp in children.iter_mut() {
        let status = cp.wait()?;
        if !status.success() {
            failures.push(format!("{} exited with {status}", cp.name));
        }
    }
    let agg_status = agg.wait()?;
    if !agg_status.success() {
        failures.push(format!("aggregator exited with {agg_status}"));
    }
    if !finished {
        failures.push("driver status poll never saw Finished".into());
    }

    // Merge all metrics files (the driver's own included).
    write_metrics(out_dir, "driver", &driver.metrics())?;
    let mut merged = NetMetrics::default();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(out_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("metrics-") && n.ends_with(".bin"))
        })
        .collect();
    entries.sort();
    for path in entries {
        let bytes = std::fs::read(&path)?;
        merged.merge(&NetMetrics::decode(&bytes)?);
    }
    std::fs::write(out_dir.join(files::METRICS_MERGED), merged.encode())?;
    std::fs::write(out_dir.join(files::METRICS_JSON), merged.to_json(0) + "\n")?;

    if failures.is_empty() {
        Ok(())
    } else {
        Err(NetError::Decode(failures.join("; ")))
    }
}
