//! Length-prefixed frames with a versioned header.
//!
//! Every byte on a `mycelium-net` socket belongs to a frame:
//!
//! ```text
//!  0        4        6     7     8                16       20
//!  +--------+--------+-----+-----+----------------+--------+----------···
//!  | magic  | version| type|flags|   sequence     | length | payload
//!  | "MYCN" |  u16   | u8  | u8  |     u64        |  u32   | (length bytes)
//!  +--------+--------+-----+-----+----------------+--------+----------···
//! ```
//!
//! The header is authenticated but not encrypted: for encrypted frames
//! the whole 20-byte header is the AEAD associated data and the sequence
//! number is the implicit nonce, so a tampered header (or a replayed
//! frame) fails authentication instead of confusing the protocol.

use std::io::{Read, Write};

use crate::error::NetError;

/// Protocol magic (first four bytes of every frame).
pub const MAGIC: [u8; 4] = *b"MYCN";
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Fixed header size.
pub const HEADER_LEN: usize = 20;
/// Default cap on a single frame's payload (handshake + query-round
/// messages are far below this; the bench sweeps up to 1 MiB).
pub const DEFAULT_MAX_PAYLOAD: usize = 64 << 20;

/// Frame discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Plaintext client handshake opener.
    ClientHello = 1,
    /// Plaintext server handshake reply.
    ServerHello = 2,
    /// Encrypted key-confirmation frame (first sealed frame per side).
    Confirm = 3,
    /// Encrypted application frame.
    Data = 4,
}

impl FrameType {
    fn from_u8(v: u8) -> Result<Self, NetError> {
        match v {
            1 => Ok(FrameType::ClientHello),
            2 => Ok(FrameType::ServerHello),
            3 => Ok(FrameType::Confirm),
            4 => Ok(FrameType::Data),
            got => Err(NetError::BadFrameType { got }),
        }
    }
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame discriminator.
    pub frame_type: FrameType,
    /// Reserved (must be zero in version 1).
    pub flags: u8,
    /// Per-direction sequence number (and implicit AEAD nonce).
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// Serializes a header (also the AEAD associated data of sealed frames).
pub fn header_bytes(frame_type: FrameType, seq: u64, len: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    h[6] = frame_type as u8;
    h[7] = 0;
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h[16..20].copy_from_slice(&len.to_le_bytes());
    h
}

fn parse_header(h: &[u8; HEADER_LEN]) -> Result<FrameHeader, NetError> {
    let magic: [u8; 4] = h[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(NetError::BadMagic { got: magic });
    }
    let version = u16::from_le_bytes(h[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(NetError::VersionMismatch {
            got: version,
            want: VERSION,
        });
    }
    Ok(FrameHeader {
        frame_type: FrameType::from_u8(h[6])?,
        flags: h[7],
        seq: u64::from_le_bytes(h[8..16].try_into().unwrap()),
        len: u32::from_le_bytes(h[16..20].try_into().unwrap()),
    })
}

/// Writes one frame.
pub fn write_frame(
    w: &mut impl Write,
    frame_type: FrameType,
    seq: u64,
    payload: &[u8],
) -> Result<(), NetError> {
    let header = header_bytes(frame_type, seq, payload.len() as u32);
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn mid_frame(what: &str) -> NetError {
    NetError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        format!("connection died inside a frame ({what})"),
    ))
}

/// Reads one frame, returning its header and payload.
///
/// A clean EOF or read timeout *before the first header byte* maps to
/// the benign [`NetError::PeerClosed`] / [`NetError::Timeout`] (the
/// connection is still frame-aligned); the same conditions mid-frame are
/// hard [`NetError::Io`] errors — the stream is desynced and must be
/// dropped.
pub fn read_frame(
    r: &mut impl Read,
    max_payload: usize,
) -> Result<(FrameHeader, Vec<u8>), NetError> {
    let mut header = [0u8; HEADER_LEN];
    // The header is read by hand so a between-frames EOF/timeout is
    // distinguishable from a truncated frame.
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(NetError::PeerClosed),
            Ok(0) => return Err(mid_frame("EOF in header")),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) && got == 0 => return Err(NetError::Timeout),
            Err(e) if is_timeout(e.kind()) => return Err(mid_frame("timeout in header")),
            Err(e) => return Err(e.into()),
        }
    }
    let parsed = parse_header(&header)?;
    let len = parsed.len as usize;
    if len > max_payload {
        return Err(NetError::FrameTooLarge {
            len,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len];
    let mut read = 0usize;
    while read < len {
        match r.read(&mut payload[read..]) {
            Ok(0) => return Err(mid_frame("EOF in payload")),
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => return Err(mid_frame("timeout in payload")),
            Err(e) => return Err(e.into()),
        }
    }
    Ok((parsed, payload))
}

/// Total bytes one frame occupies on the wire for a given payload size.
pub fn frame_wire_bytes(payload_len: usize) -> usize {
    HEADER_LEN + payload_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Data, 9, b"payload").unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 7);
        let (h, p) = read_frame(&mut buf.as_slice(), 1024).unwrap();
        assert_eq!(h.frame_type, FrameType::Data);
        assert_eq!(h.seq, 9);
        assert_eq!(p, b"payload");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Data, 0, b"x").unwrap();
        buf[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(NetError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Data, 0, b"x").unwrap();
        buf[4] = 9;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(NetError::VersionMismatch { got: 9, want: 1 })
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Data, 0, &[0u8; 100]).unwrap();
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 10),
            Err(NetError::FrameTooLarge { len: 100, max: 10 })
        ));
    }

    #[test]
    fn clean_eof_is_peer_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut &*empty, 10),
            Err(NetError::PeerClosed)
        ));
    }

    #[test]
    fn truncated_header_is_hard_error() {
        let buf = [b'M', b'Y', b'C'];
        assert!(matches!(
            read_frame(&mut &buf[..], 10),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Data, 0, b"").unwrap();
        buf[6] = 0xEE;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 10),
            Err(NetError::BadFrameType { got: 0xEE })
        ));
    }
}
