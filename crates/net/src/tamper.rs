//! A frame-aware tampering TCP relay for adversarial tests.
//!
//! [`TamperProxy`] sits between a client and a server, parses the
//! transport's length-prefixed frames off the client→server byte stream,
//! and flips one bit inside the payload of the first sufficiently large
//! `Data` frame it sees. Everything else — handshake frames, the
//! server→client direction — is relayed untouched.
//!
//! The point: the AEAD channel must convert the flip into a typed
//! [`crate::error::NetError::Aead`] rejection on the receiving side
//! (never a panic, never silently corrupted plaintext), and the client's
//! retry loop must recover over a fresh connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::frame::HEADER_LEN;

/// A byte-flipping relay in front of `upstream`.
pub struct TamperProxy {
    addr: SocketAddr,
    /// How many frames were tampered so far.
    tampered: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TamperProxy {
    /// Starts a proxy on an ephemeral loopback port. Frames from client
    /// to server whose payload is at least `min_len` bytes are tampered
    /// (one bit flipped mid-payload) — at most one frame per proxy, so a
    /// retried request passes through clean.
    pub fn spawn(upstream: SocketAddr, min_len: usize) -> std::io::Result<TamperProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let tampered = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let t2 = Arc::clone(&tampered);
        let s2 = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if s2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { break };
                let Ok(server) = TcpStream::connect(upstream) else {
                    break;
                };
                let t3 = Arc::clone(&t2);
                // Server → client: plain byte relay.
                let (cr, sr) = (client.try_clone(), server.try_clone());
                if let (Ok(client_w), Ok(server_r)) = (cr, sr) {
                    std::thread::spawn(move || relay_plain(server_r, client_w));
                }
                // Client → server: frame-parsing relay, detached so the
                // accept loop can take the client's next (post-retry)
                // connection immediately.
                std::thread::spawn(move || relay_tampering(client, server, min_len, &t3));
            }
        });
        Ok(TamperProxy {
            addr,
            tampered,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The proxy's listen address (point the client here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many frames have been tampered.
    pub fn tampered(&self) -> u64 {
        self.tampered.load(Ordering::SeqCst)
    }

    /// Stops accepting new connections (live relays drain on their own).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn relay_plain(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
}

fn read_exact_opt(stream: &mut TcpStream, buf: &mut [u8]) -> bool {
    stream.read_exact(buf).is_ok()
}

fn relay_tampering(mut from: TcpStream, mut to: TcpStream, min_len: usize, tampered: &AtomicU64) {
    loop {
        let mut header = [0u8; HEADER_LEN];
        if !read_exact_opt(&mut from, &mut header) {
            break;
        }
        let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
        let mut payload = vec![0u8; len];
        if !read_exact_opt(&mut from, &mut payload) {
            break;
        }
        // Only Data frames (type 4) are candidates; corrupting the
        // handshake would just fail key confirmation, which is a
        // different (also required) property.
        let is_data = header[6] == 4;
        if is_data
            && len >= min_len
            && tampered
                .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            let mid = len / 2;
            payload[mid] ^= 0x01;
        }
        if to.write_all(&header).is_err() || to.write_all(&payload).is_err() {
            break;
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
}
