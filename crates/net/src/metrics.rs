//! Wire-level counters for the transport plane.
//!
//! Each process accumulates one [`NetMetrics`]; the `net_round` driver
//! collects the per-role metrics files, [`NetMetrics::merge`]s them and
//! renders a single deterministic JSON artifact that the reconciliation
//! test checks against the analytical cost model in
//! `mycelium::costs` / `mycelium::simcost`.
//!
//! The latency series reuse [`PhaseSeries`] from `mycelium-simnet` — the
//! same summary statistics over microseconds here and virtual ticks
//! there, so the two transport planes report in one shape.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mycelium_simnet::PhaseSeries;

use crate::error::NetError;
use crate::wire::{Reader, Writer};

/// Traffic attributed to one message kind (request or response label).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Frames carrying this kind.
    pub frames: u64,
    /// Application payload bytes (before sealing and framing).
    pub payload_bytes: u64,
    /// Bytes on the wire (header + ciphertext + tag).
    pub wire_bytes: u64,
}

impl KindCounters {
    fn add(&mut self, other: &KindCounters) {
        self.frames += other.frames;
        self.payload_bytes += other.payload_bytes;
        self.wire_bytes += other.wire_bytes;
    }
}

/// Everything one endpoint measured about its wire traffic.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// Completed handshakes.
    pub handshakes: u64,
    /// Handshake durations, microseconds.
    pub handshake_micros: PhaseSeries,
    /// Connections re-dialed after a transport failure.
    pub reconnects: u64,
    /// Frames rejected by AEAD authentication.
    pub aead_rejects: u64,
    /// Encrypted data frames written.
    pub frames_sent: u64,
    /// Encrypted data frames read.
    pub frames_recv: u64,
    /// Wire bytes written (headers + handshake + sealed payloads).
    pub bytes_sent: u64,
    /// Wire bytes read.
    pub bytes_recv: u64,
    /// Per-kind traffic written, keyed by message label.
    pub sent: BTreeMap<String, KindCounters>,
    /// Per-kind traffic read.
    pub recv: BTreeMap<String, KindCounters>,
    /// Request round-trip latency per kind, microseconds.
    pub latency: BTreeMap<String, PhaseSeries>,
}

impl NetMetrics {
    /// A fresh shared handle, the form the channel and client APIs take.
    pub fn shared() -> Arc<Mutex<NetMetrics>> {
        Arc::new(Mutex::new(NetMetrics::default()))
    }

    /// Attributes one sent frame to a message kind.
    pub fn note_sent(&mut self, kind: &str, payload_bytes: u64, wire_bytes: u64) {
        let c = self.sent.entry(kind.to_string()).or_default();
        c.frames += 1;
        c.payload_bytes += payload_bytes;
        c.wire_bytes += wire_bytes;
    }

    /// Attributes one received frame to a message kind.
    pub fn note_recv(&mut self, kind: &str, payload_bytes: u64, wire_bytes: u64) {
        let c = self.recv.entry(kind.to_string()).or_default();
        c.frames += 1;
        c.payload_bytes += payload_bytes;
        c.wire_bytes += wire_bytes;
    }

    /// Records one request round-trip.
    pub fn note_latency(&mut self, kind: &str, micros: u64) {
        self.latency
            .entry(kind.to_string())
            .or_default()
            .record(micros);
    }

    /// Folds another endpoint's metrics into this one.
    pub fn merge(&mut self, other: &NetMetrics) {
        self.handshakes += other.handshakes;
        self.handshake_micros
            .completions
            .extend_from_slice(&other.handshake_micros.completions);
        self.reconnects += other.reconnects;
        self.aead_rejects += other.aead_rejects;
        self.frames_sent += other.frames_sent;
        self.frames_recv += other.frames_recv;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        for (k, c) in &other.sent {
            self.sent.entry(k.clone()).or_default().add(c);
        }
        for (k, c) in &other.recv {
            self.recv.entry(k.clone()).or_default().add(c);
        }
        for (k, p) in &other.latency {
            self.latency
                .entry(k.clone())
                .or_default()
                .completions
                .extend_from_slice(&p.completions);
        }
    }

    /// Binary encoding, used by role processes to report metrics to the
    /// driver through a file (the driver merges and renders JSON).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.handshakes);
        w.put_u64_slice(&self.handshake_micros.completions);
        w.put_u64(self.reconnects);
        w.put_u64(self.aead_rejects);
        w.put_u64(self.frames_sent);
        w.put_u64(self.frames_recv);
        w.put_u64(self.bytes_sent);
        w.put_u64(self.bytes_recv);
        for map in [&self.sent, &self.recv] {
            w.put_u32(map.len() as u32);
            for (k, c) in map {
                w.put_str(k);
                w.put_u64(c.frames);
                w.put_u64(c.payload_bytes);
                w.put_u64(c.wire_bytes);
            }
        }
        w.put_u32(self.latency.len() as u32);
        for (k, p) in &self.latency {
            w.put_str(k);
            w.put_u64_slice(&p.completions);
        }
        w.finish()
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<NetMetrics, NetError> {
        let mut r = Reader::new(bytes);
        let mut m = NetMetrics {
            handshakes: r.get_u64()?,
            handshake_micros: PhaseSeries {
                completions: r.get_u64_vec()?,
            },
            reconnects: r.get_u64()?,
            aead_rejects: r.get_u64()?,
            frames_sent: r.get_u64()?,
            frames_recv: r.get_u64()?,
            bytes_sent: r.get_u64()?,
            bytes_recv: r.get_u64()?,
            ..NetMetrics::default()
        };
        for which in 0..2 {
            let n = r.get_u32()?;
            for _ in 0..n {
                let k = r.get_str()?;
                let c = KindCounters {
                    frames: r.get_u64()?,
                    payload_bytes: r.get_u64()?,
                    wire_bytes: r.get_u64()?,
                };
                let map = if which == 0 { &mut m.sent } else { &mut m.recv };
                map.insert(k, c);
            }
        }
        let n = r.get_u32()?;
        for _ in 0..n {
            let k = r.get_str()?;
            let p = PhaseSeries {
                completions: r.get_u64_vec()?,
            };
            m.latency.insert(k, p);
        }
        r.expect_end()?;
        Ok(m)
    }

    /// Deterministic JSON: every value is an integer, every map is a
    /// `BTreeMap`, so the same traffic renders byte-identically.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let item = " ".repeat(indent + 4);
        let mut s = String::new();
        s.push_str(&format!(
            "{pad}{{\n{inner}\"handshakes\": {},\n{inner}\"handshake_p50_micros\": {},\n\
             {inner}\"handshake_p99_micros\": {},\n{inner}\"reconnects\": {},\n\
             {inner}\"aead_rejects\": {},\n{inner}\"frames_sent\": {},\n\
             {inner}\"frames_recv\": {},\n{inner}\"bytes_sent\": {},\n\
             {inner}\"bytes_recv\": {},\n",
            self.handshakes,
            self.handshake_micros.p50(),
            self.handshake_micros.p99(),
            self.reconnects,
            self.aead_rejects,
            self.frames_sent,
            self.frames_recv,
            self.bytes_sent,
            self.bytes_recv,
        ));
        for (label, map) in [("sent", &self.sent), ("recv", &self.recv)] {
            s.push_str(&format!("{inner}\"{label}\": {{"));
            let entries: Vec<String> = map
                .iter()
                .map(|(k, c)| {
                    format!(
                        "\n{item}\"{k}\": {{\"frames\": {}, \"payload_bytes\": {}, \
                         \"wire_bytes\": {}}}",
                        c.frames, c.payload_bytes, c.wire_bytes
                    )
                })
                .collect();
            s.push_str(&entries.join(","));
            if !entries.is_empty() {
                s.push('\n');
                s.push_str(&inner);
            }
            s.push_str("},\n");
        }
        s.push_str(&format!("{inner}\"latency_micros\": {{"));
        let entries: Vec<String> = self
            .latency
            .iter()
            .map(|(k, p)| {
                format!(
                    "\n{item}\"{k}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                    p.count(),
                    p.p50(),
                    p.p99(),
                    p.max()
                )
            })
            .collect();
        s.push_str(&entries.join(","));
        if !entries.is_empty() {
            s.push('\n');
            s.push_str(&inner);
        }
        s.push_str(&format!("}}\n{pad}}}"));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NetMetrics {
        let mut m = NetMetrics {
            handshakes: 2,
            ..NetMetrics::default()
        };
        m.handshake_micros.record(120);
        m.handshake_micros.record(90);
        m.reconnects = 1;
        m.frames_sent = 10;
        m.bytes_sent = 4096;
        m.note_sent("PushContrib", 1000, 1036);
        m.note_recv("Ack", 1, 37);
        m.note_latency("PushContrib", 250);
        m
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let d = NetMetrics::decode(&m.encode()).unwrap();
        assert_eq!(d.handshakes, m.handshakes);
        assert_eq!(d.handshake_micros, m.handshake_micros);
        assert_eq!(d.sent, m.sent);
        assert_eq!(d.recv, m.recv);
        assert_eq!(d.latency["PushContrib"].completions, vec![250]);
        assert_eq!(d.to_json(0), m.to_json(0));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.handshakes, 4);
        assert_eq!(a.sent["PushContrib"].frames, 2);
        assert_eq!(a.latency["PushContrib"].count(), 2);
    }

    #[test]
    fn json_is_deterministic() {
        let m = sample();
        assert_eq!(m.to_json(0), m.clone().to_json(0));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(NetMetrics::decode(&[1, 2, 3]).is_err());
    }
}
