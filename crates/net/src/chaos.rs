//! Chaos supervisor for the transport plane.
//!
//! Runs the full multi-process loopback round while killing and
//! respawning processes — **any** role, the aggregator included — at
//! randomized protocol steps, and checks the paper's robustness
//! invariant: every run must end in either the bit-identical released
//! histogram or a typed failure. Never a hang, never a silently wrong
//! answer.
//!
//! Three kill mechanisms cover the interesting crash points:
//!
//! * `--die-after KIND:N` — the aggregator aborts right after the `N`th
//!   handled message of a kind, i.e. after the mutation is journaled
//!   and fsync'd but before the client sees the reply (the classic
//!   "acknowledged write, lost ack" window).
//! * `--die-mid-journal N` — the aggregator aborts halfway through the
//!   `write(2)` of its `N`th journal record, leaving a torn tail the
//!   next incarnation must truncate away.
//! * plain `SIGKILL` of device / origin / committee processes at
//!   scheduled wall-clock offsets.
//!
//! [`Supervised`] is the *single* restart mechanism: the ordinary
//! driver's origin watchdog and this chaos supervisor both respawn
//! crashed children through it.

use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use mycelium::exec::NoisyGroup;
use mycelium::params::SystemParams;
use mycelium_math::rng::{Rng, SeedableRng, StdRng};
use mycelium_query::eval::{evaluate, PlainResult};
use mycelium_sharing::threshold::derive_joint_noise;

use crate::error::NetError;
use crate::proto::NetMsg;
use crate::round::{
    build_setup, decode_outcome, files, read_agg_banner, role, stream, HubClient, RoundSetup,
    RoundSpec,
};

// ---------------------------------------------------------------------------
// Supervised children
// ---------------------------------------------------------------------------

/// What [`Supervised::watch`] observed on one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEvent {
    /// The child is still running.
    Running,
    /// The child exited (successfully, or with no respawn budget left);
    /// its status is collected by [`Supervised::wait`].
    Exited,
    /// The child had crashed and was respawned.
    Respawned,
}

/// A supervised child process: spawn, non-blocking crash detection, and
/// budgeted respawn. This is the one restart mechanism in the transport
/// plane — the round driver's origin watchdog and the chaos supervisor
/// both go through it.
pub struct Supervised {
    /// Role label used in supervision messages (`origin-1`, …).
    pub name: String,
    /// How many times this child has been (re)spawned beyond the first.
    pub respawns: u32,
    exe: PathBuf,
    child: Child,
    piped: bool,
    respawn_args: Option<Vec<String>>,
    budget: u32,
    done: bool,
}

impl Supervised {
    /// Spawns `exe args...` (stdout piped if `piped`) with the
    /// single-threaded compute-plane setting every round child uses.
    pub fn spawn(exe: &Path, name: &str, args: Vec<String>, piped: bool) -> Result<Self, NetError> {
        let child = Self::launch(exe, &args, piped)?;
        Ok(Supervised {
            name: name.to_string(),
            respawns: 0,
            exe: exe.to_path_buf(),
            child,
            piped,
            respawn_args: None,
            budget: 0,
            done: false,
        })
    }

    fn launch(exe: &Path, args: &[String], piped: bool) -> Result<Child, NetError> {
        let mut cmd = Command::new(exe);
        cmd.args(args).env("MYC_THREADS", "1");
        if piped {
            cmd.stdout(Stdio::piped());
        }
        Ok(cmd.spawn()?)
    }

    /// Arms automatic respawn: a crashed (nonzero-exit) child is
    /// relaunched with `args`, at most `budget` times.
    pub fn with_respawn(mut self, args: Vec<String>, budget: u32) -> Self {
        self.respawn_args = Some(args);
        self.budget = budget;
        self
    }

    /// Takes the piped stdout handle (for banner reading).
    pub fn take_stdout(&mut self) -> Option<ChildStdout> {
        self.child.stdout.take()
    }

    /// Non-blocking exit probe of the current incarnation.
    pub fn try_exit(&mut self) -> Result<Option<ExitStatus>, NetError> {
        Ok(self.child.try_wait()?)
    }

    /// Replaces the current incarnation (killing it if still alive)
    /// with a fresh launch under different arguments. The chaos
    /// supervisor uses this to arm each aggregator incarnation with the
    /// next scheduled kill.
    pub fn respawn_with_args(&mut self, args: Vec<String>, piped: bool) -> Result<(), NetError> {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.piped = piped;
        self.child = Self::launch(&self.exe, &args, piped)?;
        self.respawns += 1;
        self.done = false;
        Ok(())
    }

    /// Delivers `SIGKILL` to a still-running child and reaps it.
    /// Returns whether there was anything to kill.
    pub fn kill(&mut self) -> Result<bool, NetError> {
        if self.done || self.child.try_wait()?.is_some() {
            return Ok(false);
        }
        self.child.kill()?;
        self.child.wait()?;
        Ok(true)
    }

    /// One watchdog poll: detects a crash and respawns within budget.
    pub fn watch(&mut self) -> Result<WatchEvent, NetError> {
        if self.done {
            return Ok(WatchEvent::Exited);
        }
        match self.child.try_wait()? {
            None => Ok(WatchEvent::Running),
            Some(status) if status.success() => {
                self.done = true;
                Ok(WatchEvent::Exited)
            }
            Some(status) => {
                if self.budget == 0 || self.respawn_args.is_none() {
                    self.done = true;
                    return Ok(WatchEvent::Exited);
                }
                self.budget -= 1;
                eprintln!(
                    "driver: {} exited with {status}, respawning once",
                    self.name
                );
                let args = self.respawn_args.clone().expect("checked");
                self.child = Self::launch(&self.exe, &args, self.piped)?;
                self.respawns += 1;
                Ok(WatchEvent::Respawned)
            }
        }
    }

    /// Blocks until the current incarnation exits (cached status if it
    /// already has).
    pub fn wait(&mut self) -> Result<ExitStatus, NetError> {
        Ok(self.child.wait()?)
    }
}

// ---------------------------------------------------------------------------
// Kill schedules
// ---------------------------------------------------------------------------

/// One scheduled aggregator death (armed via CLI flags on a single
/// incarnation; the next incarnation gets the next kill in the plan).
#[derive(Debug, Clone)]
pub enum AggKill {
    /// Abort after the `count`th handled message of `kind`
    /// (post-journal-commit, pre-reply).
    After {
        /// Message kind (`PushContrib`, `SubmitOrigin`,
        /// `CommitteeCheckIn`, `PushShare`).
        kind: String,
        /// Which occurrence triggers the abort (1-based).
        count: u32,
    },
    /// Abort halfway through writing the `count`th journal record,
    /// leaving a torn tail.
    MidJournal {
        /// Which journal append triggers the abort (1-based).
        count: u32,
    },
}

impl AggKill {
    fn to_args(&self) -> Vec<String> {
        match self {
            AggKill::After { kind, count } => {
                vec!["--die-after".into(), format!("{kind}:{count}")]
            }
            AggKill::MidJournal { count } => {
                vec!["--die-mid-journal".into(), count.to_string()]
            }
        }
    }
}

impl std::fmt::Display for AggKill {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggKill::After { kind, count } => write!(f, "abort after {count} {kind}"),
            AggKill::MidJournal { count } => write!(f, "abort mid-write of journal record {count}"),
        }
    }
}

/// One scheduled `SIGKILL` of a non-aggregator role.
#[derive(Debug, Clone)]
pub struct RoleKill {
    /// Child name (`device-3`, `origin-0`, `committee-2`).
    pub name: String,
    /// Wall-clock offset from round start.
    pub at: Duration,
}

/// A full kill schedule for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The seed the schedule was derived from (reported, for replay).
    pub seed: u64,
    /// Aggregator (hub or coordinator) deaths, one armed per
    /// incarnation in order.
    pub agg_kills: Vec<AggKill>,
    /// Role `SIGKILL`s at wall-clock offsets.
    pub role_kills: Vec<RoleKill>,
    /// Aggregation-shard deaths (`(shard, kill)`), armed per shard in
    /// listed order, one per incarnation. Sharded layout only.
    pub shard_kills: Vec<(usize, AggKill)>,
}

impl ChaosPlan {
    /// The fixed three-phase drill from the acceptance criteria: the
    /// aggregator dies once in each protocol phase — contribution
    /// intake, origin summation, and committee decryption — and every
    /// death must still converge to the bit-identical histogram.
    pub fn drill() -> Self {
        ChaosPlan {
            seed: 0,
            agg_kills: vec![
                AggKill::After {
                    kind: "PushContrib".into(),
                    count: 4,
                },
                AggKill::After {
                    kind: "SubmitOrigin".into(),
                    count: 3,
                },
                AggKill::After {
                    kind: "PushShare".into(),
                    count: 2,
                },
            ],
            role_kills: Vec::new(),
            shard_kills: Vec::new(),
        }
    }

    /// The sharded-layout drill from the acceptance criteria: one
    /// intake shard dies mid-intake (journal replay of its WAL
    /// partition), and the coordinator dies twice — right after a shard
    /// root lands (the mid-combine window: the root is journaled, the
    /// combine may have fired, the shard never saw the ack) and again
    /// during committee decryption. The round must still end `exact`.
    pub fn drill_sharded() -> Self {
        ChaosPlan {
            seed: 0,
            agg_kills: vec![
                AggKill::After {
                    kind: "ShardRoot".into(),
                    count: 1,
                },
                AggKill::After {
                    kind: "PushShare".into(),
                    count: 2,
                },
            ],
            role_kills: Vec::new(),
            shard_kills: vec![(
                0,
                AggKill::After {
                    kind: "PushContrib".into(),
                    count: 2,
                },
            )],
        }
    }

    /// Derives a randomized (but seed-deterministic) kill schedule:
    /// one to three aggregator deaths — by message count or mid-journal
    /// write — plus up to two role `SIGKILL`s.
    pub fn derive(seed: u64, spec: &RoundSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_55ED);
        // The hub handles intake; a coordinator only ever sees shard
        // roots and committee traffic, so its kill kinds differ (a kill
        // armed on a kind that never arrives simply never fires).
        let kinds: &[&str] = if spec.agg_shards > 1 {
            &["ShardRoot", "CommitteeCheckIn", "PushShare"]
        } else {
            &[
                "PushContrib",
                "SubmitOrigin",
                "CommitteeCheckIn",
                "PushShare",
            ]
        };
        let n_agg = rng.gen_range(1..=3u64);
        let mut agg_kills = Vec::new();
        for _ in 0..n_agg {
            if rng.gen_bool(0.25) {
                agg_kills.push(AggKill::MidJournal {
                    count: rng.gen_range(1..=16u64) as u32,
                });
            } else {
                let kind = kinds[rng.gen_range(0..kinds.len() as u64) as usize];
                agg_kills.push(AggKill::After {
                    kind: kind.into(),
                    count: rng.gen_range(1..=5u64) as u32,
                });
            }
        }
        let committee = SystemParams::simulation().committee_size;
        let mut names: Vec<String> = Vec::new();
        for i in 0..spec.device_shards {
            names.push(format!("device-{i}"));
        }
        for j in 0..spec.origin_shards {
            names.push(format!("origin-{j}"));
        }
        for m in 1..=committee {
            names.push(format!("committee-{m}"));
        }
        let mut role_kills = Vec::new();
        for _ in 0..rng.gen_range(0..=2u64) {
            role_kills.push(RoleKill {
                name: names[rng.gen_range(0..names.len() as u64) as usize].clone(),
                at: Duration::from_millis(rng.gen_range(200..=2000u64)),
            });
        }
        // Intake-shard kills (sharded layout only; the extra rng draws
        // happen after everything else, so single-hub schedules are
        // unchanged for any given seed).
        let mut shard_kills = Vec::new();
        if spec.agg_shards > 1 {
            let intake = ["PushContrib", "SubmitOrigin"];
            for _ in 0..rng.gen_range(1..=2u64) {
                let s = rng.gen_range(0..spec.agg_shards as u64) as usize;
                if rng.gen_bool(0.25) {
                    shard_kills.push((
                        s,
                        AggKill::MidJournal {
                            count: rng.gen_range(1..=8u64) as u32,
                        },
                    ));
                } else {
                    let kind = intake[rng.gen_range(0..intake.len() as u64) as usize];
                    shard_kills.push((
                        s,
                        AggKill::After {
                            kind: kind.into(),
                            count: rng.gen_range(1..=4u64) as u32,
                        },
                    ));
                }
            }
        }
        ChaosPlan {
            seed,
            agg_kills,
            role_kills,
            shard_kills,
        }
    }
}

// ---------------------------------------------------------------------------
// Outcome
// ---------------------------------------------------------------------------

/// How one chaos run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// The released histogram was bit-identical to the reference.
    Exact,
    /// The round ended with a typed failure (an `Err` outcome or an
    /// aggregator that died with a typed error every incarnation).
    TypedFailure,
    /// INVARIANT VIOLATION: the round produced a different histogram.
    WrongAnswer,
    /// INVARIANT VIOLATION: the round neither finished nor failed
    /// within the round timeout.
    Hang,
    /// INVARIANT VIOLATION: the histogram was right but the round's
    /// certificate is missing or fails offline verification — crash
    /// recovery is not allowed to cost the round its proof object.
    BadCertificate,
}

impl ChaosVerdict {
    /// Whether this verdict satisfies the chaos invariant.
    pub fn ok(self) -> bool {
        matches!(self, ChaosVerdict::Exact | ChaosVerdict::TypedFailure)
    }

    fn as_str(self) -> &'static str {
        match self {
            ChaosVerdict::Exact => "exact",
            ChaosVerdict::TypedFailure => "typed_failure",
            ChaosVerdict::WrongAnswer => "wrong_answer",
            ChaosVerdict::Hang => "hang",
            ChaosVerdict::BadCertificate => "bad_certificate",
        }
    }
}

impl std::fmt::Display for ChaosVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-seed chaos report (`CHAOS_report.json` entry).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The schedule seed.
    pub seed: u64,
    /// How the run ended.
    pub verdict: ChaosVerdict,
    /// How many aggregator incarnations the run took (1 = never died).
    pub agg_incarnations: u32,
    /// Human-readable log of every kill and respawn that fired.
    pub kills: Vec<String>,
    /// Wall-clock duration of the run.
    pub elapsed_ms: u64,
}

impl ChaosOutcome {
    /// Renders one run as a JSON object.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let kills: Vec<String> = self
            .kills
            .iter()
            .map(|k| format!("\"{}\"", k.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            "{pad}{{\n{pad}  \"seed\": {},\n{pad}  \"verdict\": \"{}\",\n\
             {pad}  \"agg_incarnations\": {},\n{pad}  \"kills\": [{}],\n\
             {pad}  \"elapsed_ms\": {}\n{pad}}}",
            self.seed,
            self.verdict,
            self.agg_incarnations,
            kills.join(", "),
            self.elapsed_ms,
        )
    }
}

/// Renders a full seed-matrix report (the `CHAOS_report.json` artifact).
pub fn report_json(outcomes: &[ChaosOutcome]) -> String {
    let runs: Vec<String> = outcomes.iter().map(|o| o.to_json(4)).collect();
    let violations = outcomes.iter().filter(|o| !o.verdict.ok()).count();
    format!(
        "{{\n  \"runs\": [\n{}\n  ],\n  \"invariant_violations\": {}\n}}\n",
        runs.join(",\n"),
        violations
    )
}

// ---------------------------------------------------------------------------
// The chaos round
// ---------------------------------------------------------------------------

/// The fault-free reference: exact histogram from the plaintext
/// evaluator, released histogram from the deterministic joint noise
/// (committee seeds are a pure function of the round seed, so the
/// *noised* release is reproducible too — decryption is exact and
/// contributes no randomness).
fn reference_result(setup: &RoundSetup) -> (PlainResult, Vec<NoisyGroup>) {
    let exact = evaluate(
        &setup.query,
        &setup.plan.analysis,
        &setup.params.schema,
        &setup.pop,
    );
    let seeds: Vec<[u8; 32]> = (1..=setup.committee_size as u64)
        .map(|m| {
            let mut rng = StdRng::seed_from_u64(setup.spec.seed).with_stream(stream::COMMITTEE + m);
            let mut s = [0u8; 32];
            rng.fill(&mut s);
            s
        })
        .collect();
    let b = setup.plan.analysis.sensitivity / setup.params.epsilon;
    let noise = derive_joint_noise(&seeds, b, setup.plan.released_values());
    let released = mycelium::exec::release_noisy(&exact, &noise, setup.plan.released_len);
    (exact, released)
}

fn judge_outcome(
    out_dir: &Path,
    want_exact: &PlainResult,
    want_released: &[NoisyGroup],
) -> ChaosVerdict {
    let Ok(bytes) = std::fs::read(out_dir.join(files::OUTCOME)) else {
        return ChaosVerdict::Hang;
    };
    let Ok(outcome) = decode_outcome(&bytes) else {
        return ChaosVerdict::WrongAnswer;
    };
    let Ok(outcome) = outcome else {
        return ChaosVerdict::TypedFailure;
    };
    let exact_ok = outcome.exact.groups.len() == want_exact.groups.len()
        && outcome
            .exact
            .groups
            .iter()
            .zip(&want_exact.groups)
            .all(|(a, b)| a.label == b.label && a.histogram == b.histogram);
    let released_ok = outcome.released.len() == want_released.len()
        && outcome
            .released
            .iter()
            .zip(want_released)
            .all(|(a, b)| a.label == b.label && a.histogram == b.histogram);
    if !(exact_ok && released_ok) {
        return ChaosVerdict::WrongAnswer;
    }
    // A successful round must also carry its proof: the certificate
    // artifact exists and verifies offline, however many incarnations
    // the aggregator burned through.
    let Ok(text) = std::fs::read_to_string(out_dir.join(files::CERT_JSON)) else {
        return ChaosVerdict::BadCertificate;
    };
    let Some(cert) = mycelium_cert::extract_cert_hex(&text) else {
        return ChaosVerdict::BadCertificate;
    };
    if !mycelium_cert::verify_bytes(&cert).is_valid() {
        return ChaosVerdict::BadCertificate;
    }
    ChaosVerdict::Exact
}

/// Runs one chaos round: executes the full multi-process round under
/// the plan's kill schedule, respawning every victim (the aggregator
/// recovers by journal replay; other roles recover by re-pulling and
/// idempotent re-pushing), and judges the end state against the
/// fault-free reference.
pub fn run_chaos(
    exe: &Path,
    spec: &RoundSpec,
    out_dir: &Path,
    plan: &ChaosPlan,
) -> Result<ChaosOutcome, NetError> {
    // A chaos run is always a fresh round: stale journal or address
    // files from a previous run would be replayed as protocol state.
    let _ = std::fs::remove_dir_all(out_dir);
    std::fs::create_dir_all(out_dir)?;
    let setup = build_setup(spec)?;
    let (want_exact, want_released) = reference_result(&setup);
    let started = Instant::now();
    let mut kills: Vec<String> = Vec::new();

    let out_arg = out_dir.display().to_string();
    let base = spec.to_args();
    let with_base = |mut v: Vec<String>| -> Vec<String> {
        v.extend(base.iter().cloned());
        v.extend(["--out".to_string(), out_arg.clone()]);
        v
    };
    let agg_args = |kill: Option<&AggKill>| -> Vec<String> {
        let mut a = with_base(vec!["aggregator".into()]);
        if let Some(kill) = kill {
            a.extend(kill.to_args());
        }
        a
    };

    // Incarnation i (1-based) is armed with plan.agg_kills[i - 1].
    let mut incarnations: u32 = 1;
    let mut agg = Supervised::spawn(exe, "aggregator", agg_args(plan.agg_kills.first()), true)?;
    if let Some(kill) = plan.agg_kills.first() {
        kills.push(format!("incarnation 1 armed: {kill}"));
    }
    let addr = read_agg_banner(&mut agg)?;

    let addr_arg = addr.to_string();

    // Aggregation shards (sharded layout only): supervised like the
    // coordinator — each crashed incarnation is respawned with its next
    // scheduled kill armed, and recovers by replaying its own WAL
    // partition.
    struct ShardSup {
        sup: Supervised,
        shard: usize,
        incarnations: u32,
        planned: Vec<AggKill>,
    }
    let shard_args = |shard: usize, kill: Option<&AggKill>| -> Vec<String> {
        let mut a = with_base(vec![
            "shard".into(),
            "--shard".into(),
            shard.to_string(),
            "--addr".into(),
            addr_arg.clone(),
        ]);
        if let Some(kill) = kill {
            a.extend(kill.to_args());
        }
        a
    };
    let mut shard_sups: Vec<ShardSup> = Vec::new();
    if spec.agg_shards > 1 {
        for s in 0..spec.agg_shards {
            let planned: Vec<AggKill> = plan
                .shard_kills
                .iter()
                .filter(|(sh, _)| *sh == s)
                .map(|(_, k)| k.clone())
                .collect();
            if let Some(kill) = planned.first() {
                kills.push(format!("shard {s} incarnation 1 armed: {kill}"));
            }
            shard_sups.push(ShardSup {
                sup: Supervised::spawn(
                    exe,
                    &format!("shard-{s}"),
                    shard_args(s, planned.first()),
                    false,
                )?,
                shard: s,
                incarnations: 1,
                planned,
            });
        }
    }

    let mut children: Vec<Supervised> = Vec::new();
    let mut spawn_child = |name: String, mut head: Vec<String>| -> Result<(), NetError> {
        head.extend(["--addr".to_string(), addr_arg.clone()]);
        let args = with_base(head);
        children.push(Supervised::spawn(exe, &name, args.clone(), false)?.with_respawn(args, 8));
        Ok(())
    };
    for i in 0..spec.device_shards {
        spawn_child(
            format!("device-{i}"),
            vec!["device".into(), "--shard".into(), i.to_string()],
        )?;
    }
    for j in 0..spec.origin_shards {
        spawn_child(
            format!("origin-{j}"),
            vec!["origin".into(), "--shard".into(), j.to_string()],
        )?;
    }
    for m in 1..=setup.committee_size as u64 {
        spawn_child(
            format!("committee-{m}"),
            vec!["committee".into(), "--member".into(), m.to_string()],
        )?;
    }

    enum Exit {
        AggDone,
        AggGaveUp,
        ShardGaveUp,
        Timeout,
    }

    let mut role_fired = vec![false; plan.role_kills.len()];
    // An incarnation that keeps dying on recovery (a typed replay
    // failure, say) must not respawn forever: a small allowance past
    // the scheduled kills turns persistent death into a typed verdict.
    let max_incarnations = plan.agg_kills.len() as u32 + 4;
    let mut driver = HubClient::new(&setup, role::DRIVER, addr, out_dir);
    let mut finished = false;
    let exit = loop {
        if started.elapsed() >= spec.round_timeout {
            break Exit::Timeout;
        }
        // Scheduled role SIGKILLs.
        for (idx, rk) in plan.role_kills.iter().enumerate() {
            if !role_fired[idx] && started.elapsed() >= rk.at {
                role_fired[idx] = true;
                if let Some(cp) = children.iter_mut().find(|c| c.name == rk.name) {
                    if cp.kill()? {
                        kills.push(format!("SIGKILL {} at {:?}", rk.name, rk.at));
                    } else {
                        kills.push(format!("{} already exited before {:?}", rk.name, rk.at));
                    }
                }
            }
        }
        // Aggregator supervision: a dead incarnation is respawned with
        // the next scheduled kill armed (clean once the plan runs out);
        // recovery is journal replay inside the new process.
        if let Some(status) = agg.try_exit()? {
            if status.success() {
                break Exit::AggDone;
            }
            if incarnations >= max_incarnations {
                kills.push(format!(
                    "giving up: incarnation {incarnations} died with {status}"
                ));
                break Exit::AggGaveUp;
            }
            let next = plan.agg_kills.get(incarnations as usize);
            incarnations += 1;
            kills.push(match next {
                Some(kill) => {
                    format!("incarnation {incarnations} respawned after {status}, armed: {kill}")
                }
                None => format!("incarnation {incarnations} respawned after {status}, clean"),
            });
            agg.respawn_with_args(agg_args(next), true)?;
            read_agg_banner(&mut agg)?;
            // `driver_seen` is liveness state, not journaled: a fresh
            // incarnation needs to observe our poll again before it can
            // exit.
            finished = false;
        }
        // Shard supervision mirrors the coordinator's: a crashed shard
        // incarnation is respawned with its next scheduled kill armed
        // and recovers by replaying its own WAL partition. A shard that
        // exits cleanly stays down — the coordinator already holds its
        // sealed root.
        let mut shard_gave_up = false;
        for ss in shard_sups.iter_mut() {
            let Some(status) = ss.sup.try_exit()? else {
                continue;
            };
            if status.success() {
                continue;
            }
            let max = ss.planned.len() as u32 + 4;
            if ss.incarnations >= max {
                kills.push(format!(
                    "giving up: shard {} incarnation {} died with {status}",
                    ss.shard, ss.incarnations
                ));
                shard_gave_up = true;
                break;
            }
            let next = ss.planned.get(ss.incarnations as usize);
            ss.incarnations += 1;
            kills.push(match next {
                Some(kill) => format!(
                    "shard {} incarnation {} respawned after {status}, armed: {kill}",
                    ss.shard, ss.incarnations
                ),
                None => format!(
                    "shard {} incarnation {} respawned after {status}, clean",
                    ss.shard, ss.incarnations
                ),
            });
            ss.sup
                .respawn_with_args(shard_args(ss.shard, next), false)?;
        }
        if shard_gave_up {
            break Exit::ShardGaveUp;
        }
        // Every other crashed role is respawned through the same
        // mechanism the ordinary driver uses.
        for cp in children.iter_mut() {
            cp.watch()?;
        }
        // Single-attempt status poll (never blocks: this loop must keep
        // supervising while the aggregator is down). Once the round
        // reports finished the poller hangs up and goes quiet — the
        // aggregator joins its workers on exit, and an open, chattering
        // connection would keep one busy forever.
        if !finished {
            if let Ok(NetMsg::Finished) = driver.poll_once(&setup, &NetMsg::PullStatus) {
                finished = true;
                driver.hangup();
            }
        }
        std::thread::sleep(Duration::from_millis(30));
    };

    // Drain: give children a grace window to exit on their own, then
    // reap whatever is left so the run never leaks processes.
    let grace = Instant::now() + Duration::from_secs(15);
    let abandon = matches!(exit, Exit::Timeout | Exit::AggGaveUp | Exit::ShardGaveUp);
    loop {
        let mut alive = false;
        for cp in children.iter_mut() {
            alive |= cp.try_exit()?.is_none();
        }
        for ss in shard_sups.iter_mut() {
            alive |= ss.sup.try_exit()?.is_none();
        }
        if !alive || Instant::now() >= grace || abandon {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    for cp in children.iter_mut() {
        let _ = cp.kill();
    }
    for ss in shard_sups.iter_mut() {
        let _ = ss.sup.kill();
    }
    let _ = agg.kill();

    let verdict = match exit {
        Exit::Timeout => ChaosVerdict::Hang,
        Exit::AggGaveUp | Exit::ShardGaveUp => ChaosVerdict::TypedFailure,
        Exit::AggDone => judge_outcome(out_dir, &want_exact, &want_released),
    };
    Ok(ChaosOutcome {
        seed: plan.seed,
        verdict,
        agg_incarnations: incarnations,
        kills,
        elapsed_ms: started.elapsed().as_millis() as u64,
    })
}
