//! Typed transport errors.
//!
//! Every failure mode of the wire — malformed framing, authentication
//! failure, replay, timeout, peer loss — surfaces as a [`NetError`]
//! variant, never as a panic: a byte flipped on the wire must produce a
//! typed rejection the caller can retry around.

use crate::journal::JournalError;
use mycelium_crypto::AeadError;

/// Transport-plane failure.
#[derive(Debug)]
pub enum NetError {
    /// An OS-level socket failure.
    Io(std::io::Error),
    /// The frame header does not start with the protocol magic.
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version advertised by the peer.
        got: u16,
        /// Version this endpoint speaks.
        want: u16,
    },
    /// The header declares a payload larger than the configured bound.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The frame's sequence number is not the next expected one —
    /// a replayed, reordered, or dropped frame.
    BadSequence {
        /// Sequence number on the wire.
        got: u64,
        /// Sequence number expected.
        want: u64,
    },
    /// An unknown frame type byte.
    BadFrameType {
        /// The offending type byte.
        got: u8,
    },
    /// AEAD rejection: the frame was tampered with, encrypted under the
    /// wrong key, or replayed under a reused nonce.
    Aead(AeadError),
    /// The handshake failed (unexpected message, or key confirmation
    /// did not verify — wrong or unauthorized identity).
    Handshake(String),
    /// The peer's static key is not in this endpoint's roster.
    UnknownPeer {
        /// The rejected static public key.
        peer: [u8; 32],
    },
    /// The peer closed the connection cleanly.
    PeerClosed,
    /// A read or write missed its deadline.
    Timeout,
    /// A payload failed to deserialize after authentication (a protocol
    /// bug or version skew, not tampering — tampering dies at the AEAD).
    Decode(String),
    /// The retry budget was exhausted without a successful exchange.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The final error, rendered.
        last: String,
    },
    /// The write-ahead journal failed (I/O, corruption, or a replay
    /// that did not reproduce the pre-crash state).
    Journal(JournalError),
    /// A handler thread panicked while holding the hub state lock; the
    /// guard was recovered ([`PoisonError::into_inner`]
    /// (std::sync::PoisonError::into_inner)) but the triggering request
    /// is refused so the client retries against repaired state.
    Poisoned,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::BadMagic { got } => write!(f, "bad frame magic {got:02x?}"),
            NetError::VersionMismatch { got, want } => {
                write!(f, "protocol version {got}, expected {want}")
            }
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame payload {len} exceeds limit {max}")
            }
            NetError::BadSequence { got, want } => {
                write!(
                    f,
                    "frame sequence {got}, expected {want} (replay or reorder)"
                )
            }
            NetError::BadFrameType { got } => write!(f, "unknown frame type {got:#04x}"),
            NetError::Aead(e) => write!(f, "frame authentication failed: {e}"),
            NetError::Handshake(e) => write!(f, "handshake failed: {e}"),
            NetError::UnknownPeer { peer } => {
                write!(f, "peer {:02x}{:02x}… not in roster", peer[0], peer[1])
            }
            NetError::PeerClosed => write!(f, "peer closed the connection"),
            NetError::Timeout => write!(f, "deadline exceeded"),
            NetError::Decode(e) => write!(f, "payload decode failed: {e}"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            NetError::Journal(e) => write!(f, "journal failure: {e}"),
            NetError::Poisoned => write!(f, "hub state lock was poisoned by a panic"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
            std::io::ErrorKind::UnexpectedEof => NetError::PeerClosed,
            _ => NetError::Io(e),
        }
    }
}

impl From<AeadError> for NetError {
    fn from(e: AeadError) -> Self {
        NetError::Aead(e)
    }
}

impl From<JournalError> for NetError {
    fn from(e: JournalError) -> Self {
        NetError::Journal(e)
    }
}

impl NetError {
    /// Whether a fresh connection attempt could plausibly succeed (used
    /// by the client pool to decide between retrying and giving up).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::Io(_)
                | NetError::PeerClosed
                | NetError::Timeout
                | NetError::Aead(_)
                | NetError::BadSequence { .. }
        )
    }
}
