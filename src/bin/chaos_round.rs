//! Chaos supervisor for the multi-process query round.
//!
//! ```text
//! chaos_round chaos [round args] --out DIR --seeds 1,2,3,...
//! chaos_round drill [round args] --out DIR
//! ```
//!
//! `chaos` runs one chaos round per seed — each with a seed-derived
//! kill schedule that murders aggregator incarnations at randomized
//! protocol steps (and `SIGKILL`s other roles) — and writes the
//! aggregate `CHAOS_report.json` artifact. The process exits nonzero if
//! any run violates the invariant (a hang or a wrong answer; typed
//! failures are acceptable, silent divergence never is).
//!
//! `drill` runs the fixed three-phase acceptance drill: the aggregator
//! dies once during contribution intake, once during origin summation,
//! and once during committee decryption, and the round must still
//! produce the bit-identical released histogram. With `--shards N`
//! (N > 1) the drill switches to the sharded layout: one intake shard
//! dies mid-intake and the coordinator dies mid-combine and again
//! during decryption.
//!
//! Any other role word (`aggregator`, `device`, …) dispatches through
//! the shared CLI layer — the supervisor re-execs this same binary for
//! every child process.

use std::path::Path;

use mycelium_net::chaos::{report_json, run_chaos, ChaosOutcome, ChaosPlan, ChaosVerdict};
use mycelium_net::cli::{self, Args};
use mycelium_net::round::files;

fn run_matrix(args: &Args, drill: bool) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
    let seeds: Vec<u64> = if drill {
        vec![args.spec.seed]
    } else if args.seeds.is_empty() {
        (1..=8).collect()
    } else {
        args.seeds.clone()
    };
    let mut outcomes: Vec<ChaosOutcome> = Vec::new();
    for &seed in &seeds {
        let mut spec = args.spec.clone();
        spec.seed = seed;
        let plan = if drill {
            let mut p = if spec.agg_shards > 1 {
                ChaosPlan::drill_sharded()
            } else {
                ChaosPlan::drill()
            };
            p.seed = seed;
            p
        } else {
            ChaosPlan::derive(seed, &spec)
        };
        let dir = args.out.join(format!("seed-{seed}"));
        eprintln!(
            "chaos_round: seed {seed}: {} aggregator kill(s), {} role kill(s), {} shard kill(s)",
            plan.agg_kills.len(),
            plan.role_kills.len(),
            plan.shard_kills.len()
        );
        let outcome = run_chaos(&exe, &spec, &dir, &plan).map_err(|e| e.to_string())?;
        eprintln!(
            "chaos_round: seed {seed}: verdict {} after {} aggregator incarnation(s) in {} ms",
            outcome.verdict, outcome.agg_incarnations, outcome.elapsed_ms
        );
        outcomes.push(outcome);
    }
    let report = report_json(&outcomes);
    let report_path = args.out.join(files::CHAOS_JSON);
    std::fs::write(&report_path, &report).map_err(|e| e.to_string())?;
    println!("{report}");
    let bad: Vec<String> = outcomes
        .iter()
        .filter(|o| {
            if drill {
                o.verdict != ChaosVerdict::Exact
            } else {
                !o.verdict.ok()
            }
        })
        .map(|o| format!("seed {}: {}", o.seed, o.verdict))
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "chaos invariant violated ({}); see {}",
            bad.join(", "),
            Path::new(&report_path).display()
        ))
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let role = argv.get(1).cloned().unwrap_or_default();
    let result = cli::parse_args(&argv[2..]).and_then(|args| match role.as_str() {
        "chaos" => run_matrix(&args, false),
        "drill" => run_matrix(&args, true),
        other => cli::dispatch(other, &args).unwrap_or_else(|| {
            Err(format!(
                "usage: chaos_round <chaos|drill|aggregator|device|origin|committee> [args] \
                 (got {role:?})"
            ))
        }),
    });
    if let Err(e) = result {
        eprintln!("chaos_round {role}: {e}");
        std::process::exit(1);
    }
}
