//! Standalone offline verifier for round certificates.
//!
//! ```text
//! myc_verify <path>...
//! ```
//!
//! Each argument names a certificate artifact: either raw canonical
//! bytes (leading magic `MYCCERT1`), a `ROUND_cert.json` artifact, or a
//! bare hex dump. The verifier needs nothing but the file — no network,
//! no journals, no keys beyond the seed-derived committee keys the
//! certificate itself is bound to — and re-checks every commitment:
//! Merkle roots over the carried leaves, the spec and transcript binding
//! digests, and at least `t + 1` committee signatures over the
//! transcript (see DESIGN.md, "Round certificates").
//!
//! One verdict line per file on stdout. Exit status: `0` when every
//! file verifies, `2` when any certificate is invalid (typed verdict,
//! printed), `1` on usage or I/O errors. Never panics on untrusted
//! input — malformed bytes are a typed `bad-encoding` verdict, not a
//! crash.

use std::process::ExitCode;

use mycelium_cert::{
    cert_fingerprint, extract_cert_hex, from_hex, to_hex, verify_bytes, RoundCertificate,
    CERT_MAGIC,
};

/// Pulls canonical certificate bytes out of whatever the file holds.
fn certificate_bytes(raw: &[u8]) -> Result<Vec<u8>, String> {
    if raw.starts_with(CERT_MAGIC) {
        return Ok(raw.to_vec());
    }
    let text = std::str::from_utf8(raw)
        .map_err(|_| "neither raw certificate bytes nor UTF-8 text".to_string())?;
    extract_cert_hex(text)
        .or_else(|| from_hex(text.trim()))
        .ok_or_else(|| "no certificate hex found in file".to_string())
}

fn verify_file(path: &str) -> Result<bool, String> {
    let raw = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let bytes = certificate_bytes(&raw).map_err(|e| format!("{path}: {e}"))?;
    let verdict = verify_bytes(&bytes);
    match RoundCertificate::decode(&bytes) {
        Ok(cert) => println!(
            "{path}: {verdict} — seed {} query {} devices {} committee {}/{} fingerprint {}",
            cert.spec.seed,
            cert.spec.query,
            cert.spec.devices,
            cert.signatures.len(),
            cert.committee,
            to_hex(&cert_fingerprint(&bytes)[..8]),
        ),
        Err(_) => println!("{path}: {verdict}"),
    }
    Ok(verdict.is_valid())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "-h" || p == "--help") {
        eprintln!("usage: myc_verify <certificate-file>...");
        eprintln!("  accepts raw MYCCERT1 bytes, ROUND_cert.json, or a hex dump");
        return ExitCode::from(1);
    }
    let mut all_valid = true;
    for path in &paths {
        match verify_file(path) {
            Ok(valid) => all_valid &= valid,
            Err(e) => {
                eprintln!("myc_verify: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if all_valid {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
