//! Multi-process query round launcher.
//!
//! One binary, five roles — the driver re-execs itself for each role:
//!
//! ```text
//! net_round driver     [round args] --out DIR [--crash-origin J --crash-after K]
//! net_round aggregator [round args] --out DIR [--die-after KIND:N --die-mid-journal N]
//! net_round device     [round args] --out DIR --shard I --addr HOST:PORT
//! net_round origin     [round args] --out DIR --shard J --addr HOST:PORT [--crash-after K]
//! net_round committee  [round args] --out DIR --member M --addr HOST:PORT
//! ```
//!
//! Flag parsing and role dispatch live in `mycelium_net::cli`, shared
//! with the `chaos_round` supervisor binary.

use mycelium_net::cli;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let role = argv.get(1).cloned().unwrap_or_default();
    let result = cli::parse_args(&argv[2..]).and_then(|args| {
        cli::dispatch(&role, &args).unwrap_or_else(|| {
            Err(format!(
                "usage: net_round <driver|aggregator|device|origin|committee> [args] \
                 (got {role:?})"
            ))
        })
    });
    if let Err(e) = result {
        eprintln!("net_round {role}: {e}");
        std::process::exit(1);
    }
}
