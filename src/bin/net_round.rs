//! Multi-process query round launcher.
//!
//! One binary, five roles — the driver re-execs itself for each role:
//!
//! ```text
//! net_round driver     [round args] --out DIR [--crash-origin J --crash-after K]
//! net_round aggregator [round args] --out DIR
//! net_round device     [round args] --out DIR --shard I --addr HOST:PORT
//! net_round origin     [round args] --out DIR --shard J --addr HOST:PORT [--crash-after K]
//! net_round committee  [round args] --out DIR --member M --addr HOST:PORT
//! ```
//!
//! Round args (all optional, shared by every role so each process
//! derives identical state): `--seed N --n N --query NAME --devices D
//! --origins O --proofs 0|1 --contrib-ms MS --poll-ms MS --timeout-ms MS`.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use mycelium_net::round::{
    run_aggregator, run_committee, run_device, run_driver, run_origin, DriverOpts, RoundSpec,
};

struct Args {
    spec: RoundSpec,
    out: PathBuf,
    shard: usize,
    member: u64,
    addr: Option<SocketAddr>,
    crash_after: Option<usize>,
    crash_origin: Option<usize>,
}

fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        spec: RoundSpec::default(),
        out: PathBuf::from("target/net_round"),
        shard: 0,
        member: 1,
        addr: None,
        crash_after: None,
        crash_origin: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => args.spec.seed = parse(value("--seed")?)?,
            "--n" => args.spec.n = parse(value("--n")?)?,
            "--query" => args.spec.query = value("--query")?.clone(),
            "--devices" => args.spec.device_shards = parse(value("--devices")?)?,
            "--origins" => args.spec.origin_shards = parse(value("--origins")?)?,
            "--proofs" => args.spec.with_proofs = value("--proofs")? == "1",
            "--contrib-ms" => {
                args.spec.contrib_deadline = Duration::from_millis(parse(value("--contrib-ms")?)?)
            }
            "--poll-ms" => {
                args.spec.poll_interval = Duration::from_millis(parse(value("--poll-ms")?)?)
            }
            "--timeout-ms" => {
                args.spec.round_timeout = Duration::from_millis(parse(value("--timeout-ms")?)?)
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--shard" => args.shard = parse(value("--shard")?)?,
            "--member" => args.member = parse(value("--member")?)?,
            "--addr" => {
                args.addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("bad --addr: {e}"))?,
                )
            }
            "--crash-after" => args.crash_after = Some(parse(value("--crash-after")?)?),
            "--crash-origin" => args.crash_origin = Some(parse(value("--crash-origin")?)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value {s:?}: {e}"))
}

fn addr_of(args: &Args) -> Result<SocketAddr, String> {
    args.addr.ok_or_else(|| "--addr is required".into())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let role = argv.get(1).cloned().unwrap_or_default();
    let result = parse_args(&argv[2..]).and_then(|args| {
        match role.as_str() {
            "driver" => {
                let exe = std::env::current_exe().map_err(|e| e.to_string())?;
                let opts = DriverOpts {
                    crash_origin: args.crash_origin.zip(args.crash_after.or(Some(0))),
                };
                run_driver(&exe, &args.spec, &args.out, &opts)
            }
            "aggregator" => run_aggregator(&args.spec, &args.out),
            "device" => run_device(&args.spec, args.shard, addr_of(&args)?, &args.out),
            "origin" => run_origin(
                &args.spec,
                args.shard,
                addr_of(&args)?,
                &args.out,
                args.crash_after,
            ),
            "committee" => run_committee(&args.spec, args.member, addr_of(&args)?, &args.out),
            _ => {
                return Err(format!(
                    "usage: net_round <driver|aggregator|device|origin|committee> [args] \
                     (got {role:?})"
                ))
            }
        }
        .map_err(|e| e.to_string())
    });
    if let Err(e) = result {
        eprintln!("net_round {role}: {e}");
        std::process::exit(1);
    }
}
