//! Umbrella crate for the Mycelium reproduction.
//!
//! Re-exports the workspace crates so that examples and integration tests can
//! use a single dependency. See the individual crates for the actual
//! implementation:
//!
//! * [`mycelium`] — the end-to-end system (devices, aggregator, committees).
//! * [`mycelium_bgv`] — BGV leveled homomorphic encryption.
//! * [`mycelium_mixnet`] — the verifiable telescoping mix network.
//! * [`mycelium_query`] — the SQL-subset query language and compiler.

pub use mycelium;
pub use mycelium_bgv;
pub use mycelium_crypto;
pub use mycelium_dp;
pub use mycelium_graph;
pub use mycelium_math;
pub use mycelium_mixnet;
pub use mycelium_query;
pub use mycelium_sharing;
pub use mycelium_zkp;
